#!/usr/bin/env python
"""Operational CLI: CRC-scrub retained sharded checkpoints.

Walks every checkpoint generation under ``--root``, re-verifies each
array against the per-array CRC32s in its manifest, and prints one line
per generation (plus one per finding).  Exits non-zero when any
generation is corrupt — wire it into a cron/CI job as the "background
scrub" an exascale run would schedule against its checkpoint volume.

Usage::

    python tools/scrub_checkpoints.py --root /ckpt/run42
    python tools/scrub_checkpoints.py --root /ckpt/run42 --keep 3
    python tools/scrub_checkpoints.py --root /ckpt/run42 --json

``--keep N`` applies N-replica retention *after* the scrub (never
pruning below N generations); ``--json`` emits a machine-readable
report instead of text.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True,
                        help="checkpoint root (step-<n> generations)")
    parser.add_argument("--keep", type=int, default=0, metavar="N",
                        help="after scrubbing, retain only the newest N "
                             "generations (0 = keep all)")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of text")
    args = parser.parse_args(argv)

    from repro.resilience.scrub import latest_valid_checkpoint, \
        scrub_checkpoints
    from repro.train import prune_checkpoints

    reports = scrub_checkpoints(args.root)
    pruned = prune_checkpoints(args.root, args.keep) if args.keep else []
    corrupt = [r for r in reports if not r.ok]

    if args.json:
        payload = {
            "root": args.root,
            "generations": len(reports),
            "corrupt": len(corrupt),
            "latest_valid": latest_valid_checkpoint(args.root),
            "pruned": pruned,
            "reports": [{
                "directory": r.directory, "ok": r.ok,
                "n_arrays": r.n_arrays, "nbytes": r.nbytes,
                "findings": [{"shard": f.shard, "array": f.array,
                              "reason": f.reason} for f in r.findings],
            } for r in reports],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if not reports:
            print(f"no checkpoint generations under {args.root}")
        for report in reports:
            print(report.render())
        for directory in pruned:
            print(f"pruned {directory}")
        if corrupt:
            latest = latest_valid_checkpoint(args.root)
            print(f"{len(corrupt)} corrupt generation(s); "
                  f"latest valid: {latest or 'NONE'}", file=sys.stderr)
    return 1 if corrupt else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
