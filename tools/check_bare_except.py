#!/usr/bin/env python
"""Lint: no bare ``except:`` clauses in ``src/repro/``.

A bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and —
worse for a resilience layer — silently eats the *typed* fault
escalations (:class:`RankFailure`, :class:`MessageCorruption`, ...) that
the supervisor's recovery logic dispatches on.  Catch a concrete
exception type, or ``BaseException`` with a re-raise where cleanup code
genuinely must intercept everything.

Token-based, so strings and comments mentioning ``except:`` are fine.
Exits non-zero listing offending ``file:line`` locations.
"""

from __future__ import annotations

import io
import os
import sys
import tokenize

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def bare_excepts(path: str) -> list[int]:
    """Line numbers of bare ``except:`` clauses (NAME 'except' followed
    immediately by ``:``) in one file."""
    with open(path, "rb") as fh:
        source = fh.read()
    lines: list[int] = []
    tokens = list(tokenize.tokenize(io.BytesIO(source).readline))
    for tok, nxt in zip(tokens, tokens[1:]):
        if (tok.type == tokenize.NAME and tok.string == "except"
                and nxt.type == tokenize.OP and nxt.string == ":"):
            lines.append(tok.start[0])
    return lines


def main() -> int:
    violations: list[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(SRC)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            for line in bare_excepts(path):
                rel = os.path.relpath(path, REPO_ROOT)
                violations.append(f"{rel}:{line}: bare except: "
                                  "(catch a concrete exception type)")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write("check_bare_except: OK\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
