#!/usr/bin/env python
"""Lint: no bare ``except:`` and no ``except ...: pass`` in ``src/repro/``.

A bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and —
worse for a resilience layer — silently eats the *typed* fault
escalations (:class:`RankFailure`, :class:`MessageCorruption`, ...) that
the supervisor's recovery logic dispatches on.  Catch a concrete
exception type, or ``BaseException`` with a re-raise where cleanup code
genuinely must intercept everything.

An ``except SomeError: pass`` handler is the silent-data-corruption
cousin: the exception is typed but its *evidence is destroyed* — nothing
is booked, retried, or escalated, which is exactly how a detected fault
becomes a silent one.  Handle it (log, count, recover) or let it
propagate.

Bare-``except`` detection is token-based, so strings and comments
mentioning ``except:`` are fine; ``except: pass`` detection is AST-based
(a handler whose entire body is a single ``pass``).  Exits non-zero
listing offending ``file:line`` locations.
"""

from __future__ import annotations

import ast
import io
import os
import sys
import tokenize

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from walklib import iter_python_files, relpath, resolve_roots


def bare_excepts(path: str) -> list[int]:
    """Line numbers of bare ``except:`` clauses (NAME 'except' followed
    immediately by ``:``) in one file."""
    with open(path, "rb") as fh:
        source = fh.read()
    lines: list[int] = []
    tokens = list(tokenize.tokenize(io.BytesIO(source).readline))
    for tok, nxt in zip(tokens, tokens[1:]):
        if (tok.type == tokenize.NAME and tok.string == "except"
                and nxt.type == tokenize.OP and nxt.string == ":"):
            lines.append(tok.start[0])
    return lines


def swallowing_excepts(path: str) -> list[int]:
    """Line numbers of ``except ...: pass`` handlers (body is exactly one
    ``pass`` statement) in one file."""
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # unparseable files are some other tool's problem
    return sorted(
        node.lineno for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler)
        and len(node.body) == 1 and isinstance(node.body[0], ast.Pass))


def main(argv: list[str] | None = None) -> int:
    roots = resolve_roots(argv, program="check_bare_except")
    if roots is None:
        return 2
    violations: list[str] = []
    for path in iter_python_files(roots):
        for line in bare_excepts(path):
            violations.append(f"{relpath(path)}:{line}: bare except: "
                              "(catch a concrete exception type)")
        for line in swallowing_excepts(path):
            violations.append(f"{relpath(path)}:{line}: except ...: pass "
                              "(handle the exception or let it propagate)")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write(f"check_bare_except: OK ({len(roots)} root"
                     f"{'s' if len(roots) != 1 else ''})\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
