#!/usr/bin/env python
"""Lint: no ``print(`` calls in ``src/repro/`` outside ``repro/obs``.

Library output must flow through the observability layer (spans, metrics,
exported tables) rather than ad-hoc printing — otherwise benchmarks and
services can't capture, merge, or machine-read it.  The ``repro/obs``
package is exempt (its exporters *are* the sanctioned output path).

Token-based, so docstrings and comments mentioning ``print(`` are fine.
Exits non-zero listing offending ``file:line`` locations.
"""

from __future__ import annotations

import io
import os
import sys
import tokenize

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")
EXEMPT_DIRS = (os.path.join(SRC, "obs"),)


def print_calls(path: str) -> list[int]:
    """Line numbers of ``print(`` call sites (NAME 'print' followed by
    ``(``) in one file."""
    with open(path, "rb") as fh:
        source = fh.read()
    lines: list[int] = []
    tokens = list(tokenize.tokenize(io.BytesIO(source).readline))
    for tok, nxt in zip(tokens, tokens[1:]):
        if (tok.type == tokenize.NAME and tok.string == "print"
                and nxt.type == tokenize.OP and nxt.string == "("):
            lines.append(tok.start[0])
    return lines


def main() -> int:
    violations: list[str] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(SRC)):
        if any(dirpath == d or dirpath.startswith(d + os.sep)
               for d in EXEMPT_DIRS):
            continue
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            for line in print_calls(path):
                rel = os.path.relpath(path, REPO_ROOT)
                violations.append(f"{rel}:{line}: print() call "
                                  "(route output through repro.obs)")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write("check_no_print: OK\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
