#!/usr/bin/env python
"""Lint: no ``print(`` calls in ``src/repro/`` outside ``repro/obs``.

Library output must flow through the observability layer (spans, metrics,
exported tables) rather than ad-hoc printing — otherwise benchmarks and
services can't capture, merge, or machine-read it.  The ``repro/obs``
package is exempt (its exporters *are* the sanctioned output path).

Token-based, so docstrings and comments mentioning ``print(`` are fine.
Exits non-zero listing offending ``file:line`` locations.

Usage::

    python tools/check_no_print.py                  # all of src/repro
    python tools/check_no_print.py src/repro/serve  # just one package
"""

from __future__ import annotations

import io
import os
import sys
import tokenize

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from walklib import SRC, iter_python_files, relpath, resolve_roots

EXEMPT_DIRS = (os.path.join(SRC, "obs"),)


def print_calls(path: str) -> list[int]:
    """Line numbers of ``print(`` call sites (NAME 'print' followed by
    ``(``) in one file."""
    with open(path, "rb") as fh:
        source = fh.read()
    lines: list[int] = []
    tokens = list(tokenize.tokenize(io.BytesIO(source).readline))
    for tok, nxt in zip(tokens, tokens[1:]):
        if (tok.type == tokenize.NAME and tok.string == "print"
                and nxt.type == tokenize.OP and nxt.string == "("):
            lines.append(tok.start[0])
    return lines


def main(argv: list[str] | None = None) -> int:
    roots = resolve_roots(argv, program="check_no_print")
    if roots is None:
        return 2
    violations: list[str] = []
    for path in iter_python_files(roots, exempt_dirs=EXEMPT_DIRS):
        for line in print_calls(path):
            violations.append(f"{relpath(path)}:{line}: print() call "
                              "(route output through repro.obs)")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write(f"check_no_print: OK ({len(roots)} root"
                     f"{'s' if len(roots) != 1 else ''})\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
