#!/usr/bin/env python
"""Deterministic simulation-testing driver: explore, replay, shrink.

Subcommands over :mod:`repro.simtest`:

* ``run`` — expand seeds into scenarios, execute each on the virtual
  clocks, judge the invariant registry; every failure is shrunk
  (delta debugging) and written as a JSON repro under ``--out``.
  Exits non-zero iff any scenario failed.
* ``replay`` — re-run committed repro files (or a directory of them)
  and demand the recorded violation set reproduce **bit-exactly**
  (same violations, same fingerprint).  The CI corpus gate.
* ``shrink`` — minimize one failing repro/scenario file again, e.g.
  after tightening an invariant.

Usage::

    python tools/simtest_cli.py run --n 500 --out /tmp/simtest-repros
    python tools/simtest_cli.py run --n 100000 --time-budget 180
    python tools/simtest_cli.py replay tests/simtest/corpus
    python tools/simtest_cli.py shrink repro.json --out shrunk.json

Repro files carry the scenario (schema-versioned), the expected
violation set, and a SHA-256 fingerprint over its canonical JSON — no
timestamps or host state, so a repro committed from one machine replays
bit-exactly on another.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))


def _runner():
    from repro.simtest import SimRunner
    return SimRunner()


def _repro_paths(paths) -> list:
    out = []
    for path in paths:
        if os.path.isdir(path):
            out.extend(os.path.join(path, name)
                       for name in sorted(os.listdir(path))
                       if name.endswith(".json"))
        else:
            out.append(path)
    return out


def cmd_run(args) -> int:
    from repro.simtest import shrink, write_repro

    runner = _runner()
    t0 = time.monotonic()
    state = {"n": 0, "failed": []}

    def on_result(result):
        state["n"] += 1
        if result.failed:
            state["failed"].append(result)
            names = ", ".join(sorted(result.violation_names()))
            print(f"  seed {result.scenario.seed}: FAIL "
                  f"[{names}] outcome={result.outcome}", flush=True)
        elif state["n"] % args.progress_every == 0:
            rate = state["n"] / (time.monotonic() - t0)
            print(f"  {state['n']} scenarios, "
                  f"{len(state['failed'])} failing, "
                  f"{rate:.1f}/s", flush=True)

    runner.explore(args.n, seed_start=args.seed_start,
                   time_budget_s=args.time_budget, on_result=on_result)
    print(f"ran {state['n']} scenarios in "
          f"{time.monotonic() - t0:.0f}s: {len(state['failed'])} failing")
    for result in state["failed"]:
        seed = result.scenario.seed
        if args.no_shrink:
            final = result
            note = f"unshrunk failure from seed {seed}"
        else:
            reduction = shrink(result.scenario, result.violation_names(),
                               runner.run, max_evals=args.max_evals,
                               initial_result=result)
            final = reduction.result
            note = (f"shrunk from seed {seed} "
                    f"({reduction.evals} evals: "
                    + "; ".join(reduction.steps[-4:]) + ")")
            print(f"  seed {seed}: shrunk to "
                  f"{len(final.scenario.events)} event(s) "
                  f"in {reduction.evals} evals")
        path = os.path.join(args.out, f"seed-{seed:020d}.json")
        write_repro(path, final, note=note)
        print(f"  wrote {path}")
    return 1 if state["failed"] else 0


def cmd_replay(args) -> int:
    from repro.simtest import load_repro

    runner = _runner()
    paths = _repro_paths(args.paths)
    if not paths:
        print("replay: no repro files found", file=sys.stderr)
        return 2
    bad = 0
    for path in paths:
        repro = load_repro(path)
        result, expected, match = runner.replay(repro)
        if match:
            print(f"  {path}: ok ({len(expected)} violation(s) "
                  f"reproduced bit-exactly)")
            continue
        bad += 1
        print(f"  {path}: MISMATCH")
        print(f"    expected: {sorted(v.invariant for v in expected)}")
        print(f"    actual:   "
              f"{sorted(v.invariant for v in result.violations)}")
        print(f"    fingerprint {repro['fingerprint'][:12]}... -> "
              f"{result.fingerprint()[:12]}...")
    print(f"replayed {len(paths)} repro(s): {bad} mismatching")
    return 1 if bad else 0


def cmd_shrink(args) -> int:
    from repro.simtest import Scenario, shrink, write_repro

    runner = _runner()
    with open(args.path) as fh:
        data = json.load(fh)
    scenario = Scenario.from_dict(data.get("scenario", data))
    result = runner.run(scenario)
    if not result.failed:
        print(f"shrink: {args.path} no longer fails any invariant",
              file=sys.stderr)
        return 2
    reduction = shrink(scenario, result.violation_names(), runner.run,
                       max_evals=args.max_evals, initial_result=result)
    for step in reduction.steps:
        print(f"  {step}")
    out = args.out or args.path
    write_repro(out, reduction.result,
                note=f"re-shrunk ({reduction.evals} evals)")
    print(f"shrunk to {len(reduction.scenario.events)} event(s), "
          f"horizon {reduction.scenario.horizon}; wrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="simtest_cli",
        description="deterministic simulation testing: run|replay|shrink")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="explore fresh seeds")
    p_run.add_argument("--n", type=int, default=200,
                       help="scenario count (default 200)")
    p_run.add_argument("--seed-start", type=int, default=0)
    p_run.add_argument("--time-budget", type=float, default=None,
                       help="stop exploring after this many seconds")
    p_run.add_argument("--out", default="simtest-repros",
                       help="directory for shrunk failure repros")
    p_run.add_argument("--max-evals", type=int, default=80,
                       help="shrink budget per failure")
    p_run.add_argument("--no-shrink", action="store_true",
                       help="write failures unshrunk")
    p_run.add_argument("--progress-every", type=int, default=25)
    p_run.set_defaults(fn=cmd_run)

    p_replay = sub.add_parser("replay", help="replay repro files")
    p_replay.add_argument("paths", nargs="+",
                          help="repro files or directories of them")
    p_replay.set_defaults(fn=cmd_replay)

    p_shrink = sub.add_parser("shrink", help="minimize a failing repro")
    p_shrink.add_argument("path", help="repro (or bare scenario) JSON")
    p_shrink.add_argument("--out", default=None,
                          help="output path (default: overwrite input)")
    p_shrink.add_argument("--max-evals", type=int, default=80)
    p_shrink.set_defaults(fn=cmd_shrink)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
