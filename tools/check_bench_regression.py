#!/usr/bin/env python
"""CI perf gate: diff benchmark JSON sidecars against committed baselines.

Compares every ``*.json`` file present in *both* the baseline and current
directories, walking the numeric leaves under the ``data`` and ``derived``
top-level keys.  Each leaf is classified by its key name:

* **lower is better** (time/space): key mentions ``ms``, ``bytes``,
  ``seconds``, ``latency``, or ``bubble`` — a regression is the current
  value rising above baseline by more than the tolerance;
* **higher is better** (rates/ratios): key mentions ``speedup``,
  ``throughput``, ``images_per_sec``, ``eff`` (incl. ``ef_sustained`` /
  ``ef_peak`` / ``efficiency``), ``mfu``, ``tflops``, or ``hits`` — a
  regression is the current value falling below baseline;
* anything else is informational and not gated.

Checks are one-sided: getting *faster* never fails the gate (refresh the
baselines to bank an improvement — see DESIGN.md "Performance").

A gated baseline leaf that the current run no longer emits is a hard
failure (exit 1) — silently skipping it would let a regression hide by
deleting its metric; retire the leaf from the committed baseline
alongside the bench change instead.

Absolute time/space leaves are hardware-dependent, so they take their own
(usually looser) tolerance via ``--tolerance-absolute``; derived ratios
like ``*_speedup`` transfer across machines and stay tight.

Exit status: 0 clean, 1 regressions found, 2 usage/IO error.

Usage::

    python tools/check_bench_regression.py \
        --baseline benchmarks/results --current /tmp/bench-out \
        [--tolerance 0.30] [--tolerance-absolute 1.0]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

#: top-level sidecar keys whose numeric leaves are compared.
GATED_SECTIONS = ("data", "derived")

#: word-level markers (matched against ``_``-separated key parts).
LOWER_IS_BETTER = ("ms", "bytes", "seconds", "latency", "bubble")
HIGHER_IS_BETTER = ("speedup", "throughput", "eff", "ef", "efficiency",
                    "mfu", "tflops", "hits")
#: substring markers for compound names.
HIGHER_SUBSTRINGS = ("images_per_sec", "img_per_s", "per_sec")


@dataclass
class Regression:
    file: str
    path: str
    baseline: float
    current: float
    ratio: float
    direction: str

    def __str__(self) -> str:
        return (f"{self.file}: {self.path}: {self.baseline:g} -> "
                f"{self.current:g} ({self.ratio:+.1%}, worse = "
                f"{self.direction})")


def classify(key: str) -> str | None:
    """``'lower'`` / ``'higher'`` = which direction is *better*, or None
    if the leaf is not gated."""
    parts = key.lower().replace("-", "_").split("_")
    joined = "_".join(parts)
    if any(marker in parts for marker in LOWER_IS_BETTER):
        return "lower"
    if any(marker in parts for marker in HIGHER_IS_BETTER) \
            or any(s in joined for s in HIGHER_SUBSTRINGS) \
            or "efficiency" in joined:
        return "higher"
    return None


def numeric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to ``{"a.b.c": value}`` for numeric leaves."""
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(numeric_leaves(value, child))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        leaves[prefix] = float(node)
    return leaves


def gated_leaves(payload: dict) -> dict[str, float]:
    leaves: dict[str, float] = {}
    for section in GATED_SECTIONS:
        if section in payload:
            leaves.update(numeric_leaves(payload[section], section))
    return leaves


def compare_file(name: str, baseline: dict, current: dict,
                 tolerance: float, tolerance_absolute: float
                 ) -> tuple[list[Regression], list[str], int]:
    """Returns ``(regressions, missing_gated_paths, leaves_checked)``.

    A *gated* baseline leaf absent from the current run is a hard
    failure, not a skip: a silently dropped metric is exactly how a
    perf regression escapes the gate (the bench stops emitting the
    number, the gate stops checking it).  Ungated informational leaves
    may come and go freely.
    """
    base_leaves = gated_leaves(baseline)
    cur_leaves = gated_leaves(current)
    regressions: list[Regression] = []
    missing: list[str] = []
    checked = 0
    for path, base in sorted(base_leaves.items()):
        better = classify(path.rsplit(".", 1)[-1])
        if better is None:
            continue
        if path not in cur_leaves:
            missing.append(f"{name}: {path} (baseline {base:g}, gated "
                           f"'{better} is better') missing from the "
                           "current run")
            continue
        if base == 0:
            continue
        checked += 1
        cur = cur_leaves[path]
        delta = (cur - base) / abs(base)
        tol = tolerance_absolute if better == "lower" else tolerance
        worse = delta > tol if better == "lower" else -delta > tol
        if worse:
            regressions.append(Regression(
                file=name, path=path, baseline=base, current=cur,
                ratio=delta, direction="higher" if better == "lower"
                else "lower"))
    return regressions, missing, checked


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="directory of committed baseline sidecars")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced sidecars")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="relative tolerance for ratio/rate leaves "
                             "(default 0.30 = ±30%%)")
    parser.add_argument("--tolerance-absolute", type=float, default=None,
                        help="relative tolerance for absolute time/space "
                             "leaves (hardware-dependent; defaults to "
                             "--tolerance)")
    args = parser.parse_args(argv)
    if args.tolerance_absolute is None:
        args.tolerance_absolute = args.tolerance

    for d in (args.baseline, args.current):
        if not os.path.isdir(d):
            sys.stderr.write(f"check_bench_regression: not a directory: "
                             f"{d}\n")
            return 2

    names = sorted(
        set(n for n in os.listdir(args.baseline) if n.endswith(".json"))
        & set(n for n in os.listdir(args.current) if n.endswith(".json")))
    if not names:
        sys.stderr.write("check_bench_regression: no common *.json "
                         "sidecars to compare\n")
        return 2

    all_regressions: list[Regression] = []
    all_missing: list[str] = []
    total_checked = 0
    for name in names:
        with open(os.path.join(args.baseline, name)) as fh:
            baseline = json.load(fh)
        with open(os.path.join(args.current, name)) as fh:
            current = json.load(fh)
        regressions, missing, checked = compare_file(
            name, baseline, current, args.tolerance,
            args.tolerance_absolute)
        all_regressions.extend(regressions)
        all_missing.extend(missing)
        total_checked += checked

    if all_missing:
        sys.stderr.write("gated baseline leaves missing from the current "
                         "run:\n")
        for item in all_missing:
            sys.stderr.write(f"  {item}\n")
        sys.stderr.write(f"{len(all_missing)} gated leaf/leaves "
                         "disappeared; a bench that stops emitting a "
                         "metric must also retire it from the committed "
                         "baseline (see DESIGN.md).\n")
    if all_regressions:
        sys.stderr.write("benchmark regressions (vs committed baselines):\n")
        for reg in all_regressions:
            sys.stderr.write(f"  {reg}\n")
        sys.stderr.write(f"{len(all_regressions)} regression(s) across "
                         f"{len(names)} file(s); if intentional, refresh "
                         "the baselines (see DESIGN.md).\n")
    if all_regressions or all_missing:
        return 1
    sys.stdout.write(f"check_bench_regression: OK ({total_checked} leaves "
                     f"in {len(names)} files)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
