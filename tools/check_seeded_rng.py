#!/usr/bin/env python
"""Lint: no unseeded / module-level randomness in ``src/repro/``.

The simulation-testing harness (``repro.simtest``) relies on every run
being a pure function of its scenario: replaying a committed repro must
reproduce the identical violation set bit-for-bit.  The stdlib
``random`` module and NumPy's legacy global generator
(``np.random.rand()``, ``np.random.seed()``, ...) both draw from hidden
process-global state, so one stray call anywhere in the stack silently
breaks replay — and, worse, only for whoever imports modules in a
different order.

Flagged (AST-based):

* ``import random`` / ``from random import ...`` — the stdlib module is
  global-state RNG by construction;
* ``np.random.<fn>(...)`` / ``numpy.random.<fn>`` attribute access where
  ``<fn>`` is not an explicitly-seeded construct (``default_rng``,
  ``Generator``, the bit generators, ``SeedSequence``).

Draw from ``np.random.default_rng(seed)`` (or a ``Generator`` threaded
through from one) instead.  Exits non-zero listing ``file:line``
locations.
"""

from __future__ import annotations

import ast
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from walklib import iter_python_files, relpath, resolve_roots

#: ``np.random`` attributes that are explicitly-seeded constructs, not
#: draws from the hidden global state.
SEEDED_CONSTRUCTS = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})

#: Names the ``numpy`` module is commonly bound to.
_NUMPY_ALIASES = frozenset({"np", "numpy"})


def _random_module_imports(tree: ast.AST) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith(
                        "random."):
                    out.append((node.lineno,
                                "import random (global-state RNG; use "
                                "np.random.default_rng(seed))"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                out.append((node.lineno,
                            "from random import ... (global-state RNG; "
                            "use np.random.default_rng(seed))"))
    return out


def _global_numpy_rng(tree: ast.AST) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        # match <np|numpy>.random.<fn> where fn is a hidden-state draw
        if not isinstance(node, ast.Attribute):
            continue
        base = node.value
        if not (isinstance(base, ast.Attribute) and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in _NUMPY_ALIASES):
            continue
        if node.attr in SEEDED_CONSTRUCTS:
            continue
        out.append((node.lineno,
                    f"np.random.{node.attr} draws from the global "
                    "generator (use np.random.default_rng(seed))"))
    return out


def unseeded_rng(path: str) -> list[tuple[int, str]]:
    """``(line, reason)`` pairs for every unseeded-randomness use."""
    with open(path, "rb") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []  # unparseable files are some other tool's problem
    return sorted(_random_module_imports(tree) + _global_numpy_rng(tree))


def main(argv: list[str] | None = None) -> int:
    roots = resolve_roots(argv, program="check_seeded_rng")
    if roots is None:
        return 2
    violations: list[str] = []
    for path in iter_python_files(roots):
        for line, reason in unseeded_rng(path):
            violations.append(f"{relpath(path)}:{line}: {reason}")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write(f"check_seeded_rng: OK ({len(roots)} root"
                     f"{'s' if len(roots) != 1 else ''})\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
