#!/usr/bin/env python
"""SWiPe layout autotuner CLI: derive, snapshot, and verify tuned plans.

Subcommands over :mod:`repro.parallel.autotune`:

* ``plan`` — enumerate + prune + rank layouts for a (config, machine,
  rank budget, global batch), print the ranked frontier, optionally
  calibrate the top-K with a measured kernel-workload FLOP rate, and
  optionally snapshot the plan JSON;
* ``verify`` — re-derive every committed snapshot and fail on drift
  (the CI gate): a changed chosen layout, reordered frontier, stale
  digest, or shifted predictions all exit non-zero.

Usage::

    python tools/autotune_cli.py plan --config tiny --machine aurora \
        --world 32 --gbs 8 --out benchmarks/results/plans
    python tools/autotune_cli.py plan --smoke
    python tools/autotune_cli.py verify
    python tools/autotune_cli.py verify --tables /tmp/frontiers

``--smoke`` is the CI preset: the tiny config on Aurora with a 32-rank
budget and a short calibration measurement.  Calibration never enters
the plan digest, so a measured and an unmeasured run of the same inputs
produce the same content-addressed artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))
sys.path.insert(0, _ROOT)

SMOKE = dict(config="tiny", machine="aurora", world=32, gbs=8,
             micro_batches=(1, 2))


def measure_flops_per_s(repeats: int = 3) -> float:
    """Sustained training FLOP rate from the shared kernel workload.

    Times the ``aeris_train_step_tiny`` optimized path (min over
    ``repeats``, after one warmup) and divides the analytic training
    FLOPs for its batch by the best wall time.
    """
    from benchmarks.kernel_workloads import WORKLOADS
    from repro.model.config import TINY
    from repro.perf.flops import training_flops_per_sample

    workload = WORKLOADS["aeris_train_step_tiny"]()
    step = workload.optimized
    step()  # warmup: builds the model + primes plan caches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - t0)
    flops = training_flops_per_sample(TINY) * 2  # the workload's batch
    return flops / best


def cmd_plan(args) -> int:
    from repro.parallel import autotune

    if args.smoke:
        args.config = SMOKE["config"]
        args.machine = SMOKE["machine"]
        args.world = SMOKE["world"]
        args.gbs = SMOKE["gbs"]
        args.micro_batches = ",".join(str(m) for m in SMOKE["micro_batches"])
    if args.world is None or args.gbs is None:
        print("plan: --world and --gbs are required (or --smoke)",
              file=sys.stderr)
        return 2
    config = autotune.resolve_config(args.config)
    machine = autotune.resolve_machine(args.machine)
    micro_batches = tuple(int(m) for m in args.micro_batches.split(","))
    rate = None if args.no_measure else measure_flops_per_s()
    try:
        plan = autotune.plan_for(
            config, machine, args.world, args.gbs,
            pipeline=not args.mono, micro_batches=micro_batches,
            top_k=args.top_k, measured_flops_per_s=rate)
    except autotune.NoFeasibleLayout as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(plan.to_json(), end="")
    else:
        print(autotune.frontier_table(plan))
        if rate is not None:
            measured = plan.calibration["measured_step_s"]
            chosen = measured[plan.chosen.layout_key]
            worst = measured[plan.worst.layout_key]
            print(f"measured rate {rate:.3e} FLOP/s | chosen "
                  f"{chosen:.4g} s vs worst {worst:.4g} s "
                  f"({worst / chosen:.1f}x margin)")
    if args.out:
        path = autotune.save_plan(plan, args.out)
        print(f"snapshot written: {path}", file=sys.stderr)
    return 0


def cmd_verify(args) -> int:
    from repro.parallel import autotune

    directory = args.plans
    paths = sorted(
        os.path.join(directory, name) for name in os.listdir(directory)
        if name.endswith(".json")) if os.path.isdir(directory) else []
    if not paths:
        print(f"verify: no plan snapshots under {directory}",
              file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        plan = autotune.load_plan(path)
        drifts = autotune.verify_plan(plan)
        table = autotune.frontier_table(plan)
        if args.tables:
            os.makedirs(args.tables, exist_ok=True)
            name = os.path.splitext(os.path.basename(path))[0] + ".txt"
            with open(os.path.join(args.tables, name), "w") as fh:
                fh.write(table + "\n")
        status = "OK" if not drifts else "DRIFT"
        print(f"{status:>5}  {os.path.basename(path)}  "
              f"chosen {plan.chosen.layout_key}  "
              f"digest {plan.digest[:12]}")
        for drift in drifts:
            failures += 1
            print(f"       - {drift}")
    if failures:
        print(f"verify: {failures} drift finding(s) — regenerate the "
              f"snapshots with 'plan --out {directory}' and review the "
              "layout change", file=sys.stderr)
        return 1
    print(f"verify: {len(paths)} snapshot(s) clean")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="derive a tuned layout plan")
    p.add_argument("--config", default="tiny",
                   help="model config name (tiny/small/1.3B/...)")
    p.add_argument("--machine", default="aurora", help="aurora or lumi")
    p.add_argument("--world", type=int, default=None, help="rank budget")
    p.add_argument("--gbs", type=int, default=None, help="global batch")
    p.add_argument("--mono", action="store_true",
                   help="monolithic (PP=1) single-process layouts")
    p.add_argument("--micro-batches", default="1,2,4",
                   help="comma-separated micro-batch sizes to consider")
    p.add_argument("--top-k", type=int, default=3,
                   help="survivors to calibrate with the measured rate")
    p.add_argument("--no-measure", action="store_true",
                   help="skip the wall-clock rate measurement")
    p.add_argument("--smoke", action="store_true",
                   help="CI preset: tiny @ aurora, world=32, gbs=8")
    p.add_argument("--json", action="store_true",
                   help="print the full plan JSON instead of the table")
    p.add_argument("--out", default=None,
                   help="also write the snapshot into this directory")
    p.set_defaults(func=cmd_plan)

    v = sub.add_parser("verify",
                       help="re-derive committed snapshots; fail on drift")
    v.add_argument("--plans",
                   default=os.path.join(_ROOT, "benchmarks", "results",
                                        "plans"),
                   help="snapshot directory to verify")
    v.add_argument("--tables", default=None,
                   help="write per-plan frontier tables here (CI artifact)")
    v.set_defaults(func=cmd_verify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
