#!/usr/bin/env python
"""Lint: metric names follow the ``subsystem.name_unit`` convention.

Every instrument registered through the metrics registry
(``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` with a
string-literal name) must spell its name as ``subsystem.name``: one
lowercase dotted namespace segment, then lowercase snake_case.  Metrics
carrying a physical unit must use the canonical suffix — ``_s`` for
seconds, ``_bytes`` for bytes, ``_frac`` for fractions — so dashboards
and the Prometheus exporter never mix ``_ms`` with ``_seconds`` for the
same quantity.  Label keys passed to ``.inc(...)`` / ``.set(...)`` /
``.observe(...)`` chained directly on a registration must be lowercase
snake_case too.

AST-based: only string-literal metric names are checkable (a computed
name is the caller's responsibility).  Exits non-zero listing offending
``file:line`` locations.

Usage::

    python tools/check_metric_names.py                  # all of src/repro
    python tools/check_metric_names.py src/repro/serve  # one package
"""

from __future__ import annotations

import ast
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from walklib import iter_python_files, relpath, resolve_roots

#: ``subsystem.name`` — exactly one dot, lowercase snake_case both sides.
NAME_RE = re.compile(r"^[a-z][a-z0-9]*\.[a-z][a-z0-9_]*$")

LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Non-canonical unit suffixes → the canonical spelling.
BAD_SUFFIXES = {
    "_seconds": "_s", "_sec": "_s", "_secs": "_s", "_ms": "_s",
    "_millis": "_s", "_us": "_s", "_ns": "_s",
    "_kb": "_bytes", "_mb": "_bytes", "_gb": "_bytes", "_b": "_bytes",
    "_pct": "_frac", "_percent": "_frac", "_ratio": "_frac",
}

#: Registry methods that register an instrument by name.
REGISTER_METHODS = ("counter", "gauge", "histogram")

#: Recording methods whose kwargs are label keys.
RECORD_METHODS = ("inc", "set", "observe")


def check_name(name: str) -> str | None:
    """The violation message for one metric name, or ``None`` if clean."""
    if not NAME_RE.match(name):
        return (f"metric {name!r} does not match subsystem.name "
                "(lowercase snake_case, exactly one dot)")
    for suffix, canonical in BAD_SUFFIXES.items():
        if name.endswith(suffix):
            return (f"metric {name!r} uses non-canonical unit suffix "
                    f"{suffix!r} (use {canonical!r})")
    return None


def _is_register_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in REGISTER_METHODS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str))


def metric_violations(path: str) -> list[tuple[int, str]]:
    """(line, message) pairs for one file."""
    with open(path, "rb") as fh:
        tree = ast.parse(fh.read(), filename=path)
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if _is_register_call(node):
            message = check_name(node.args[0].value)
            if message:
                out.append((node.lineno, message))
        # Label kwargs only on calls chained directly off a registration
        # (``registry.counter("x.y").inc(1, label=...)``): a bare
        # ``.set(...)`` elsewhere is usually not a metric.
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RECORD_METHODS
                and _is_register_call(node.func.value)):
            for kw in node.keywords:
                if kw.arg is None or kw.arg == "buckets":
                    continue
                if not LABEL_RE.match(kw.arg):
                    out.append((node.lineno,
                                f"label {kw.arg!r} is not lowercase "
                                "snake_case"))
    return sorted(out)


def main(argv: list[str] | None = None) -> int:
    roots = resolve_roots(argv, program="check_metric_names")
    if roots is None:
        return 2
    violations: list[str] = []
    n_files = 0
    for path in iter_python_files(roots):
        n_files += 1
        for line, message in metric_violations(path):
            violations.append(f"{relpath(path)}:{line}: {message}")
    if violations:
        sys.stderr.write("\n".join(violations) + "\n")
        return 1
    sys.stdout.write(f"check_metric_names: OK ({n_files} files)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
