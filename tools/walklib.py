"""Shared file-walking helpers for the repo lint checkers.

Every checker used to carry its own ``os.walk`` loop with slightly
different sorting/exemption behavior; this module is the single canonical
walk: deterministic order, ``.py`` filter, directory exemptions.
"""

from __future__ import annotations

import os
import sys
from typing import Iterable, Iterator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src", "repro")


def iter_python_files(roots: Iterable[str],
                      exempt_dirs: Iterable[str] = ()) -> Iterator[str]:
    """Yield ``.py`` file paths under ``roots`` in deterministic
    (sorted) order, skipping any directory that is — or sits inside —
    an entry of ``exempt_dirs``."""
    exempt = tuple(os.path.abspath(d) for d in exempt_dirs)
    for root in roots:
        for dirpath, _dirnames, filenames in sorted(os.walk(root)):
            if any(dirpath == d or dirpath.startswith(d + os.sep)
                   for d in exempt):
                continue
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def resolve_roots(argv: list[str] | None, default: str = SRC,
                  program: str = "lint") -> list[str] | None:
    """CLI roots -> absolute dirs (default ``src/repro``); ``None`` +
    stderr message if any argument is not a directory."""
    roots = [os.path.abspath(p) for p in (argv or [])] or [default]
    for root in roots:
        if not os.path.isdir(root):
            sys.stderr.write(f"{program}: not a directory: {root}\n")
            return None
    return roots


def relpath(path: str) -> str:
    """Repo-relative form of ``path`` for diagnostics."""
    return os.path.relpath(path, REPO_ROOT)
