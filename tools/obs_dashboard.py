#!/usr/bin/env python
"""Render the repro health dashboard from exported telemetry files.

Offline companion to :func:`repro.obs.render_dashboard`: point it at a
metrics snapshot (the registry's JSON, e.g. from
``repro.obs.write_metrics_json``) and/or a flight-recorder JSONL dump
and get the same terminal panel a live session renders — useful for
reading a CI artifact or a crash post-mortem without the process that
produced it.

Usage::

    python tools/obs_dashboard.py --metrics metrics.json
    python tools/obs_dashboard.py --metrics a.json b.json \\
        --flight flight.jsonl --tail 20 --out dashboard.txt

Multiple ``--metrics`` files are merged (per-rank snapshots aggregate
the way :func:`repro.obs.merge_snapshots` does).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.obs import FlightRecorder, MetricsRegistry, render_dashboard


def load_registry(paths: list[str]) -> MetricsRegistry:
    registry = MetricsRegistry()
    for path in paths:
        with open(path) as fh:
            registry.load_snapshot(json.load(fh), merge=True)
    return registry


def load_flight(path: str) -> FlightRecorder:
    recorder = FlightRecorder()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            recorder.record(event["kind"],
                            subsystem=event.get("subsystem", "repro"),
                            severity=event.get("severity", "info"),
                            **event.get("data", {}))
    return recorder


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="render the repro health dashboard from exports")
    parser.add_argument("--metrics", nargs="*", default=[],
                        help="registry JSON snapshot(s); merged")
    parser.add_argument("--flight", default=None,
                        help="flight-recorder JSONL dump")
    parser.add_argument("--tail", type=int, default=8,
                        help="flight events to show (default 8)")
    parser.add_argument("--out", default=None,
                        help="write the panel here instead of stdout")
    args = parser.parse_args(argv)
    if not args.metrics and not args.flight:
        parser.error("need --metrics and/or --flight")

    registry = load_registry(args.metrics) if args.metrics else None
    recorder = load_flight(args.flight) if args.flight else None
    panel = render_dashboard(registry=registry, recorder=recorder,
                             plan_caches={}, tail=args.tail)
    if args.out:
        from repro.resilience import atomic_write
        atomic_write(args.out, panel)
    else:
        sys.stdout.write(panel)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
