#!/usr/bin/env python
"""Operational CLI: inspect and maintain a model registry.

Subcommands over a :class:`repro.registry.ModelRegistry` root:

* ``list`` — one line per version: status, step, parent, weights digest,
  gated skill aggregates when a scorecard is attached;
* ``show`` — full metadata for one version: artifacts, lineage chain,
  transition history, scorecard summary;
* ``gc`` — delete unreferenced blobs (``--dry-run`` to preview), then
  re-verify every referenced blob's content digest.

Usage::

    python tools/registry_cli.py --root /models/registry list
    python tools/registry_cli.py --root /models/registry show v0002
    python tools/registry_cli.py --root /models/registry gc --dry-run
    python tools/registry_cli.py --root /models/registry list --json

Exits non-zero when ``show`` names an unknown version or ``gc``'s
post-collection verify finds a corrupted blob.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def _summary_text(scorecard: dict | None) -> str:
    if not scorecard or not scorecard.get("summary"):
        return "no scorecard"
    return " ".join(f"{k}={v:.4g}"
                    for k, v in sorted(scorecard["summary"].items()))


def cmd_list(registry, args) -> int:
    rows = [registry.get(v) for v in registry.versions()]
    if args.json:
        print(json.dumps({"root": registry.root,
                          "stats": registry.stats(),
                          "versions": [r.to_dict() for r in rows]},
                         indent=2, sort_keys=True))
        return 0
    if not rows:
        print(f"empty registry at {registry.root}")
        return 0
    for r in rows:
        live = "*" if r.status == "live" else " "
        print(f"{live} {r.version:<12} {r.status:<12} step {r.created_step:<8}"
              f" parent {r.parent or '-':<12} {r.weights_digest[:12]}  "
              f"{_summary_text(r.scorecard)}")
    stats = registry.stats()
    print(f"{stats['versions']} version(s), {stats['blobs']} blob(s), "
          f"{stats['blob_bytes']:,} bytes")
    return 0


def cmd_show(registry, args) -> int:
    from repro.registry import RegistryError
    try:
        record = registry.get(args.version)
        chain = registry.lineage(args.version)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({**record.to_dict(), "lineage": chain},
                         indent=2, sort_keys=True))
        return 0
    print(f"version  {record.version} ({record.status})")
    print(f"lineage  {' <- '.join(chain)}")
    print(f"source   {record.source or '-'}")
    print(f"step     {record.created_step}   seed {record.seed}")
    for name in sorted(record.artifacts):
        print(f"artifact {name:<14} {record.artifacts[name]}")
    print(f"skill    {_summary_text(record.scorecard)}")
    for h in record.history:
        print(f"history  {h['src']} -> {h['dst']}"
              + (f"  ({h['reason']})" if h.get("reason") else ""))
    return 0


def cmd_gc(registry, args) -> int:
    removed = registry.gc(dry_run=args.dry_run)
    findings = registry.verify()
    if args.json:
        print(json.dumps({"dry_run": args.dry_run, "removed": removed,
                          "findings": findings, "stats": registry.stats()},
                         indent=2, sort_keys=True))
    else:
        verb = "would remove" if args.dry_run else "removed"
        print(f"{verb} {len(removed)} unreferenced blob(s)")
        for digest in removed:
            print(f"  {digest[:16]}")
        for finding in findings:
            print(f"CORRUPT {finding}", file=sys.stderr)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", required=True,
                        help="registry root directory")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="one line per registered version")
    show = sub.add_parser("show", help="full metadata for one version")
    show.add_argument("version")
    gc = sub.add_parser("gc", help="collect unreferenced blobs + verify")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")
    args = parser.parse_args(argv)

    from repro.registry import ModelRegistry
    registry = ModelRegistry(args.root)
    return {"list": cmd_list, "show": cmd_show,
            "gc": cmd_gc}[args.command](registry, args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
