#!/usr/bin/env python
"""Single lint entrypoint: run every repo checker, fail if any fails.

CI calls this one script instead of each checker individually; adding a
checker here adds it everywhere.  Each checker is a module in ``tools/``
exposing ``main(argv) -> int`` (0 = clean).

Usage::

    python tools/lint.py                  # all checkers, default roots
    python tools/lint.py src/repro/serve  # restrict to one package
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bare_except
import check_metric_names
import check_no_print
import check_seeded_rng

#: name -> main(argv) callable; extend to register a new checker.
CHECKERS = {
    "check_no_print": check_no_print.main,
    "check_bare_except": check_bare_except.main,
    "check_metric_names": check_metric_names.main,
    "check_seeded_rng": check_seeded_rng.main,
}


def main(argv: list[str] | None = None) -> int:
    failed: list[str] = []
    for name, checker in CHECKERS.items():
        rc = checker(argv)
        if rc != 0:
            failed.append(f"{name} (exit {rc})")
    if failed:
        sys.stderr.write("lint: FAILED: " + ", ".join(failed) + "\n")
        return 1
    sys.stdout.write(f"lint: OK ({len(CHECKERS)} checkers)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
