"""Quickstart: train a tiny AERIS on the synthetic reanalysis and make an
ensemble forecast.

Runs in ~1 minute on a laptop::

    python examples/quickstart.py
"""

import numpy as np

from repro import SolverConfig, quickstart_components
from repro.data import TOY_SET
from repro.eval import crps_ensemble, ensemble_mean_rmse, spread_skill_ratio


def main() -> None:
    print("Generating a synthetic reanalysis and building the trainer ...")
    archive, trainer = quickstart_components(train_years=0.5, seed=0)
    print(f"  archive: {archive.fields.shape} "
          f"({', '.join(TOY_SET.names)})")
    print(f"  model:   {trainer.model.num_parameters():,} parameters")

    print("Training (200 steps of the TrigFlow diffusion objective) ...")
    trainer.fit(200)
    print(f"  loss {np.mean(trainer.history[:20]):.3f} -> "
          f"{np.mean(trainer.history[-20:]):.3f}")

    print("Forecasting: 5-member ensemble, 2 days ahead ...")
    forecaster = trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    ic = int(archive.split_indices("test")[10])
    ens = forecaster.ensemble_rollout(archive.fields[ic], n_steps=8,
                                      n_members=5, seed=0, start_index=ic)
    truth = archive.fields[ic:ic + 9]

    z = TOY_SET.index("Z500")
    for lead in (4, 8):
        e = ens[:, lead, ..., z]
        t = truth[lead, ..., z]
        print(f"  +{lead * 6:3d}h Z500: ens-mean RMSE "
              f"{ensemble_mean_rmse(e, t, archive.grid):6.2f} m, CRPS "
              f"{crps_ensemble(e, t, archive.grid):6.2f} m, SSR "
              f"{spread_skill_ratio(e, t, archive.grid):.2f}")
    print("Done. See examples/medium_range_ensemble.py for baselines and "
          "longer leads.")


if __name__ == "__main__":
    main()
