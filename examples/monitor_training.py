"""End-to-end health monitoring: a chaos training run plus a serving
burst under the full observability stack — flight recorder, health
detectors, alert reconciliation, terminal dashboard, and exporters.

Everything runs inside ``obs.monitored()``: the elastic supervisor
trains through a seeded fault plan (a bit flip, a dropped transfer, a
straggler, a rank death) while the health monitor watches loss, grad
norms, fault meters, and serve SLOs.  At the end the fired alerts are
reconciled against the injector's ledger (every injected fault class
must have alerted; nothing else may have), the dashboard is rendered,
and the telemetry is exported for offline reading::

    python examples/monitor_training.py --out /tmp/monitor
    python tools/obs_dashboard.py --metrics /tmp/monitor/metrics.json \\
        --flight /tmp/monitor/flight.jsonl

(~2 minutes)
"""

import argparse
import os

from repro import obs, quickstart_components
from repro.model import AerisConfig
from repro.obs import (TraceReport, render_dashboard, write_events_jsonl,
                       write_metrics_json, write_prometheus)
from repro.parallel import RankTopology
from repro.resilience import BitFlip, Drop, FailStop, FaultPlan, Straggle
from repro.resilience.supervisor import ElasticSupervisor, SupervisorConfig
from repro.serve import ForecastRequest, ForecastService, ServiceConfig

MICRO = AerisConfig(name="micro", height=16, width=32, channels=9,
                    forcing_channels=3, dim=16, heads=2, ffn_dim=32,
                    swin_layers=1, blocks_per_layer=1, window=(4, 4),
                    time_freqs=8)


def chaos_train(archive, checkpoint_root: str):
    """Five supervised steps through one fault of every class."""
    topo = RankTopology(dp=2, pp=MICRO.pp_stages, wp_grid=(1, 1), sp=1)
    dead_rank = topo.rank_of(1, 1, 0, 0)
    plan = FaultPlan(
        events=(BitFlip(step=1, primitive="allreduce", nth=0),
                Drop(step=2, primitive="p2p", nth=1),
                Straggle(step=2, primitive="*", nth=3, delay_s=0.03),
                FailStop(rank=dead_rank, step=3)),
        seed=0)
    sup = ElasticSupervisor(
        MICRO, archive, topo,
        SupervisorConfig(seed=0, global_batch=8, gas=2, save_every=1,
                         checkpoint_root=checkpoint_root,
                         max_restarts=4),
        fault_plan=plan)
    sup.run(5)
    return sup


def serve_burst(archive, trainer):
    """A small mixed-tier burst so the serve detectors see traffic."""
    service = ForecastService(trainer.forecaster(),
                              config=ServiceConfig(n_workers=2))
    ic = int(archive.split_indices("test")[0])
    state0 = archive.fields[ic]
    burst = [ForecastRequest(init_state=state0, n_steps=2, n_members=2,
                             tier="standard", seed=k, start_index=ic,
                             arrival_s=0.1 * k) for k in range(3)]
    service.run(burst)
    return service


def main() -> None:
    parser = argparse.ArgumentParser(
        description="chaos train + serve burst under full monitoring")
    parser.add_argument("--out", default="monitor_out",
                        help="telemetry export directory")
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)

    archive, trainer = quickstart_components(height=16, width=32,
                                             train_years=0.3, seed=0,
                                             test_years=0.1)
    trainer.fit(30)  # a quick warm model for the serving burst

    with obs.monitored() as m:
        print("Chaos training (1 bit flip, 1 drop, 1 straggler, "
              "1 rank death) ...")
        sup = chaos_train(archive, os.path.join(args.out, "ckpt"))
        print(f"  injected: {dict(sup.injector.injected)}")

        print("Serving burst ...")
        serve_burst(archive, trainer)

        print("Reconciling alerts against the fault ledger ...")
        report = TraceReport(m.tracer, m.registry)
        result = report.health_check(m.monitor, sup.injector)
        for fault, row in result["per_fault"].items():
            mark = "ok" if row["match"] else "MISMATCH"
            print(f"  {fault:>10}: injected x{row['injected']}, "
                  f"alert {row['alert_kind']} "
                  f"{'fired' if row['alerted'] else 'quiet'} [{mark}]")
        if not result["agrees"]:
            raise SystemExit("alert fidelity check FAILED")

        panel = render_dashboard(plan_caches={})
        print()
        print(panel)

        print(f"Exporting telemetry to {args.out}/ ...")
        write_prometheus(m.registry, os.path.join(args.out,
                                                  "metrics.prom"))
        write_metrics_json(m.registry, os.path.join(args.out,
                                                    "metrics.json"))
        write_events_jsonl(m.recorder.events(),
                           os.path.join(args.out, "flight.jsonl"))
        with open(os.path.join(args.out, "dashboard.txt"), "w") as fh:
            fh.write(panel)
        print(f"  {len(m.recorder)} flight events, "
              f"{m.monitor.alerts.fired} alert firings "
              f"({len(m.monitor.alerts.alerts)} after dedup)")


if __name__ == "__main__":
    main()
