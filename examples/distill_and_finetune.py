"""Paper Section VII-C extensions: consistency distillation (one-step
inference) and multistep finetuning.

    python examples/distill_and_finetune.py        (~3 minutes)
"""

import numpy as np

from repro import quickstart_components
from repro.diffusion import ConsistencyConfig, ConsistencyDistiller, SolverConfig
from repro.model import Aeris
from repro.train import MultistepConfig, MultistepFinetuner


def main() -> None:
    archive, trainer = quickstart_components(train_years=0.5, seed=4)
    print("Stage 1 — base diffusion training ...")
    trainer.fit(250)
    print(f"  loss {np.mean(trainer.history[:20]):.3f} -> "
          f"{np.mean(trainer.history[-20:]):.3f}")

    print("Stage 2 — consistency distillation to one-step inference ...")
    teacher = Aeris(trainer.model.config)
    teacher.load_state_dict(trainer.model.state_dict())
    trainer.ema.copy_to(teacher)
    teacher.eval()
    student = Aeris(trainer.model.config)
    student.load_state_dict(teacher.state_dict())
    distiller = ConsistencyDistiller(teacher, student,
                                     config=ConsistencyConfig(seed=0))
    rng = np.random.default_rng(0)
    for _ in range(60):
        idx = rng.choice(archive.split_indices("train"), size=4,
                         replace=False)
        cond, residual, forc = archive.training_batch(
            idx, trainer.state_norm, trainer.residual_norm,
            trainer.forcing_norm)
        distiller.train_step(residual, cond, forc)
    print(f"  distillation loss {distiller.history[0]:.4f} -> "
          f"{np.mean(distiller.history[-10:]):.4f}")
    nfe = distiller.teacher_sample_cost(SolverConfig(n_steps=10))
    print(f"  inference cost: {nfe} network evaluations -> 1 "
          f"({nfe}x cheaper per forecast step)")

    print("Stage 3 — multistep (rollout) finetuning ...")
    ft_model = Aeris(trainer.model.config)
    ft_model.load_state_dict(trainer.model.state_dict())
    finetuner = MultistepFinetuner(ft_model, archive,
                                   MultistepConfig(rollout_steps=2,
                                                   batch_size=4, lr=3e-4))
    finetuner.fit(60)
    print(f"  2-step rollout loss {np.mean(finetuner.history[:10]):.3f} -> "
          f"{np.mean(finetuner.history[-10:]):.3f}")
    print("Done.")


if __name__ == "__main__":
    main()
