"""Trace a toy SWiPe run and export a Chrome trace + TraceReport.

Runs one distributed (simulated) training step with PP=4 and 4
microbatches under full observability, then:

* writes ``swipe_trace.json`` — open it in ``chrome://tracing`` or
  https://ui.perfetto.dev to see the per-rank 1F1B staircase and its
  bubble;
* prints the span summary, the metrics table, and the ``TraceReport``
  cross-check of observed bubble fraction / collective bytes against the
  :mod:`repro.perf` analytical model.

::

    python examples/trace_swipe.py
"""

import numpy as np

from repro import AerisConfig, obs
from repro.data import ReanalysisConfig, SyntheticReanalysis
from repro.model import ParallelLayout
from repro.parallel import RankTopology, SwipeEngine
from repro.perf import AURORA, CommModel

CONFIG = AerisConfig(
    name="trace-demo", height=16, width=32, channels=9, forcing_channels=3,
    dim=32, heads=4, ffn_dim=64, swin_layers=2, blocks_per_layer=2,
    window=(4, 4), time_freqs=8,
    layout=ParallelLayout(wp=1, wp_grid=(1, 1), pp=4, sp=1, gas=4))


def main() -> None:
    print("Building a toy archive and a DP=2 x PP=4 SWiPe engine ...")
    archive = SyntheticReanalysis(ReanalysisConfig(
        height=16, width=32, train_years=0.3, val_years=0.1, test_years=0.1,
        seed=0, spinup_steps=60))
    topo = RankTopology(dp=2, pp=CONFIG.pp_stages, wp_grid=(1, 1), sp=1)

    with obs.observed() as (tracer, registry):
        engine = SwipeEngine(CONFIG, archive, topo, lr=1e-3, seed=0)
        idx = archive.split_indices("train")[:8]
        cond, residual, forc = archive.training_batch(
            idx, archive.state_normalizer(), archive.residual_normalizer(),
            archive.forcing_normalizer())
        x_t, t, v = engine.make_training_pairs(residual)
        print("Running one SWiPe step (GAS=4 microbatches, traced) ...")
        loss = engine.train_step(x_t, t, v, cond, forc, gas=4)
        print(f"  loss {loss:.3f}")

        tracer.write_chrome("swipe_trace.json")
        print("\nWrote swipe_trace.json — load it in chrome://tracing "
              "(per-rank 1F1B tracks are 'dp*/rank*').")

        report = obs.TraceReport(tracer, registry)
        report.pipeline_check(pp=topo.pp, n_micro=4,
                              track_prefix="dp0/rank")
        comm = CommModel(CONFIG, AURORA, topo)
        report.comm_check(
            engine.cluster.stats,
            predicted={"allreduce":
                       comm.grad_allreduce_bytes() * topo.pp * topo.dp})
        print()
        print(report.render())
        print()
        print(registry.as_table())
        print()
        print(engine.cluster.stats.as_table())


if __name__ == "__main__":
    main()
