"""Seasonal (S2S) stability demo: a 90-day autoregressive rollout with
Niño 3.4 and Hovmöller diagnostics (the Figure 7 workload at example
scale).

    python examples/seasonal_rollout.py        (~4 minutes)
"""

import numpy as np

from repro import SolverConfig, quickstart_components
from repro.data import TOY_SET
from repro.eval import hovmoller, nino34_index, propagation_speed, sharpness_ratio


def main() -> None:
    archive, trainer = quickstart_components(train_years=0.6, seed=2)
    print("Training AERIS ...")
    trainer.fit(300)
    forecaster = trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))

    ic = int(archive.split_indices("test")[4])
    n_days = 60  # bounded by the example archive's test split
    n_steps = n_days * 4
    print(f"Rolling out {n_days} days autoregressively ...")
    fcst = forecaster.rollout(archive.fields[ic], n_steps,
                              np.random.default_rng(0), start_index=ic)
    truth = archive.fields[ic:ic + n_steps + 1]

    assert np.isfinite(fcst).all(), "rollout blew up"
    print("Rollout is finite end to end — no collapse (paper Figure 7b).")

    # Day-60 variability vs the truth.
    for var in ("SST", "Q700", "Z500"):
        c = TOY_SET.index(var)
        ratio = fcst[-1, ..., c].std() / truth[-1, ..., c].std()
        print(f"  day-{n_days} {var} variability ratio fcst/truth: {ratio:.2f}")
    sharp = sharpness_ratio(fcst[-1, ..., TOY_SET.index("Q700")],
                            truth[-1, ..., TOY_SET.index("Q700")])
    print(f"  Q700 small-scale power ratio: {sharp:.2f} (1 = spectrally "
          "faithful)")

    # Niño 3.4 index (anomaly w.r.t. the training climatology).
    daily = slice(0, n_steps + 1, 4)
    clim = archive.daily_climatology()
    clim_stack = np.stack([archive.climatology_at(clim, ic + k)
                           for k in range(0, n_steps + 1, 4)])
    nino_f = nino34_index(fcst[daily], archive.grid, climatology=None) \
        - nino34_index(clim_stack, archive.grid)
    nino_t = nino34_index(truth[daily], archive.grid) \
        - nino34_index(clim_stack, archive.grid)
    print(f"\nNiño 3.4 anomaly (K): forecast day 0/30/{n_days}: "
          f"{nino_f[0]:+.2f}/{nino_f[30]:+.2f}/{nino_f[-1]:+.2f}  — truth: "
          f"{nino_t[0]:+.2f}/{nino_t[30]:+.2f}/{nino_t[-1]:+.2f}")

    # Hovmöller propagation.
    diagram = hovmoller(fcst, archive.grid)
    speed = propagation_speed(diagram, 6.0, archive.grid.dlon)
    print(f"Equatorial U850 Hovmöller: dominant propagation "
          f"{speed:+.1f} deg/day (truth-like variability, Figure 7c)")


if __name__ == "__main__":
    main()
