"""Canary rollout: registry-gated candidate promoted (or rolled back) live.

The full model lifecycle in one script: train an incumbent, register and
gate it, train a candidate, gate it against the incumbent, then let the
:class:`~repro.serve.DeploymentController` drive a canary rollout through
the serving event loop — a traffic fraction to the candidate, shadow
re-forecasts of incumbent traffic, and an automatic verdict.

    python examples/canary_rollout.py             (clean -> auto-promote)
    python examples/canary_rollout.py --regress   (skewed -> auto-rollback)

``--regress`` models *deployment skew*: the candidate that passed the
offline gate is not the candidate that reaches the workers (its weights
are corrupted en route, and a worker fail-stops mid-rollout for good
measure).  The shadow skill check catches it online and rolls back to
the incumbent digest exactly, firing a critical ``deploy.rollback``
alert.  Exits 0 only if the expected terminal state is reached and the
``deploy_check`` conservation identities hold.
"""

import argparse
import os
import sys
import tempfile

import numpy as np

from repro import obs, quickstart_components
from repro.diffusion import SolverConfig
from repro.obs import TraceReport
from repro.parallel import SimCluster
from repro.registry import (GateConfig, ModelRegistry, build_scorecard,
                            gate_version)
from repro.resilience import FailStop, FaultInjector, FaultPlan
from repro.serve import (DeployConfig, DeploymentController, ForecastRequest,
                         ForecastService, ServiceConfig, TierPolicy,
                         TierRouter)

ROUTER = TierRouter().with_policy(TierPolicy(
    name="standard", priority=1, solver_config=SolverConfig(n_steps=4),
    slo_s=30.0))

#: Toy-scale slack: short training makes per-IC skill noisy, so the gate
#: and the shadow comparison both get generous tolerances.  An operational
#: deployment would tighten these, not restructure anything.
GATE = GateConfig(rel_tolerance=0.5)
DEPLOY = DeployConfig(canary_fraction=0.4, shadow_fraction=1.0,
                      observation_window=8, shadow_skill_tol=0.5,
                      max_shadow_regressions=2)


def register_and_gate(registry, version, forecaster, archive, parent=None):
    registry.register_state(
        forecaster.model.state_dict(), forecaster.model.config,
        state_norm=forecaster.state_norm,
        residual_norm=forecaster.residual_norm,
        forcing_norm=forecaster.forcing_norm, version=version,
        parent=parent, source="examples/canary_rollout.py",
        scorecard=build_scorecard(forecaster, archive))
    decision = gate_version(registry, version, config=GATE)
    print(f"  gate {version}: {'PASS' if decision.passed else 'FAIL'}"
          + (f"  ({'; '.join(decision.reasons)})" if decision.reasons
             else ""))
    return decision


def corrupt(forecaster, scale=25.0, seed=13):
    """Deployment skew: perturb every weight by ``scale`` of its spread.

    The toy model is lightly trained, so mild perturbations barely move
    archive-truth RMSE — it takes a heavy hand to simulate a genuinely
    broken artifact (ratios ~2.5x incumbent at this scale)."""
    rng = np.random.default_rng(seed)
    state = forecaster.model.state_dict()
    skewed = {k: v + scale * (np.std(v) + 1e-6)
              * rng.standard_normal(v.shape).astype(v.dtype)
              for k, v in state.items()}
    forecaster.model.load_state_dict(skewed)
    return forecaster


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--regress", action="store_true",
                        help="corrupt the deployed candidate and inject a "
                        "worker fail-stop; expect auto-rollback")
    parser.add_argument("--events", default="deploy_events.jsonl",
                        help="where to write the deploy event log")
    args = parser.parse_args(argv)

    print("Training the incumbent ...")
    archive, trainer = quickstart_components(train_years=0.4, seed=1)
    trainer.fit(120)
    incumbent = trainer.forecaster()
    print("Training the candidate (same run, further along) ...")
    trainer.fit(80)
    candidate = trainer.forecaster()

    registry = ModelRegistry(tempfile.mkdtemp(prefix="canary_registry_"))
    print(f"Registry at {registry.root}")
    register_and_gate(registry, "v0001", incumbent, archive)
    registry.set_status("v0001", "live")
    decision = register_and_gate(registry, "v0002", candidate, archive,
                                 parent="v0001")
    if not decision.passed:
        print("candidate did not gate; nothing to canary")
        return 1

    obs.enable()
    monitor, recorder = obs.enable_health()
    cluster = None
    if args.regress:
        plan = FaultPlan(events=(FailStop(rank=0, step=3),))
        cluster = SimCluster(3, injector=FaultInjector(plan))
    service = ForecastService(
        registry.forecaster("v0001", forcing_fn=incumbent.forcing_fn),
        router=ROUTER, version="v0001", cluster=cluster,
        config=ServiceConfig(n_workers=2))

    def archive_truth(req):
        """Shadow truth straight from the reanalysis archive."""
        i = req.start_index
        return archive.fields[i:i + req.n_steps + 1]

    controller = DeploymentController(service, registry=registry,
                                      config=DEPLOY, truth_fn=archive_truth)
    if args.regress:
        print("\nStarting canary (candidate skewed in transit) ...")
        deployed = corrupt(
            registry.forecaster("v0002", forcing_fn=incumbent.forcing_fn))
        controller.start_canary("v0002", deployed)
    else:
        print("\nStarting canary (candidate materialized from registry) ...")
        controller.start_canary("v0002")

    test_idx = archive.split_indices("test")
    burst = [ForecastRequest(init_state=archive.fields[int(i)],
                             start_index=int(i), n_steps=4, n_members=2,
                             seed=s, arrival_s=0.5 * s)
             for s, i in enumerate(test_idx[:24])]
    responses = service.run(burst)

    summary = controller.summary()
    served = {v: sum(1 for r in responses if r.version == v)
              for v in sorted({r.version for r in responses})}
    print(f"\nTerminal state: {summary['state']}")
    print(f"  served by version: {served}")
    print(f"  shadows {summary['counts']['shadows']}, regressions "
          f"{summary['counts']['shadow_regressions']}, reassigned "
          f"{summary['counts']['reassigned']}")
    for t in summary["transitions"]:
        print(f"  transition {t['kind']:<14} {t.get('reason', '')}")
    print(f"  active {service.active_version} @ "
          f"{service.bindings[service.active_version].weights_digest[:12]}")
    print(f"  registry live: {registry.live()}")

    report = TraceReport()
    check = report.deploy_check(service, controller)
    print("\n" + "\n".join(line for line in report.render().splitlines()
                           if "deploy" in line or "OK" in line or "BAD"
                           in line))

    events = recorder.events(subsystem="deploy")
    os.makedirs(os.path.dirname(os.path.abspath(args.events)),
                exist_ok=True)
    obs.write_events_jsonl(events, args.events)
    print(f"\n{len(events)} deploy event(s) -> {args.events}")

    ok = check["agrees"] and all(r.ok for r in responses)
    if args.regress:
        ok &= summary["state"] == "rolled_back"
        ok &= registry.get("v0002").status == "rolled_back"
        critical = [a for a in monitor.alerts.alerts
                    if a.kind == "deploy.rollback"
                    and a.severity == "critical"]
        print(f"critical deploy.rollback alerts: {len(critical)}")
        ok &= bool(critical)
    else:
        ok &= summary["state"] == "promoted"
        ok &= registry.live() == "v0002"
    obs.disable()
    print("\nPASS" if ok else "\nFAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
