"""Medium-range ensemble forecasting against baselines (the Figure 5a
workload at example scale).

Trains AERIS (TrigFlow diffusion) and compares a 4-member ensemble to the
perturbed-physics numerical ensemble (the IFS-ENS stand-in), persistence,
and climatology over a 7-day rollout.

    python examples/medium_range_ensemble.py        (~3 minutes)
"""

import numpy as np

from repro import SolverConfig, quickstart_components
from repro.baselines import (
    ClimatologyForecaster,
    NumericalEnsemble,
    NumericalEnsembleConfig,
    persistence_forecast,
)
from repro.data import TOY_SET
from repro.eval import crps_ensemble, ensemble_mean_rmse, spread_skill_ratio


def main() -> None:
    archive, trainer = quickstart_components(train_years=0.6, seed=1)
    print("Training AERIS ...")
    trainer.fit(300)
    forecaster = trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    nwp = NumericalEnsemble(archive, NumericalEnsembleConfig(seed=2))
    clim = ClimatologyForecaster(archive)

    ic = int(archive.split_indices("test")[20])
    n_steps, members = 28, 4  # 7 days, 6-hourly
    state0 = archive.fields[ic]
    truth = archive.fields[ic:ic + n_steps + 1]

    print("Running the four systems ...")
    systems = {
        "AERIS": forecaster.ensemble_rollout(state0, n_steps, members,
                                             seed=3, start_index=ic),
        "IFS-like": nwp.ensemble_rollout(ic, n_steps, members),
        "Persistence": persistence_forecast(state0, n_steps)[None],
        "Climatology": clim.rollout(ic, n_steps)[None],
    }

    for var in ("Z500", "T2M"):
        c = TOY_SET.index(var)
        print(f"\n{var}  (lead: RMSE of the ensemble mean / CRPS / SSR)")
        for name, ens in systems.items():
            cells = []
            for lead_days in (1, 3, 5, 7):
                k = lead_days * 4
                r = ensemble_mean_rmse(ens[:, k, ..., c], truth[k, ..., c],
                                       archive.grid)
                cr = crps_ensemble(ens[:, k, ..., c], truth[k, ..., c],
                                   archive.grid)
                if ens.shape[0] > 1:
                    s = spread_skill_ratio(ens[:, k, ..., c],
                                           truth[k, ..., c], archive.grid)
                    cells.append(f"d{lead_days}: {r:6.2f}/{cr:6.2f}/{s:4.2f}")
                else:
                    cells.append(f"d{lead_days}: {r:6.2f}/{cr:6.2f}/  — ")
            print(f"  {name:12s} " + "  ".join(cells))
    print("\nNote AERIS's SSR < 1 — under-dispersive, exactly as the paper "
          "reports for both AERIS and GenCast.")


if __name__ == "__main__":
    main()
