"""SWiPe scaling study: run the distributed training engine on the
simulated cluster, inspect the metered communication, and print the
analytical full-machine projections (Tables II/III, Figure 4).

    python examples/scaling_study.py        (~1 minute)
"""

import numpy as np

from repro.data import ReanalysisConfig, SyntheticReanalysis
from repro.model import TABLE_II, AerisConfig, ParallelLayout, count_parameters
from repro.parallel import RankTopology, SwipeEngine
from repro.perf import (
    AURORA,
    estimate_performance,
    scaling_efficiency,
    strong_scaling_wp,
    weak_scaling_series,
)


def simulated_training_demo() -> None:
    """A real SWiPe training step (DP x PP x WP x SP) on the simulated
    cluster, with byte-metered collectives."""
    print("== Simulated SWiPe training step (tiny model) ==")
    archive = SyntheticReanalysis(ReanalysisConfig(
        height=16, width=32, train_years=0.3, val_years=0.1,
        test_years=0.1, seed=0, spinup_steps=80))
    config = AerisConfig(
        name="demo", height=16, width=32, channels=9, forcing_channels=3,
        dim=32, heads=4, ffn_dim=64, swin_layers=2, blocks_per_layer=2,
        window=(4, 4), time_freqs=8,
        layout=ParallelLayout(wp=4, wp_grid=(2, 2), pp=4, sp=2, gas=2))
    topo = RankTopology(dp=2, pp=4, wp_grid=(2, 2), sp=2)
    engine = SwipeEngine(config, archive, topo, lr=1e-3, seed=0)
    print(f"  topology: DP={topo.dp} x PP={topo.pp} x WP={topo.wp} x "
          f"SP={topo.sp} = {topo.world_size} ranks on {topo.nodes} nodes")

    idx = archive.split_indices("train")[:8]
    cond, residual, forc = archive.training_batch(
        idx, archive.state_normalizer(), archive.residual_normalizer(),
        archive.forcing_normalizer())
    x_t, t, v = engine.make_training_pairs(residual)
    loss = engine.train_step(x_t, t, v, cond, forc, gas=2)
    print(f"  loss: {loss:.4f}")
    stats = engine.cluster.stats
    for prim in ("p2p", "allreduce", "allgather"):
        print(f"  {prim:10s}: {stats.total_bytes(prim) / 1e6:8.2f} MB "
              f"({'PP activations' if prim == 'p2p' else 'DP gradients' if prim == 'allreduce' else 'ZeRO-1 params'})")


def full_machine_projections() -> None:
    print("\n== Full-machine projections (analytical model) ==")
    for name, cfg in TABLE_II.items():
        if name.endswith("(L)"):
            continue
        lay = cfg.layout
        dp = {"1.3B": 40, "13B": 30, "40B": 14, "80B": 5}[name]
        gbs = dp * lay.gas
        topo = RankTopology(dp=dp, pp=lay.pp, wp_grid=lay.wp_grid, sp=lay.sp)
        est = estimate_performance(cfg, AURORA, topo, gbs=gbs)
        print(f"  {name:5s} ({count_parameters(cfg) / 1e9:5.1f}B params, "
              f"{est.nodes:6d} nodes): {est.images_per_sec:7.1f} img/s, "
              f"{est.ef_sustained:5.2f} EF sustained, MFU "
              f"{est.mfu * 100:4.1f}%")

    cfg = TABLE_II["40B"]
    print("\n  40B weak scaling (paper: 95.5% at 10,080 nodes):")
    series = weak_scaling_series(cfg, AURORA, [1, 2, 4, 8, 14])
    for est, eff in zip(series, scaling_efficiency(series)):
        print(f"    {est.nodes:6d} nodes: {est.images_per_sec:6.1f} img/s "
              f"({eff * 100:5.1f}%)")
    print("\n  40B WP strong scaling (paper: 100/87/64%):")
    series = strong_scaling_wp(cfg, AURORA, 140, [(6, 6), (8, 8), (12, 12)])
    for est, eff in zip(series, scaling_efficiency(series)):
        print(f"    WP={est.nodes // 20:4d}: {est.images_per_sec:6.2f} img/s "
              f"({eff * 100:5.1f}%)")


if __name__ == "__main__":
    simulated_training_demo()
    full_machine_projections()
