"""Serving forecasts: stand up a ForecastService in front of a trained
model, fire a mixed-tier burst at it, and read the accounting back.

Shows the full serving loop — admission, micro-batching, the
content-addressed cache, tiered samplers (one-step student vs
DPM-Solver), and the observability cross-check — at example scale.

    python examples/serve_forecasts.py        (~2 minutes)
"""

import numpy as np

from repro import obs, quickstart_components
from repro.diffusion import ConsistencyConfig, ConsistencyDistiller
from repro.model import Aeris
from repro.serve import ForecastRequest, ForecastService, ServiceConfig


def distill_student(archive, trainer, n_steps=60):
    """A quick consistency distillation for the ``fast`` tier."""
    teacher = Aeris(trainer.model.config)
    teacher.load_state_dict(trainer.model.state_dict())
    trainer.ema.copy_to(teacher)
    teacher.eval()
    student = Aeris(trainer.model.config)
    student.load_state_dict(teacher.state_dict())
    distiller = ConsistencyDistiller(teacher, student,
                                     config=ConsistencyConfig(seed=0))
    rng = np.random.default_rng(0)
    train_idx = archive.split_indices("train")
    for _ in range(n_steps):
        idx = rng.choice(train_idx, size=4, replace=False)
        cond, residual, forc = archive.training_batch(
            idx, trainer.state_norm, trainer.residual_norm,
            trainer.forcing_norm)
        distiller.train_step(residual, cond, forc)
    return student


def main() -> None:
    archive, trainer = quickstart_components(train_years=0.4, seed=1)
    print("Training AERIS ...")
    trainer.fit(150)
    print("Distilling the one-step student (fast tier) ...")
    student = distill_student(archive, trainer)

    obs.enable()
    service = ForecastService(trainer.forecaster(), student=student,
                              config=ServiceConfig(n_workers=2))

    # A burst: three users ask about the same initial condition (two of
    # them identically — cache hits), across quality tiers.
    ic = int(archive.split_indices("test")[10])
    state0 = archive.fields[ic]
    burst = [
        ForecastRequest(init_state=state0, n_steps=4, n_members=4,
                        tier="standard", seed=7, start_index=ic,
                        arrival_s=0.0),
        ForecastRequest(init_state=state0, n_steps=4, n_members=4,
                        tier="standard", seed=7, start_index=ic,
                        arrival_s=0.1),  # identical -> pure cache
        ForecastRequest(init_state=state0, n_steps=8, n_members=2,
                        tier="fast", seed=3, start_index=ic,
                        arrival_s=0.2),  # one student eval per step
    ]
    responses = service.run(burst)

    for resp in responses:
        req = resp.request
        print(f"\n{req.tier:>8} tier, {req.n_members} members x "
              f"{req.n_steps} steps -> {resp.status}")
        print(f"  latency {resp.latency_s * 1e3:7.1f} ms   "
              f"queue wait {resp.queue_wait_s * 1e3:6.1f} ms   "
              f"worker {resp.worker}")
        print(f"  batch: {resp.batch_members} members in "
              f"{resp.batch_forwards} stacked forwards   cache "
              f"{resp.cache_hits} hits / {resp.cache_misses} misses")

    print("\nService accounting:")
    stats = service.stats()
    print(f"  tally {stats['tally']}")
    cache = stats["cache"]
    print(f"  cache {cache['entries']} entries, {cache['bytes']:,} B, "
          f"hit rate {cache['hit_rate']:.2f}")
    report = obs.TraceReport()
    report.serve_check(service)
    print("\n" + report.render().splitlines()[1])
    obs.disable()


if __name__ == "__main__":
    main()
