"""Tropical-cyclone case study (the Figure 6 workload at example scale).

Finds a cyclone in the synthetic test period, forecasts it with an AERIS
ensemble and with the perturbed-physics numerical ensemble, and compares
tracks and intensities.

    python examples/hurricane_case_study.py        (~3 minutes)
"""

import numpy as np

from repro import SolverConfig, quickstart_components
from repro.baselines import NumericalEnsemble, NumericalEnsembleConfig
from repro.eval import track_cyclone, track_error_km


def find_cyclone(archive, min_age_days: float = 2.5):
    """Strongest test-period cyclone old enough that it already existed at
    the forecast initialization time."""
    lo, hi = archive.splits["test"]
    best = None
    for i in range(lo, hi, 4):
        state = archive.internal_state_at(i)
        for tc in state.cyclones:
            if tc.age_days < min_age_days:
                continue
            if best is None or tc.intensity > best[3]:
                best = (i, tc.lat, tc.lon, tc.intensity)
    return best


def main() -> None:
    # A full test year so a cyclone season is guaranteed to be covered.
    archive, trainer = quickstart_components(train_years=0.6, seed=3,
                                             test_years=1.0)
    storm = find_cyclone(archive)
    if storm is None:
        print("No cyclone found in the test period of this seed; try "
              "another seed.")
        return
    peak_idx, lat, lon, intensity = storm
    print(f"Cyclone found at step {peak_idx}, ({lat:.1f}N, {lon:.1f}E), "
          f"intensity {intensity:.2f}")

    print("Training AERIS ...")
    trainer.fit(300)
    forecaster = trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    nwp = NumericalEnsemble(archive, NumericalEnsembleConfig(seed=4))

    lead = 8  # 2 days before peak
    init = peak_idx - lead
    n_steps = lead + 6
    state0 = archive.internal_state_at(init)
    storm0 = max(state0.cyclones, key=lambda c: c.intensity, default=None)
    if storm0 is None:
        print("Storm had not formed yet at the chosen lead; rerun with a "
              "shorter lead.")
        return
    truth = archive.fields[init:init + n_steps + 1]
    truth_track = track_cyclone(truth, archive.grid, storm0.lat, storm0.lon)

    ens = forecaster.ensemble_rollout(archive.fields[init], n_steps, 3,
                                      seed=5, start_index=init)
    nwp_ens = nwp.ensemble_rollout(init, n_steps, 3)

    print(f"\nTruth track ({len(truth_track)} x 6h):")
    for p in truth_track[::2]:
        print(f"  step {p.step:2d}: ({p.lat:6.1f}, {p.lon:6.1f}) "
              f"MSLP {p.min_mslp:7.1f} hPa, max wind {p.max_wind:5.1f} m/s")

    for name, members in (("AERIS", ens), ("IFS-like", nwp_ens)):
        errs = []
        for m in range(members.shape[0]):
            tr = track_cyclone(members[m], archive.grid, storm0.lat,
                               storm0.lon)
            if len(tr) >= 2:
                errs.append(track_error_km(truth_track, tr).mean())
        print(f"{name:10s}: mean track error "
              f"{np.mean(errs):7.0f} km over {len(errs)} members")


if __name__ == "__main__":
    main()
