"""Figure 5b — heatwave case study.

Finds a real heatwave event in the test period (via the truth GCM's
internal event list, standing in for the August-2020 London heatwave),
launches an AERIS ensemble a few days ahead, and checks the ensemble
captures the temperature rise at the event location.
"""

import numpy as np
from conftest import write_result

from repro.data import TOY_SET
from repro.diffusion import SolverConfig
from repro.eval import heatwave_hit_rate, point_series


def find_heatwave(archive):
    """Strongest in-progress heatwave in the test split: returns
    (peak_index, lat, lon)."""
    lo, hi = archive.splits["test"]
    best = None
    for i in range(lo, hi, 8):
        state = archive.internal_state_at(i)
        for hw in state.heatwaves:
            env = archive.gcm._event_envelope(hw.age_days, hw.duration_days)
            strength = hw.amplitude * env
            if best is None or strength > best[0]:
                best = (strength, i, hw.lat, hw.lon, hw.age_days,
                        hw.duration_days)
    if best is None:
        return None
    _, i, lat, lon, age, duration = best
    return i, lat, lon, age, duration


def run_case(archive, aeris_trainer):
    found = find_heatwave(archive)
    assert found is not None, "no heatwave in the test period"
    peak_idx, lat, lon, age, duration = found
    lead_steps = 8  # 2-day lead: event already ramping, like the paper's
    # "all ensemble members capture the sharp rise" regime
    init = peak_idx - lead_steps
    horizon = lead_steps + 16  # through the event decay
    fc = aeris_trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    ens = fc.ensemble_rollout(archive.fields[init], horizon, 5, seed=31,
                              start_index=init)
    truth = archive.fields[init:init + horizon + 1]
    clim = archive.daily_climatology()
    clim_series = np.array([
        archive.climatology_at(clim, init + k)[
            archive.grid.lat_index(lat), archive.grid.lon_index(lon),
            TOY_SET.index("T2M")]
        for k in range(horizon + 1)])
    truth_series = point_series(truth, archive.grid, lat, lon)
    member_series = np.stack([
        point_series(ens[m], archive.grid, lat, lon)
        for m in range(ens.shape[0])])
    return (peak_idx, lat, lon, truth_series, member_series, clim_series,
            lead_steps)


def test_fig5b_heatwave(benchmark, bench_archive, aeris_trainer):
    (peak_idx, lat, lon, truth_series, member_series, clim_series,
     lead_steps) = benchmark.pedantic(
        run_case, args=(bench_archive, aeris_trainer), rounds=1,
        iterations=1)
    truth_anom = truth_series - clim_series
    ens_anom = member_series - clim_series[None]
    lines = [
        f"Figure 5b — heatwave case study at ({lat:.1f}N, {lon:.1f}E), "
        f"forecast initialized {lead_steps * 6} h before the event peak "
        f"(archive step {peak_idx})",
        f"{'step':>5s} {'truth T2M anom':>15s} {'ens mean':>10s} "
        f"{'ens min':>9s} {'ens max':>9s}",
    ]
    for k in range(truth_series.shape[0]):
        lines.append(f"{k:>5d} {truth_anom[k]:>15.2f} "
                     f"{ens_anom[:, k].mean():>10.2f} "
                     f"{ens_anom[:, k].min():>9.2f} "
                     f"{ens_anom[:, k].max():>9.2f}")
    hit = heatwave_hit_rate(member_series, clim_series, threshold=2.0,
                            min_steps=3)
    lines.append(f"\nensemble hit rate (>= 2K for >= 18h): {hit:.2f}")
    write_result("fig5b_heatwave.txt", "\n".join(lines) + "\n")

    # Shape assertions, scoped to the toy model's capability: the truth
    # shows a sustained warm anomaly; the ensemble carries the ongoing
    # event forward in the short range (members stay warm over the first
    # day) and a majority of members register the heatwave.
    assert truth_anom[lead_steps] > 1.0
    first_day = ens_anom[:, 1:5].mean()
    assert first_day > 0.0, "ensemble dropped the ongoing heatwave immediately"
    assert hit >= 0.5
