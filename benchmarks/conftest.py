"""Shared benchmark fixtures.

The domain benchmarks (Figures 5–7) need trained forecasting systems; the
three learned systems (AERIS diffusion, GenCast-like EDM, deterministic) are
trained once per session on a shared bench archive and reused.  Result
tables are written to ``benchmarks/results/`` in addition to stdout so the
regenerated "figures" survive pytest's output capture.  Every table also
gets a machine-readable ``<name>.json`` sidecar (pass structured values via
``write_result(..., data=...)``); when :mod:`repro.obs` is enabled the
sidecar additionally carries the metrics snapshot and span summary, so a
bench run leaves a regressable telemetry artifact.
"""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.baselines import DeterministicTrainer, EdmConfig, EdmTrainer
from repro.data import ReanalysisConfig, SyntheticReanalysis
from repro.model import Aeris, AerisConfig, ParallelLayout
from repro.train import Trainer, TrainerConfig

# run_benches.py redirects sidecars (e.g. into a CI artifact dir) via env.
RESULTS_DIR = os.environ.get("BENCH_RESULTS_DIR") or os.path.join(
    os.path.dirname(__file__), "results")

#: The benchmark model: same architecture as the paper's, toy scale.
BENCH_CONFIG = AerisConfig(
    name="bench", height=24, width=48, channels=9, forcing_channels=3,
    dim=48, heads=4, ffn_dim=96, swin_layers=2, blocks_per_layer=2,
    window=(4, 4), time_freqs=16,
    layout=ParallelLayout(wp=4, wp_grid=(2, 2), pp=4, sp=2, gas=2))

TRAIN_STEPS = 350
TRAIN_CFG = TrainerConfig(batch_size=8, peak_lr=6e-3, warmup_images=160,
                          total_images=500_000, decay_images=1_000, seed=0)


CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")


def _json_default(obj):
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    return str(obj)


def write_result(name: str, text: str, data=None) -> None:
    """Write the text table plus a ``<stem>.json`` machine-readable report
    (structured ``data`` if the bench provides it, and — when
    :mod:`repro.obs` is enabled — the metrics snapshot + span summary)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as fh:
        fh.write(text)
    stem = os.path.splitext(name)[0]
    payload = {"bench": stem, "text": text}
    if data is not None:
        payload["data"] = data
    registry = obs.metrics()
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    tracer = obs.get_tracer()
    if tracer is not None:
        payload["span_summary"] = tracer.summary()
    with open(os.path.join(RESULTS_DIR, stem + ".json"), "w") as fh:
        json.dump(payload, fh, indent=2, default=_json_default)
    print(text)


def _fit_cached(trainer, tag: str):
    """Train once per (tag, steps) and cache weights + EMA on disk, so
    re-running individual benches does not retrain."""
    from repro.train import load_checkpoint, save_checkpoint
    os.makedirs(CACHE_DIR, exist_ok=True)
    path = os.path.join(CACHE_DIR, f"{tag}_{TRAIN_STEPS}.npz")
    if os.path.exists(path):
        load_checkpoint(path, trainer.model, ema=trainer.ema)
        return trainer
    trainer.fit(TRAIN_STEPS)
    save_checkpoint(path, trainer.model, ema=trainer.ema,
                    images_seen=trainer.images_seen)
    return trainer


@pytest.fixture(scope="session")
def bench_archive() -> SyntheticReanalysis:
    """24x48 archive: 1.0y train / 0.25y val / 0.75y test."""
    return SyntheticReanalysis(ReanalysisConfig(
        height=24, width=48, train_years=1.0, val_years=0.25,
        test_years=0.75, seed=3, spinup_steps=200))


@pytest.fixture(scope="session")
def aeris_trainer(bench_archive) -> Trainer:
    return _fit_cached(Trainer(Aeris(BENCH_CONFIG, seed=0), bench_archive,
                               TRAIN_CFG), "aeris")


@pytest.fixture(scope="session")
def edm_trainer(bench_archive) -> EdmTrainer:
    return _fit_cached(EdmTrainer(Aeris(BENCH_CONFIG, seed=1), bench_archive,
                                  TRAIN_CFG, EdmConfig(n_sample_steps=6)),
                       "edm")


@pytest.fixture(scope="session")
def det_trainer(bench_archive) -> DeterministicTrainer:
    return _fit_cached(DeterministicTrainer(Aeris(BENCH_CONFIG, seed=2),
                                            bench_archive, TRAIN_CFG),
                       "det")
