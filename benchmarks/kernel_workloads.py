"""Shared kernel-benchmark workload definitions.

One place defines each hot-path workload as an *(optimized, reference)*
callable pair — ``bench_kernels.py`` wraps them in pytest-benchmark tests,
and ``run_benches.py`` times them directly (interleaved A/B, min-of-N) to
produce the ``BENCH_kernels.json`` sidecar the CI regression gate consumes.

The reference callable runs the same computation with
:func:`repro.kernels.disable_kernels`; by the golden tests the two must be
bit-exact, so a workload's correctness check is just array equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data import GcmConfig, LatLonGrid, StaticFields, ToyGCM
from repro.kernels import disable_kernels
from repro.model import TINY, Aeris
from repro.nn import MultiHeadAttention
from repro.parallel import SimCluster, shard_sequence, ulysses_attention
from repro.tensor import Tensor, no_grad


@dataclass
class Workload:
    """A named benchmark workload.

    ``optimized`` runs with the kernel layer live (the default execution
    mode); ``reference`` runs the identical computation on the reference
    paths, or is ``None`` for workloads with no fast/slow split.
    """

    name: str
    optimized: Callable[[], object]
    reference: Callable[[], object] | None = None


def _with_reference(fn: Callable[[], object]) -> Callable[[], object]:
    def run():
        with disable_kernels():
            return fn()
    return run


def window_attention_forward() -> Workload:
    """The ISSUE's headline: fused windowed attention forward, no grad."""
    rng = np.random.default_rng(0)
    attn = MultiHeadAttention(64, 4, rng=rng)
    x = Tensor(rng.normal(size=(2, 16, 64, 64)).astype(np.float32))

    def forward():
        with no_grad():
            return attn(x)

    return Workload("window_attention_forward", forward,
                    _with_reference(forward))


def window_partition_roundtrip() -> Workload:
    """Shifted partition+merge: one planned gather vs the 4-op chain."""
    from repro.kernels import plan_merge, plan_partition, window_plan
    from repro.model import cyclic_shift, window_merge, window_partition

    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(4, 32, 64, 32)).astype(np.float32))
    grid, window, shift = (32, 64), (8, 8), (4, 4)
    plan = window_plan(grid, window, shift)

    def planned():
        return plan_merge(plan_partition(x, plan), plan)

    def reference():
        shifted = cyclic_shift(x, shift)
        merged = window_merge(window_partition(shifted, window), grid, window)
        return cyclic_shift(merged, shift, reverse=True)

    return Workload("window_partition_roundtrip", planned, reference)


def aeris_forward_tiny() -> Workload:
    rng = np.random.default_rng(2)
    model = Aeris(TINY, seed=0)
    cfg = TINY
    x_t = Tensor(rng.normal(size=(1, cfg.height, cfg.width, cfg.channels)
                            ).astype(np.float32))
    t = Tensor(np.array([0.5], np.float32))
    cond = Tensor(rng.normal(size=x_t.shape).astype(np.float32))
    forc = Tensor(rng.normal(
        size=(1, cfg.height, cfg.width, cfg.forcing_channels)
    ).astype(np.float32))

    def forward():
        with no_grad():
            return model(x_t, t, cond, forc)

    return Workload("aeris_forward_tiny", forward, _with_reference(forward))


def aeris_train_step_tiny() -> Workload:
    rng = np.random.default_rng(3)
    model = Aeris(TINY, seed=0)
    cfg = TINY
    x_t = rng.normal(size=(2, cfg.height, cfg.width, cfg.channels)
                     ).astype(np.float32)
    t = np.full(2, 0.5, np.float32)
    cond = rng.normal(size=x_t.shape).astype(np.float32)
    forc = rng.normal(size=(2, cfg.height, cfg.width, cfg.forcing_channels)
                      ).astype(np.float32)

    def step():
        model.zero_grad()
        out = model(Tensor(x_t), Tensor(t), Tensor(cond), Tensor(forc))
        (out ** 2).mean().backward()
        return out

    return Workload("aeris_train_step_tiny", step, _with_reference(step))


def ulysses_alltoall_attention() -> Workload:
    sp = 4
    cluster = SimCluster(sp, ranks_per_node=sp)
    rng = np.random.default_rng(4)
    shape = (8, 64, 4, 16)
    q, k, v = (rng.normal(size=shape).astype(np.float32) for _ in range(3))
    qs, ks, vs = (shard_sequence(a, sp) for a in (q, k, v))
    return Workload(
        "ulysses_alltoall_attention",
        lambda: ulysses_attention(cluster, list(range(sp)), qs, ks, vs))


def gcm_step() -> Workload:
    grid = LatLonGrid(24, 48)
    gcm = ToyGCM(grid, StaticFields.generate(grid), GcmConfig())
    state = gcm.initial_state(seed=0, spinup_steps=40)
    return Workload("gcm_step", lambda: gcm.step(state))


#: name -> factory; ordered as they should run/report.
WORKLOADS: dict[str, Callable[[], Workload]] = {
    "window_attention_forward": window_attention_forward,
    "window_partition_roundtrip": window_partition_roundtrip,
    "aeris_forward_tiny": aeris_forward_tiny,
    "aeris_train_step_tiny": aeris_train_step_tiny,
    "ulysses_alltoall_attention": ulysses_alltoall_attention,
    "gcm_step": gcm_step,
}
