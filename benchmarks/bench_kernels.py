"""Kernel microbenchmarks: the hot operations of the reproduction.

These use pytest-benchmark's statistical timing (multiple rounds), unlike
the figure benches which run their expensive workload once.
"""

import numpy as np
import pytest

from repro.data import GcmConfig, LatLonGrid, StaticFields, ToyGCM
from repro.model import TINY, Aeris, window_merge, window_partition
from repro.nn import MultiHeadAttention
from repro.parallel import SimCluster, shard_sequence, ulysses_attention
from repro.tensor import Tensor, no_grad

rng = np.random.default_rng(0)


def test_window_partition_roundtrip(benchmark):
    x = Tensor(rng.normal(size=(4, 32, 64, 32)).astype(np.float32))

    def roundtrip():
        w = window_partition(x, (8, 8))
        return window_merge(w, (32, 64), (8, 8))

    out = benchmark(roundtrip)
    assert out.shape == x.shape


def test_window_attention_forward(benchmark):
    attn = MultiHeadAttention(64, 4, rng=rng)
    x = Tensor(rng.normal(size=(2, 16, 64, 64)).astype(np.float32))

    def forward():
        with no_grad():
            return attn(x)

    out = benchmark(forward)
    assert out.shape == x.shape


def test_ulysses_alltoall_attention(benchmark):
    sp = 4
    cluster = SimCluster(sp, ranks_per_node=sp)
    shape = (8, 64, 4, 16)
    q = rng.normal(size=shape).astype(np.float32)
    k = rng.normal(size=shape).astype(np.float32)
    v = rng.normal(size=shape).astype(np.float32)
    qs, ks, vs = (shard_sequence(a, sp) for a in (q, k, v))

    out = benchmark(lambda: ulysses_attention(cluster, list(range(sp)),
                                              qs, ks, vs))
    assert len(out) == sp


def test_gcm_step(benchmark):
    grid = LatLonGrid(24, 48)
    gcm = ToyGCM(grid, StaticFields.generate(grid), GcmConfig())
    state = gcm.initial_state(seed=0, spinup_steps=40)
    benchmark(lambda: gcm.step(state))


def test_gcm_diagnostics(benchmark):
    grid = LatLonGrid(24, 48)
    gcm = ToyGCM(grid, StaticFields.generate(grid), GcmConfig())
    state = gcm.initial_state(seed=0, spinup_steps=40)
    fields = benchmark(lambda: gcm.diagnostics(state))
    assert fields.shape == (24, 48, 9)


def test_aeris_forward_tiny(benchmark):
    model = Aeris(TINY, seed=0)
    cfg = TINY
    x_t = Tensor(rng.normal(size=(1, cfg.height, cfg.width, cfg.channels)
                            ).astype(np.float32))
    t = Tensor(np.array([0.5], np.float32))
    cond = Tensor(rng.normal(size=x_t.shape).astype(np.float32))
    forc = Tensor(rng.normal(
        size=(1, cfg.height, cfg.width, cfg.forcing_channels)
    ).astype(np.float32))

    def forward():
        with no_grad():
            return model(x_t, t, cond, forc)

    out = benchmark(forward)
    assert out.shape == x_t.shape


def test_aeris_train_step_tiny(benchmark):
    model = Aeris(TINY, seed=0)
    cfg = TINY
    x_t = rng.normal(size=(2, cfg.height, cfg.width, cfg.channels)
                     ).astype(np.float32)
    t = np.full(2, 0.5, np.float32)
    cond = rng.normal(size=x_t.shape).astype(np.float32)
    forc = rng.normal(size=(2, cfg.height, cfg.width, cfg.forcing_channels)
                      ).astype(np.float32)

    def step():
        model.zero_grad()
        out = model(Tensor(x_t), Tensor(t), Tensor(cond), Tensor(forc))
        (out ** 2).mean().backward()

    benchmark(step)
