"""Kernel microbenchmarks: the hot operations of the reproduction.

These use pytest-benchmark's statistical timing (multiple rounds), unlike
the figure benches which run their expensive workload once.  Workload
definitions live in :mod:`kernel_workloads` (shared with
``run_benches.py``); each optimized workload gets a ``_reference`` twin
that runs the same computation with the kernel layer disabled, so a single
``pytest benchmarks/bench_kernels.py`` shows the before/after side by side.
"""

import numpy as np

from kernel_workloads import (
    aeris_forward_tiny,
    aeris_train_step_tiny,
    gcm_step,
    ulysses_alltoall_attention,
    window_attention_forward,
    window_partition_roundtrip,
)

from repro.data import GcmConfig, LatLonGrid, StaticFields, ToyGCM
from repro.model import TINY


def test_window_partition_roundtrip(benchmark):
    w = window_partition_roundtrip()
    out = benchmark(w.optimized)
    assert out.shape == (4, 32, 64, 32)


def test_window_partition_roundtrip_reference(benchmark):
    w = window_partition_roundtrip()
    out = benchmark(w.reference)
    assert out.shape == (4, 32, 64, 32)


def test_window_attention_forward(benchmark):
    w = window_attention_forward()
    out = benchmark(w.optimized)
    assert out.shape == (2, 16, 64, 64)


def test_window_attention_forward_reference(benchmark):
    w = window_attention_forward()
    out = benchmark(w.reference)
    assert out.shape == (2, 16, 64, 64)


def test_ulysses_alltoall_attention(benchmark):
    w = ulysses_alltoall_attention()
    out = benchmark(w.optimized)
    assert len(out) == 4


def test_gcm_step(benchmark):
    benchmark(gcm_step().optimized)


def test_gcm_diagnostics(benchmark):
    grid = LatLonGrid(24, 48)
    gcm = ToyGCM(grid, StaticFields.generate(grid), GcmConfig())
    state = gcm.initial_state(seed=0, spinup_steps=40)
    fields = benchmark(lambda: gcm.diagnostics(state))
    assert fields.shape == (24, 48, 9)


def test_aeris_forward_tiny(benchmark):
    w = aeris_forward_tiny()
    out = benchmark(w.optimized)
    assert out.shape == (1, TINY.height, TINY.width, TINY.channels)


def test_aeris_forward_tiny_reference(benchmark):
    w = aeris_forward_tiny()
    benchmark(w.reference)


def test_aeris_train_step_tiny(benchmark):
    benchmark(aeris_train_step_tiny().optimized)


def test_aeris_train_step_tiny_reference(benchmark):
    benchmark(aeris_train_step_tiny().reference)


def test_optimized_paths_match_reference():
    """Spot-check (also held exhaustively by tests/kernels/test_golden.py):
    every paired workload's two callables agree bit-for-bit."""
    for factory in (window_attention_forward, window_partition_roundtrip,
                    aeris_forward_tiny):
        w = factory()
        a, b = w.optimized(), w.reference()
        np.testing.assert_array_equal(a.numpy(), b.numpy(), err_msg=w.name)
