#!/usr/bin/env python
"""ABFT overhead benchmark: training steps with GEMM checksums on vs off.

Times the same trainer configuration in paired interleaved rounds — one
round alternates an *off* segment (ABFT disarmed: the default execution
mode) with an *on* segment (``abft_guard()``: column-checksum
verification after every guarded GEMM in the attention hot path) — so
CPU frequency drift biases both sides equally.  The training step is the
operational unit the defense ships inside (the guarded
:class:`~repro.train.Trainer` arms ABFT around whole steps), so the
budget is expressed per step.  The headline is

* ``derived.abft_enabled_speedup`` — off-time / on-time (≈1.0 when the
  checksums are cheap; gated higher-is-better by
  ``tools/check_bench_regression.py`` against the committed baseline);
* ``derived.overhead_frac`` — on/off - 1 over the *minimum* round times
  (the noise floor of each mode: the checksum work is deterministic, so
  it shows up fully in the mins, while allocator/GC spikes inflate only
  the medians), the fraction of a training step spent verifying
  checksums.  ``--max-overhead 0.10`` turns the ISSUE's overhead budget
  into a hard CI failure; ``derived.overhead_frac_p50`` is the
  median-based view, informational.

Before timing, the benchmark proves the armed guard is *live* — it
injects one GEMM bit flip and requires :class:`ComputeCorruption` — so
a "zero-overhead" result can never mean the verification silently
stopped running.

Standalone::

    PYTHONPATH=src python benchmarks/bench_sdc.py --smoke \\
        --max-overhead 0.10
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import quickstart_components  # noqa: E402
from repro.kernels import abft_guard  # noqa: E402
from repro.resilience import (ComputeCorruption, ComputeFault,  # noqa: E402
                              FaultInjector, FaultPlan, inject_compute)


def _build_trainer(seed: int):
    _, trainer = quickstart_components(height=16, width=32,
                                       train_years=0.3, seed=seed,
                                       test_years=0.1)
    return trainer


def _prove_guard_live(trainer) -> None:
    """One injected GEMM flip must be caught, or the timings are void."""
    injector = FaultInjector(FaultPlan(
        events=(ComputeFault(step=0, site="gemm", nth=0),)))
    injector.advance(0)
    try:
        with abft_guard(), inject_compute(injector):
            trainer.train_step()
    except ComputeCorruption:
        return
    raise SystemExit("ABFT guard did not detect an injected GEMM flip — "
                     "refusing to benchmark a dead guard")


def _segment_time(trainer, n_steps: int) -> float:
    start = time.perf_counter()
    trainer.fit(n_steps)
    return (time.perf_counter() - start) / n_steps


def run(rounds: int, steps_per_round: int, warmup: int) -> dict:
    """Per-step times (seconds) for both modes, interleaved by round."""
    _prove_guard_live(_build_trainer(seed=1))
    off_trainer = _build_trainer(seed=0)
    on_trainer = _build_trainer(seed=0)
    off_trainer.fit(warmup)
    with abft_guard():
        on_trainer.fit(warmup)
    off_times: list[float] = []
    on_times: list[float] = []
    for _ in range(rounds):
        off_times.append(_segment_time(off_trainer, steps_per_round))
        with abft_guard():
            on_times.append(_segment_time(on_trainer, steps_per_round))
    return {"off_s": off_times, "on_s": on_times}


def report(times: dict, rounds: int, steps_per_round: int) -> dict:
    off = np.asarray(times["off_s"])
    on = np.asarray(times["on_s"])
    off_p50 = float(np.median(off))
    on_p50 = float(np.median(on))
    return {
        "bench": "BENCH_sdc",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {"rounds": rounds, "steps_per_round": steps_per_round},
        "data": {
            "off_step_ms": {"p50": off_p50 * 1e3,
                            "min": float(off.min()) * 1e3},
            "on_step_ms": {"p50": on_p50 * 1e3,
                           "min": float(on.min()) * 1e3},
        },
        "derived": {
            "abft_enabled_speedup": off_p50 / on_p50,
            "overhead_frac": float(on.min()) / float(off.min()) - 1.0,
            "overhead_frac_p50": on_p50 / off_p50 - 1.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer rounds (CI-friendly, same schema)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--steps-per-round", type=int, default=4)
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="FRAC",
                        help="hard-fail if overhead_frac exceeds this")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="sidecar directory (default: results/)")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds else (6 if args.smoke else 20)
    times = run(rounds, args.steps_per_round, warmup=2)
    payload = report(times, rounds, args.steps_per_round)

    out_dir = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_sdc.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    d = payload["derived"]
    print(f"abft overhead: off "
          f"{payload['data']['off_step_ms']['p50']:.2f} ms/step, on "
          f"{payload['data']['on_step_ms']['p50']:.2f} ms/step, "
          f"overhead {d['overhead_frac']:+.2%} "
          f"(speedup x{d['abft_enabled_speedup']:.3f})")
    print(f"wrote {path}")

    if args.max_overhead is not None \
            and d["overhead_frac"] > args.max_overhead:
        print(f"FAIL: overhead {d['overhead_frac']:.2%} exceeds "
              f"--max-overhead {args.max_overhead:.2%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
