"""Table III — sustained and peak training throughput.

Regenerates, per configuration: DP, GBS, TF/tile, MFU, EF(sustained),
EF(peak), from the analytical performance model, side by side with the
paper's measured values.
"""

from conftest import write_result

from repro.model import TABLE_II
from repro.parallel import RankTopology
from repro.perf import AURORA, LUMI, estimate_performance

PAPER = {
    # name: (dp, gbs, tf_per_tile, mfu_pct, ef_s, ef_p)
    "1.3B": (40, 2400, 47.6, 21.6, 1.1, 1.2),
    "13B": (30, 1440, 63.3, 28.8, 5.8, 6.4),
    "40B": (14, 1960, 84.4, 38.4, 10.21, 11.21),
    "80B": (5, 260, 52.8, 24.0, 5.27, 6.1),
    "26B(L)": (2, 140, 66.5, 34.8, 0.54, 0.62),
}


def run_estimates():
    rows = []
    for name, cfg in TABLE_II.items():
        dp, gbs, *_paper = PAPER[name]
        machine = LUMI if name.endswith("(L)") else AURORA
        topo = RankTopology(dp=dp, pp=cfg.layout.pp,
                            wp_grid=cfg.layout.wp_grid, sp=cfg.layout.sp)
        rows.append((name, PAPER[name],
                     estimate_performance(cfg, machine, topo, gbs=gbs)))
    return rows


def build_table(rows) -> str:
    lines = [
        "Table III: sustained/peak throughput — paper (measured on "
        "Aurora/LUMI) vs analytical model (this reproduction)",
        f"{'Config':8s} {'Nodes':>6s} {'DP':>3s} {'GBS':>5s} "
        f"{'TF/T':>12s} {'MFU %':>12s} {'EF(S)':>14s} {'EF(P)':>14s} "
        f"{'img/s':>7s}",
    ]
    for name, paper, est in rows:
        dp, gbs, tf, mfu, efs, efp = paper
        lines.append(
            f"{name:8s} {est.nodes:>6d} {dp:>3d} {gbs:>5d} "
            f"{est.tflops_per_tile:>5.1f}/{tf:<6.1f} "
            f"{est.mfu * 100:>5.1f}/{mfu:<6.1f} "
            f"{est.ef_sustained:>6.2f}/{efs:<7.2f} "
            f"{est.ef_peak:>6.2f}/{efp:<7.2f} {est.images_per_sec:>7.1f}")
    lines.append("(each cell: modeled/paper)")
    return "\n".join(lines) + "\n"


def structured_data(rows) -> dict:
    """Numeric payload for the JSON sidecar (regression-gated in CI)."""
    return {name: {"tflops_per_tile": est.tflops_per_tile,
                   "mfu": est.mfu,
                   "ef_sustained": est.ef_sustained,
                   "ef_peak": est.ef_peak,
                   "images_per_sec": est.images_per_sec,
                   "nodes": est.nodes}
            for name, _, est in rows}


def test_table3_throughput(benchmark):
    rows = benchmark.pedantic(run_estimates, rounds=1, iterations=1)
    write_result("table3_throughput.txt", build_table(rows),
                 data=structured_data(rows))
    by_name = {name: est for name, _, est in rows}
    # Shape: the 40B configuration is the headline (highest sustained EF),
    # and every modeled sustained EF is within 50% of the paper's.
    assert max(by_name, key=lambda n: by_name[n].ef_sustained) == "40B"
    for name, paper, est in rows:
        assert abs(est.ef_sustained - paper[4]) / paper[4] < 0.5, name
    # Peak > sustained everywhere (optimizer + reduction gap).
    for name, _, est in rows:
        assert est.ef_peak > est.ef_sustained
    # The paper's throughput claim: ~50 samples/s for 40B at 10,080 nodes.
    assert 25 < by_name["40B"].images_per_sec < 80
