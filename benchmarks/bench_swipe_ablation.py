"""SWiPe ablations (paper Section V-A claims + DESIGN.md design choices).

Measures, on the simulated cluster and the analytical models:
* WP on/off: all-to-all message size, activation memory, per-node I/O;
* round-robin vs blocked window distribution: shift-exchange volume;
* 1F1B vs GPipe vs zero-bubble: bubble fraction and activation residency;
* separated I/O+embedding pipeline stages (PP = L + 2) vs fused.
"""

import numpy as np
from conftest import write_result

from repro.data import ShardedWindowLoader
from repro.model import TABLE_II
from repro.parallel import DomainSharding, RankTopology, SimCluster, WindowSharding
from repro.parallel.window_parallel import shift_owner_change_bytes
from repro.perf import (
    AURORA,
    CommModel,
    MemoryModel,
    bubble_fraction,
    max_in_flight,
    schedule_1f1b,
    schedule_gpipe,
    stage_forward_flops,
)

CFG = TABLE_II["40B"]


def blocked_assignment(n_win_h, n_win_w, wp_grid):
    """Contiguous-block window assignment (the alternative to round-robin)."""
    a, b = wp_grid
    rows = np.arange(n_win_h) * a // n_win_h
    cols = np.arange(n_win_w) * b // n_win_w
    return (rows[:, None] * b + cols[None, :]).astype(np.int64)


def run_ablations():
    report = {}
    # -- WP effect on message size / activation memory -----------------------
    for wp_grid in [(1, 1), (2, 2), (6, 6)]:
        wp = wp_grid[0] * wp_grid[1]
        topo = RankTopology(dp=2, pp=CFG.layout.pp, wp_grid=wp_grid, sp=12)
        comm = CommModel(CFG, AURORA, topo)
        mem = MemoryModel(CFG, topo)
        report[f"wp{wp}"] = {
            "alltoall_MB": comm.alltoall_message_bytes(1) / 1e6,
            "activation_GB": mem.activation_bytes_per_rank(1) / 1e9,
            "grad_allreduce_MB": comm.grad_allreduce_bytes() / 1e6,
        }
    # -- sharded I/O ---------------------------------------------------------
    fields = np.zeros((2, 24, 48, 9), dtype=np.float32)
    loader = ShardedWindowLoader(fields, window=(4, 4), wp_grid=(2, 2))
    for rank in range(4):
        loader.load(0, rank)
    full = loader.load_full(0).nbytes
    report["io"] = {"full_read_KB": full / 1e3,
                    "per_rank_KB": int(loader.bytes_read[0]) / 1e3}
    # -- round-robin vs blocked shift traffic ----------------------------------
    sharding_rr = WindowSharding((24, 48), (4, 4), (2, 2))
    moved_rr = shift_owner_change_bytes(sharding_rr, 4)

    class _Blocked(WindowSharding):
        def __init__(self):
            super().__init__((24, 48), (4, 4), (2, 2))
            self.assignment = blocked_assignment(self.n_win_h, self.n_win_w,
                                                 (2, 2))
            self._owned = [np.argwhere(self.assignment == r)
                           for r in range(self.wp)]

    moved_blocked = shift_owner_change_bytes(_Blocked(), 4)
    report["shift"] = {"round_robin_bytes": moved_rr,
                       "blocked_bytes": moved_blocked}
    # -- schedules ------------------------------------------------------------
    pp, gas = CFG.layout.pp, CFG.layout.gas
    report["schedule"] = {
        "bubble_1f1b": bubble_fraction(pp, gas, "1f1b"),
        "bubble_gpipe": bubble_fraction(pp, gas, "gpipe"),
        "bubble_zero": bubble_fraction(pp, gas, "zero-bubble"),
        "inflight_1f1b": max_in_flight(schedule_1f1b(pp, gas)),
        "inflight_gpipe": max_in_flight(schedule_gpipe(pp, gas)),
    }
    # -- separated vs fused I/O + embedding stages -------------------------------
    # The pipeline's steady-state period is set by its slowest stage.  With
    # I/O fused into the first compute stage, every slot pays the data-load
    # latency (modeled as 20% of an interior stage's compute — the paper's
    # point is that this latency "propagates as pipeline bubbles across all
    # stages").  Separated (PP = L + 2), the I/O stage is nearly free and
    # overlaps with the warmup phase, at the cost of two extra slots of
    # pipeline depth.
    interior = float(stage_forward_flops(CFG, 1))
    t_io = 0.2 * interior
    sep_time = (gas + (CFG.swin_layers + 2) - 1) * interior
    fused_time = (gas + CFG.swin_layers - 1) * (interior + t_io)
    report["stages"] = {"separated": sep_time, "fused": fused_time,
                        "ratio": fused_time / sep_time}
    # -- WP vs domain parallelism (halo exchange) ----------------------------
    # Unshifted window attention: WP needs zero exchange; domain sharding is
    # also free when tiles align with windows — but the *shifted* pass makes
    # domain parallelism pay a halo + two re-sharding synchronizations per
    # block, while WP's round-robin exchange is the batched owner swap.
    image = np.zeros((1, 24, 48, 64), dtype=np.float32)
    wp = WindowSharding((24, 48), (4, 4), (2, 2))
    dom = DomainSharding((24, 48), (4, 4), (2, 2))
    cl_wp, cl_dom = SimCluster(4), SimCluster(4)
    wp.parallel_apply(image, lambda s: s, cluster=cl_wp,
                      wp_group=[0, 1, 2, 3], shifted=True)
    dom.apply_windowed(image, lambda s: s, shifted=True, cluster=cl_dom,
                       group=[0, 1, 2, 3])
    report["domain"] = {
        "wp_shift_bytes": cl_wp.stats.total_bytes(),
        "halo_shift_bytes": cl_dom.stats.total_bytes(),
        "resharding_points": dom.resharding_points_per_block(shifted=True),
    }
    return report


def build_report(r) -> str:
    lines = ["SWiPe ablations (40B configuration unless noted)"]
    lines.append("\n[WP] per-rank all-to-all message / activation memory "
                 "(micro-batch 1):")
    for key in ("wp1", "wp4", "wp36"):
        d = r[key]
        lines.append(f"  WP={key[2:]:>3s}: alltoall {d['alltoall_MB']:9.1f} MB"
                     f" | activations {d['activation_GB']:7.2f} GB"
                     f" | grad allreduce {d['grad_allreduce_MB']:9.1f} MB")
    lines.append("  paper: WP divides message size and activation memory; "
                 "allreduce unchanged")
    lines.append(f"\n[I/O] full image read {r['io']['full_read_KB']:.1f} KB "
                 f"vs per-rank sharded read {r['io']['per_rank_KB']:.1f} KB "
                 "(WP=4)")
    lines.append(f"\n[shift] owner-change bytes per half-window shift: "
                 f"round-robin {r['shift']['round_robin_bytes']} vs blocked "
                 f"{r['shift']['blocked_bytes']}")
    s = r["schedule"]
    lines.append(f"\n[schedule] bubble: 1F1B {s['bubble_1f1b']:.3f} = GPipe "
                 f"{s['bubble_gpipe']:.3f} > zero-bubble "
                 f"{s['bubble_zero']:.3f}; in-flight microbatches: 1F1B "
                 f"{s['inflight_1f1b']} vs GPipe {s['inflight_gpipe']}")
    st = r["stages"]
    lines.append(f"\n[stages] fused-I/O pipeline costs {st['ratio']:.3f}x "
                 "the separated PP = L + 2 design")
    d = r["domain"]
    lines.append(f"\n[domain parallelism] shifted-pass exchange: WP "
                 f"{d['wp_shift_bytes']} B (batched owner swap, 0 resharding"
                 f" points) vs halo {d['halo_shift_bytes']} B + "
                 f"{d['resharding_points']} resharding synchronizations per "
                 "block")
    return "\n".join(lines) + "\n"


def test_swipe_ablation(benchmark):
    r = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    write_result("swipe_ablation.txt", build_report(r), data=r)
    # WP divides alltoall message and activation memory by WP.
    assert r["wp4"]["alltoall_MB"] == r["wp1"]["alltoall_MB"] / 4
    assert r["wp36"]["activation_GB"] < r["wp1"]["activation_GB"] / 35
    # ... but gradient allreduce volume is unchanged (paper claim).
    assert r["wp36"]["grad_allreduce_MB"] == r["wp1"]["grad_allreduce_MB"]
    # Sharded I/O reads exactly 1/WP of the image per rank.
    assert r["io"]["per_rank_KB"] * 4 == r["io"]["full_read_KB"]
    # 1F1B's advantage is memory, not bubble.
    s = r["schedule"]
    assert s["bubble_1f1b"] == s["bubble_gpipe"]
    assert s["bubble_zero"] < s["bubble_1f1b"]
    assert s["inflight_1f1b"] < s["inflight_gpipe"]
    # The PP = L + 2 stage separation is a win.
    assert r["stages"]["ratio"] > 1.0
    # Domain parallelism pays resharding synchronizations WP avoids.
    assert r["domain"]["resharding_points"] > 0
    assert r["domain"]["halo_shift_bytes"] > 0
