#!/usr/bin/env python
"""Rolling-swap serving benchmark: latency / throughput while a canary
deployment alternates model versions on the workers vs steady state.

A two-version service on a :class:`~repro.parallel.SimCluster` pays for
weight hot-swaps over the metered fabric — the cost a rolling canary
deployment adds on top of steady-state serving.  The benchmark times the
same closed burst twice per round on fresh services:

* **steady** — every request pinned to the incumbent (no swaps);
* **swap** — requests alternate versions per batch (round-robin router,
  single-request batches): the worst-case swap thrash a 50% canary
  split can produce.

Shadows are disabled: they are out-of-band extra compute by design, and
this benchmark isolates the *swap mechanics* (weight shipping + version-
pure batching) that every canary pays regardless of shadow policy.

The fabric books bytes, not seconds, so weight shipping shows up in the
comm ledger rather than in request latency — the benchmark asserts that
parity: swap-phase p99 and throughput must track steady state (the gate
catches any change that makes version alternation serialize, re-plan, or
otherwise slow the serving path), while ``swap_fabric_mb_per_round``
records the weight traffic the canary adds.

Headline leaves (gated by ``tools/check_bench_regression.py``):

* ``data.steady_p99_ms`` / ``data.swap_p99_ms`` — virtual p99 request
  latency (lower-better, loose absolute tolerance in CI);
* ``derived.swap_retention_eff`` — swap throughput / steady throughput
  (higher-better, tight relative tolerance: the swap path may not decay
  relative to steady state even when the hardware changes).

``derived.*_virtual_rps``, ``derived.swap_overhead_frac``, and the
fabric/swap tallies ride along ungated (informational).

Standalone::

    PYTHONPATH=src python benchmarks/bench_deploy.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import quickstart_components  # noqa: E402
from repro.diffusion import SolverConfig  # noqa: E402
from repro.model import Aeris  # noqa: E402
from repro.parallel import SimCluster  # noqa: E402
from repro.serve import (BatcherConfig, ForecastRequest,  # noqa: E402
                         ForecastService, ServiceConfig, TierPolicy,
                         TierRouter)

ROUTER = TierRouter().with_policy(TierPolicy(
    name="standard", priority=1, solver_config=SolverConfig(n_steps=2),
    slo_s=60.0, deadline_s=120.0, max_queue_depth=256))


def build_world(seed: int = 0):
    """Archive + two forecasters with different weights (skill is
    irrelevant to swap mechanics, so no training)."""
    archive, trainer = quickstart_components(height=8, width=16,
                                             train_years=0.2,
                                             test_years=0.1, seed=seed)
    incumbent = trainer.forecaster()
    candidate_model = Aeris(incumbent.model.config, seed=seed + 99)
    candidate = type(incumbent)(
        model=candidate_model, state_norm=incumbent.state_norm,
        residual_norm=incumbent.residual_norm,
        forcing_fn=incumbent.forcing_fn,
        forcing_norm=incumbent.forcing_norm, flow=incumbent.flow,
        solver_config=incumbent.solver_config)
    return archive, incumbent, candidate


def build_service(incumbent, candidate, alternate: bool):
    svc = ForecastService(
        incumbent, router=ROUTER, version="v1",
        cluster=SimCluster(3),
        config=ServiceConfig(n_workers=1,
                             batcher=BatcherConfig(max_requests=1)))
    svc.add_version("v2", candidate)
    if alternate:
        flip = {"n": 0}

        def round_robin(request):
            flip["n"] += 1
            return "v2" if flip["n"] % 2 else "v1"

        svc.version_router = round_robin
    else:
        svc.version_router = lambda request: "v1"
    return svc


def burst(archive, n_requests: int):
    """A closed burst of distinct queries (no cache reuse) at t=0 so the
    makespan is pure service time."""
    idx = archive.split_indices("test")
    return [ForecastRequest(init_state=archive.fields[int(idx[s % len(idx)])],
                            start_index=int(idx[s % len(idx)]), n_steps=2,
                            n_members=2, seed=s, arrival_s=0.0)
            for s in range(n_requests)]


def run_phase(archive, incumbent, candidate, n_requests: int,
              alternate: bool) -> dict:
    svc = build_service(incumbent, candidate, alternate)
    responses = svc.run(burst(archive, n_requests))
    completed = [r for r in responses if r.status == "completed"]
    latencies = np.asarray([r.latency_s for r in completed])
    makespan = max(r.request.arrival_s + r.latency_s for r in completed)
    swaps = sum(w["weight_swaps"] for w in svc.pool.stats()["per_worker"])
    return {"p99_s": float(np.percentile(latencies, 99)),
            "p50_s": float(np.median(latencies)),
            "virtual_rps": len(completed) / makespan,
            "completed": len(completed), "weight_swaps": swaps,
            "swap_bytes": swaps * svc.bindings["v2"].weights_nbytes}


def run(rounds: int, n_requests: int) -> tuple[dict, dict]:
    """Interleaved steady/swap rounds (drift hits both sides equally);
    per-phase medians across rounds."""
    archive, incumbent, candidate = build_world()
    steady_rounds, swap_rounds = [], []
    for _ in range(rounds):
        steady_rounds.append(run_phase(archive, incumbent, candidate,
                                       n_requests, alternate=False))
        swap_rounds.append(run_phase(archive, incumbent, candidate,
                                     n_requests, alternate=True))

    def med(rows, key):
        return float(np.median([r[key] for r in rows]))

    steady = {k: med(steady_rounds, k) for k in steady_rounds[0]}
    swap = {k: med(swap_rounds, k) for k in swap_rounds[0]}
    return steady, swap


def report(steady: dict, swap: dict, rounds: int, n_requests: int) -> dict:
    return {
        "bench": "BENCH_deploy",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {"rounds": rounds, "n_requests": n_requests,
                   "n_workers": 1},
        "data": {
            "steady_p99_ms": steady["p99_s"] * 1e3,
            "swap_p99_ms": swap["p99_s"] * 1e3,
            "steady_p50_ms": steady["p50_s"] * 1e3,
            "swap_p50_ms": swap["p50_s"] * 1e3,
        },
        "derived": {
            "swap_retention_eff": swap["virtual_rps"]
            / steady["virtual_rps"],
            "steady_virtual_rps": steady["virtual_rps"],
            "swap_virtual_rps": swap["virtual_rps"],
            "swap_overhead_frac": swap["p99_s"] / steady["p99_s"] - 1.0,
            "weight_swaps_per_round": swap["weight_swaps"],
            "swap_fabric_mb_per_round": swap["swap_bytes"] / 1e6,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer rounds (CI-friendly, same schema)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--requests", type=int, default=32)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="sidecar directory (default: results/)")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds else (3 if args.smoke else 8)
    steady, swap = run(rounds, args.requests)
    payload = report(steady, swap, rounds, args.requests)

    out_dir = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_deploy.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    d = payload["derived"]
    print(f"rolling swap: steady p99 "
          f"{payload['data']['steady_p99_ms']:.1f} ms, swap p99 "
          f"{payload['data']['swap_p99_ms']:.1f} ms "
          f"({d['swap_overhead_frac']:+.1%}), throughput retention "
          f"{d['swap_retention_eff']:.3f} "
          f"({d['weight_swaps_per_round']:.0f} swaps/round, "
          f"{d['swap_fabric_mb_per_round']:.1f} MB weights shipped)")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
