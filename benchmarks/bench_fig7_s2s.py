"""Figure 7 — subseasonal-to-seasonal (S2S) forecasts to 90 days.

Regenerates the three panels:
* 7a — daily Niño 3.4 index forecasts against the truth (spring barrier
  spread in the paper);
* 7b — 90-day rollout stability: fields stay bounded, sharp (power spectra
  do not collapse, unlike the deterministic baseline);
* 7c — Hovmöller diagram of equatorial U850 anomalies with realistic
  propagation.
"""

import numpy as np
from conftest import write_result

from repro.data import TOY_SET
from repro.diffusion import SolverConfig
from repro.eval import hovmoller, nino34_index, propagation_speed, sharpness_ratio

N_DAYS = 90
N_STEPS = N_DAYS * 4
N_MEMBERS = 2


def run_rollouts(archive, aeris_trainer, det_trainer):
    ic = int(archive.split_indices("test")[8])
    fc = aeris_trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    ens = fc.ensemble_rollout(archive.fields[ic], N_STEPS, N_MEMBERS,
                              seed=71, start_index=ic)
    det = det_trainer.forecaster().rollout(archive.fields[ic], N_STEPS, ic)
    truth = archive.fields[ic:ic + N_STEPS + 1]
    return ic, ens, det, truth


def test_fig7_s2s(benchmark, bench_archive, aeris_trainer, det_trainer):
    archive = bench_archive
    ic, ens, det, truth = benchmark.pedantic(
        run_rollouts, args=(archive, aeris_trainer, det_trainer),
        rounds=1, iterations=1)
    grid = archive.grid
    clim = archive.daily_climatology()
    clim_stack = np.stack([archive.climatology_at(clim, ic + k)
                           for k in range(0, N_STEPS + 1, 4)])

    # --- 7a: Niño 3.4 daily index -----------------------------------------
    daily = slice(0, N_STEPS + 1, 4)
    truth_nino = nino34_index(truth[daily], grid, climatology=None) \
        - nino34_index(clim_stack, grid)
    ens_nino = np.stack([
        nino34_index(ens[m, daily], grid) - nino34_index(clim_stack, grid)
        for m in range(N_MEMBERS)])
    lines = [f"Figure 7a — Niño 3.4 daily index ({N_DAYS}-day forecasts "
             f"from step {ic}):",
             f"{'day':>4s} {'truth':>7s} {'ens mean':>9s} {'spread':>7s}"]
    for d in range(0, N_DAYS + 1, 10):
        lines.append(f"{d:>4d} {truth_nino[d]:>7.2f} "
                     f"{ens_nino[:, d].mean():>9.2f} "
                     f"{ens_nino[:, d].std():>7.2f}")

    # --- 7b: stability + sharpness -------------------------------------------
    sst, q700 = TOY_SET.index("SST"), TOY_SET.index("Q700")
    lines.append("\nFigure 7b — day-90 field statistics (stability):")
    stable = True
    for name in TOY_SET.names:
        c = TOY_SET.index(name)
        f_std = ens[0, -1, ..., c].std()
        t_std = truth[-1, ..., c].std()
        ratio = f_std / max(t_std, 1e-9)
        stable &= bool(0.25 < ratio < 4.0)
        lines.append(f"  {name:6s} forecast std {f_std:9.3f} vs truth "
                     f"{t_std:9.3f} (ratio {ratio:.2f})")
    sharp_aeris = sharpness_ratio(ens[0, -1, ..., q700].astype(np.float64),
                                  truth[-1, ..., q700].astype(np.float64))
    sharp_det = sharpness_ratio(det[-1, ..., q700].astype(np.float64),
                                truth[-1, ..., q700].astype(np.float64))
    lines.append(f"  Q700 small-scale power ratio: AERIS {sharp_aeris:.2f} "
                 f"vs deterministic {sharp_det:.2f} (1.0 = spectrally "
                 "faithful)")

    # --- 7c: Hovmöller ----------------------------------------------------------
    clim_full = np.stack([archive.climatology_at(clim, ic + k)
                          for k in range(N_STEPS + 1)])
    truth_hov = hovmoller(truth, grid, climatology=clim_full)
    fcst_hov = hovmoller(ens[0], grid, climatology=clim_full)
    sp_truth = propagation_speed(truth_hov, 6.0, grid.dlon)
    sp_fcst = propagation_speed(fcst_hov, 6.0, grid.dlon)
    var_ratio = fcst_hov.var() / max(truth_hov.var(), 1e-12)
    lines.append("\nFigure 7c — Hovmöller of U850 anomalies (10N-10S):")
    lines.append(f"  dominant propagation speed: truth {sp_truth:+.1f} "
                 f"deg/day, forecast {sp_fcst:+.1f} deg/day")
    lines.append(f"  diagram variance ratio forecast/truth: {var_ratio:.2f}")
    write_result("fig7_s2s.txt", "\n".join(lines) + "\n")

    # --- paper-shape assertions ------------------------------------------------
    assert np.isfinite(ens).all(), "rollout not stable to 90 days"
    assert stable, "day-90 field variability collapsed or exploded"
    # Diffusion keeps small-scale power much better than the deterministic
    # rollout (the paper's central S2S claim).
    assert sharp_aeris > sharp_det
    assert sharp_aeris > 0.2
    # The Hovmöller stays in a realistic variability band.
    assert 0.1 < var_ratio < 10.0
    # Niño index remains in physical bounds for 90 days.
    assert np.abs(ens_nino).max() < 6.0
