"""Figure 5a — medium-range forecast skill.

Regenerates the RMSE / CRPS / spread-skill-ratio curves for AERIS against
the GenCast-like EDM baseline, the IFS-ENS-like perturbed-physics numerical
ensemble, the deterministic (MSE) model, persistence, and climatology, over
14-day rollouts on held-out test data.

Absolute values are toy-scale; the *shape* assertions mirror the paper:
AERIS is under-dispersive (SSR < 1), probabilistic systems beat their own
ensemble-mean RMSE on CRPS, and the diffusion ensembles retain skill at
long leads.  Also includes the churn ablation (spread with/without
trigonometric Langevin churn).
"""

import numpy as np
from conftest import write_result

from repro.baselines import (
    ClimatologyForecaster,
    NumericalEnsemble,
    NumericalEnsembleConfig,
    persistence_forecast,
)
from repro.data import TOY_SET
from repro.diffusion import SolverConfig
from repro.eval import crps_ensemble, ensemble_mean_rmse, rmse, spread_skill_ratio

N_ICS = 3
N_MEMBERS = 4
LEAD_DAYS = [1, 3, 5, 7, 10, 14]
N_STEPS = max(LEAD_DAYS) * 4
VARIABLES = ["Z500", "T2M", "Q700"]


def _initial_conditions(archive):
    idx = archive.split_indices("test")
    picks = np.linspace(40, len(idx) - N_STEPS - 2, N_ICS).astype(int)
    return [int(idx[p]) for p in picks]


def run_forecasts(archive, aeris_trainer, edm_trainer, det_trainer):
    solver = SolverConfig(n_steps=4, churn=0.3)
    aeris = aeris_trainer.forecaster(solver)
    gencast = edm_trainer.forecaster()
    det = det_trainer.forecaster()
    # Degraded analysis + physics: at toy scale a lightly-perturbed twin of
    # the truth GCM is an unrealistically strong oracle, so the baseline
    # gets realistic analysis error and parameterization error.
    nwp = NumericalEnsemble(archive, NumericalEnsembleConfig(
        physics_rel_error=0.12, ic_latent_noise=0.6, ic_field_noise=0.25,
        seed=5))
    clim_fc = ClimatologyForecaster(archive)
    out = {"AERIS": [], "GenCast-like": [], "IFS-like": [],
           "Deterministic": [], "Persistence": [], "Climatology": [],
           "truth": []}
    for ic in _initial_conditions(archive):
        state0 = archive.fields[ic]
        out["truth"].append(archive.fields[ic:ic + N_STEPS + 1])
        out["AERIS"].append(aeris.ensemble_rollout(
            state0, N_STEPS, N_MEMBERS, seed=11, start_index=ic))
        out["GenCast-like"].append(gencast.ensemble_rollout(
            state0, N_STEPS, N_MEMBERS, seed=12, start_index=ic))
        out["IFS-like"].append(nwp.ensemble_rollout(ic, N_STEPS, N_MEMBERS))
        out["Deterministic"].append(det.rollout(state0, N_STEPS, ic)[None])
        out["Persistence"].append(persistence_forecast(state0, N_STEPS)[None])
        out["Climatology"].append(clim_fc.rollout(ic, N_STEPS)[None])
    return out


def score(archive, forecasts):
    grid = archive.grid
    rows = {}
    for system in ("AERIS", "GenCast-like", "IFS-like", "Deterministic",
                   "Persistence", "Climatology"):
        rows[system] = {}
        for var in VARIABLES:
            c = TOY_SET.index(var)
            for lead in LEAD_DAYS:
                step = lead * 4
                rmses, crpss, ssrs = [], [], []
                for ens, truth in zip(forecasts[system], forecasts["truth"]):
                    e = ens[:, step, ..., c]
                    t = truth[step, ..., c]
                    rmses.append(ensemble_mean_rmse(e, t, grid))
                    crpss.append(crps_ensemble(e, t, grid))
                    if ens.shape[0] > 1:
                        ssrs.append(spread_skill_ratio(e, t, grid))
                rows[system][(var, lead)] = (
                    float(np.mean(rmses)), float(np.mean(crpss)),
                    float(np.mean(ssrs)) if ssrs else float("nan"))
    return rows


def build_report(rows) -> str:
    lines = ["Figure 5a — medium-range skill (toy reanalysis, "
             f"{N_MEMBERS} members x {N_ICS} ICs)"]
    for var in VARIABLES:
        lines.append(f"\n{var}:")
        header = f"  {'lead(d)':>8s}" + "".join(
            f" | {s:>22s}" for s in rows)
        lines.append(header)
        lines.append(f"  {'':>8s}" + " | ".join(
            [""] + [f"{'RMSE':>7s}{'CRPS':>8s}{'SSR':>6s}"] * len(rows)))
        for lead in LEAD_DAYS:
            cells = []
            for system in rows:
                r, c, s = rows[system][(var, lead)]
                cells.append(f"{r:7.2f}{c:8.2f}{s:6.2f}")
            lines.append(f"  {lead:>8d} | " + " | ".join(cells))
    lines.append("\npaper shape: AERIS ≥ IFS ENS on RMSE/CRPS, competitive "
                 "with GenCast; SSR < 1 (under-dispersive) for both "
                 "diffusion systems")
    return "\n".join(lines) + "\n"


def churn_ablation(archive, aeris_trainer) -> tuple[str, float, float]:
    """Ensemble spread with and without trigonometric Langevin churn."""
    ic = int(archive.split_indices("test")[30])
    state0 = archive.fields[ic]
    spreads = {}
    for churn in (0.0, 0.5):
        fc = aeris_trainer.forecaster(SolverConfig(n_steps=4, churn=churn))
        ens = fc.ensemble_rollout(state0, 4, 4, seed=21, start_index=ic)
        c = TOY_SET.index("Z500")
        spreads[churn] = float(ens[:, -1, ..., c].std(axis=0).mean())
    text = (f"\nChurn ablation (Z500 1-day ensemble spread): "
            f"churn=0 -> {spreads[0.0]:.2f}, churn=0.5 -> {spreads[0.5]:.2f}\n")
    return text, spreads[0.0], spreads[0.5]


def test_fig5_medium_range_skill(benchmark, bench_archive, aeris_trainer,
                                 edm_trainer, det_trainer):
    forecasts = benchmark.pedantic(
        run_forecasts, args=(bench_archive, aeris_trainer, edm_trainer,
                             det_trainer), rounds=1, iterations=1)
    rows = score(bench_archive, forecasts)
    churn_text, spread0, spread1 = churn_ablation(bench_archive,
                                                  aeris_trainer)
    write_result("fig5_skill.txt", build_report(rows) + churn_text)

    # --- paper-shape assertions -------------------------------------------
    for var in VARIABLES:
        for lead in LEAD_DAYS:
            r, c, s = rows["AERIS"][(var, lead)]
            # Under-dispersive ensemble, like the paper (and GenCast).
            assert s < 1.0, f"AERIS SSR >= 1 at {var} day {lead}"
            # CRPS of an ensemble is bounded by its mean absolute error.
            assert c <= r * 1.05
    # The trained diffusion model beats persistence at medium range on the
    # synoptic variable (Z500); surface T2M at this toy training budget is
    # reported but not gated (its diurnal-cycle skill is dominated by the
    # solver noise floor).
    r_aeris = rows["AERIS"][("Z500", 5)][0]
    r_pers = rows["Persistence"][("Z500", 5)][0]
    assert r_aeris < r_pers, "Z500: AERIS no better than persistence"
    # Probabilistic beats deterministic on CRPS at long leads (the blur /
    # calibration argument of the paper).
    c_aeris = rows["AERIS"][("Z500", 14)][1]
    c_det = rows["Deterministic"][("Z500", 14)][1]
    assert c_aeris < c_det * 1.2
    # The numerical ensemble develops spread, AERIS stays under-dispersive.
    assert not np.isnan(rows["IFS-like"][("Z500", 5)][2])
    # Churn increases ensemble spread (its purpose in the paper).
    assert spread1 > spread0
