"""Patch-size ablation: the cost of pixel-level (1x1) modeling.

The paper's pixel-level patching drives its sequence lengths (720x1440 ~ 1M
tokens) and hence the need for SWiPe; prior transformer weather models used
patch 4-8. This bench quantifies the compute/memory price of patch size 1
on the full ERA5-scale configuration, and measures the short-horizon
training behaviour of patch-1 vs patch-2 twins at toy scale.
"""

import numpy as np
from conftest import write_result

from repro.data import ReanalysisConfig, SyntheticReanalysis
from repro.model import TABLE_II, Aeris, AerisConfig
from repro.parallel import RankTopology
from repro.perf import MemoryModel, forward_flops_per_sample
from repro.train import Trainer, TrainerConfig


def era5_scale_costs():
    """Analytical: 40B-architecture costs at patch sizes 1/2/4."""
    rows = []
    base = TABLE_II["40B"]
    for patch in (1, 2, 4):
        cfg = AerisConfig(
            name=f"40B-p{patch}", dim=base.dim, heads=base.heads,
            ffn_dim=base.ffn_dim, swin_layers=base.swin_layers,
            patch_size=patch, window=(60 // patch, 60 // patch),
            layout=base.layout)
        topo = RankTopology(dp=1, pp=base.layout.pp,
                            wp_grid=base.layout.wp_grid, sp=12)
        mem = MemoryModel(cfg, topo)
        rows.append((patch, cfg.seq_len, forward_flops_per_sample(cfg),
                     mem.activation_bytes_per_rank(1)))
    return rows


def toy_training_comparison():
    archive = SyntheticReanalysis(ReanalysisConfig(
        height=16, width=32, train_years=0.4, val_years=0.1,
        test_years=0.1, seed=1, spinup_steps=100))
    losses = {}
    for patch in (1, 2):
        cfg = AerisConfig(
            name=f"toy-p{patch}", height=16, width=32, channels=9,
            forcing_channels=3, dim=32, heads=4, ffn_dim=64, swin_layers=2,
            blocks_per_layer=2, window=(4, 4), patch_size=patch,
            time_freqs=8)
        trainer = Trainer(Aeris(cfg, seed=0), archive,
                          TrainerConfig(batch_size=4, peak_lr=3e-3,
                                        warmup_images=40,
                                        total_images=40_000,
                                        decay_images=400, seed=0))
        trainer.fit(120)
        losses[patch] = (float(np.mean(trainer.history[:20])),
                         float(np.mean(trainer.history[-20:])))
    return losses


def test_patch_size_ablation(benchmark):
    rows = benchmark.pedantic(era5_scale_costs, rounds=1, iterations=1)
    losses = toy_training_comparison()
    lines = ["Patch-size ablation (40B architecture at ERA5 resolution)",
             f"{'patch':>6s} {'tokens':>10s} {'fwd PFLOPs/sample':>18s} "
             f"{'activations/rank (GB)':>22s}"]
    for patch, seq, flops, act in rows:
        lines.append(f"{patch:>6d} {seq:>10,d} {flops / 1e15:>18.2f} "
                     f"{act / 1e9:>22.2f}")
    lines.append("\nToy training (120 steps), diffusion loss first20 -> "
                 "last20:")
    for patch, (early, late) in losses.items():
        lines.append(f"  patch {patch}: {early:.3f} -> {late:.3f}")
    lines.append("\npaper: pixel-level (1x1) patching is what makes the "
                 "~1M-token sequences — and hence SWiPe — necessary")
    write_result("patch_size_ablation.txt", "\n".join(lines) + "\n")

    by_patch = {r[0]: r for r in rows}
    # Patch 1 costs ~4x patch 2 and ~16x patch 4 in sequence length.
    assert by_patch[1][1] == 4 * by_patch[2][1] == 16 * by_patch[4][1]
    # Compute and activation memory shrink superlinearly with patch size.
    assert by_patch[2][2] < 0.5 * by_patch[1][2]
    assert by_patch[2][3] < 0.5 * by_patch[1][3]
    # Both toy models train (losses decrease).
    for patch, (early, late) in losses.items():
        assert late < early
