#!/usr/bin/env python
"""Unified benchmark runner: kernel workloads + figure benches, JSON out.

Runs two families of benchmarks and leaves machine-readable sidecars that
``tools/check_bench_regression.py`` can diff against committed baselines:

* the kernel workloads from :mod:`kernel_workloads`, timed here with
  interleaved A/B rounds (optimized and reference alternate within each
  round, so CPU frequency drift hits both sides equally) — written to
  ``BENCH_kernels.json`` with per-workload p50/p95/min times, bytes
  allocated per call (tracemalloc), plan-cache and arena counters, and
  derived optimized-vs-reference speedups;
* the analytical figure benches (``fig4_scaling``, ``table3_throughput``,
  ``swipe_ablation``), run via pytest in a subprocess with
  ``BENCH_RESULTS_DIR`` pointed at the output directory so their
  ``write_result`` sidecars land next to the kernel report.

Usage::

    python benchmarks/run_benches.py                  # full run
    python benchmarks/run_benches.py --smoke          # CI: fewer rounds
    python benchmarks/run_benches.py --out /tmp/bench # sidecars go here
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
import tracemalloc

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

FIGURE_BENCHES = [
    "bench_fig4_scaling.py",
    "bench_table3_throughput.py",
    "bench_swipe_ablation.py",
]


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _bytes_per_call(fn) -> int:
    """Peak bytes newly allocated across one call (tracemalloc)."""
    fn()  # warm caches/pools so the measurement sees steady state
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return max(0, int(peak - before))


def measure_workload(workload, rounds: int, warmup: int) -> dict:
    """Interleaved optimized/reference timing for one workload.

    Alternating within each round means slow drift (thermal, frequency
    scaling) biases both sides equally; ``min`` over rounds is the noise
    floor and is what the derived speedup uses.
    """
    opt, ref = workload.optimized, workload.reference
    for _ in range(warmup):
        opt()
        if ref is not None:
            ref()
    opt_times: list[float] = []
    ref_times: list[float] = []
    for _ in range(rounds):
        opt_times.append(_time_once(opt))
        if ref is not None:
            ref_times.append(_time_once(ref))
    out = {
        "opt_ms_min": min(opt_times) * 1e3,
        "opt_ms_p50": _percentile(opt_times, 50) * 1e3,
        "opt_ms_p95": _percentile(opt_times, 95) * 1e3,
        "opt_bytes_per_call": _bytes_per_call(opt),
        "rounds": rounds,
    }
    if ref is not None:
        # The headline speedup is the *median of per-round paired ratios*:
        # a load burst slows the adjacent opt and ref measurements alike,
        # so the ratio survives noise that corrupts min/min across runs.
        paired = [r / o for o, r in zip(opt_times, ref_times)]
        out.update({
            "ref_ms_min": min(ref_times) * 1e3,
            "ref_ms_p50": _percentile(ref_times, 50) * 1e3,
            "ref_ms_p95": _percentile(ref_times, 95) * 1e3,
            "ref_bytes_per_call": _bytes_per_call(ref),
            "paired_speedup_p50": _percentile(paired, 50),
        })
    return out


def run_kernel_benches(rounds: int, warmup: int) -> dict:
    from kernel_workloads import WORKLOADS

    from repro.kernels import clear_plan_caches, plan_cache_stats
    from repro.tensor import arena

    clear_plan_caches()
    arena().clear()
    arena().reset_stats()

    benches: dict[str, dict] = {}
    derived: dict[str, float] = {}
    for name, factory in WORKLOADS.items():
        workload = factory()
        result = measure_workload(workload, rounds=rounds, warmup=warmup)
        benches[name] = result
        if "ref_ms_min" in result:
            derived[f"{name}_speedup"] = result["paired_speedup_p50"]
        msg = f"  {name:32s} opt {result['opt_ms_min']:8.3f} ms"
        if "ref_ms_min" in result:
            msg += (f"  ref {result['ref_ms_min']:8.3f} ms "
                    f"  x{derived[f'{name}_speedup']:.2f}")
        print(msg)
    return {
        "bench": "BENCH_kernels",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {"rounds": rounds, "warmup": warmup},
        "data": benches,
        "derived": derived,
        "plan_caches": plan_cache_stats(),
        "arena": arena().stats(),
    }


def run_obs_health_bench(out_dir: str, smoke: bool) -> int:
    """Run the observability-overhead bench (own process so the global
    obs state it toggles cannot leak into other benches)."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    cmd = [sys.executable, os.path.join(bench_dir, "bench_obs_health.py"),
           "--out", os.path.abspath(out_dir), "--max-overhead", "0.05"]
    if smoke:
        cmd.append("--smoke")
    return subprocess.run(cmd, cwd=bench_dir).returncode


def run_sdc_bench(out_dir: str, smoke: bool) -> int:
    """Run the ABFT-overhead bench (own process so the module-global
    guard state it toggles cannot leak into other benches).  The ISSUE's
    <=10% overhead budget is enforced inside the bench itself."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    cmd = [sys.executable, os.path.join(bench_dir, "bench_sdc.py"),
           "--out", os.path.abspath(out_dir), "--max-overhead", "0.10"]
    if smoke:
        cmd.append("--smoke")
    return subprocess.run(cmd, cwd=bench_dir).returncode


def run_deploy_bench(out_dir: str, smoke: bool) -> int:
    """Run the rolling-swap serving bench (own process: it drives the
    serving event loop's virtual clock and global obs-free services)."""
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    cmd = [sys.executable, os.path.join(bench_dir, "bench_deploy.py"),
           "--out", os.path.abspath(out_dir)]
    if smoke:
        cmd.append("--smoke")
    return subprocess.run(cmd, cwd=bench_dir).returncode


def run_figure_benches(out_dir: str, names: list[str]) -> int:
    """Run the analytical figure benches under pytest; their
    ``write_result`` sidecars are redirected to ``out_dir``."""
    env = dict(os.environ)
    env["BENCH_RESULTS_DIR"] = os.path.abspath(out_dir)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
            env.get("PYTHONPATH")) if p)
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    cmd = [sys.executable, "-m", "pytest", "-q", "--benchmark-disable",
           *[os.path.join(bench_dir, n) for n in names]]
    proc = subprocess.run(cmd, env=env, cwd=bench_dir)
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer timing rounds (CI-friendly; same "
                             "workloads, same sidecar schema)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="sidecar output directory "
                             "(default: benchmarks/results)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override timing rounds per workload")
    parser.add_argument("--skip-figures", action="store_true",
                        help="only run the kernel workloads")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds else (15 if args.smoke else 80)
    warmup = 1 if args.smoke else 3
    out_dir = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)

    print(f"kernel workloads ({rounds} interleaved rounds):")
    report = run_kernel_benches(rounds=rounds, warmup=warmup)
    path = os.path.join(out_dir, "BENCH_kernels.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {path}")

    print("observability overhead bench:")
    rc_obs = run_obs_health_bench(out_dir, smoke=args.smoke)
    if rc_obs != 0:
        print(f"obs health bench FAILED (exit {rc_obs})", file=sys.stderr)

    print("abft overhead bench:")
    rc_sdc = run_sdc_bench(out_dir, smoke=args.smoke)
    if rc_sdc != 0:
        print(f"abft sdc bench FAILED (exit {rc_sdc})", file=sys.stderr)

    print("rolling-swap deploy bench:")
    rc_deploy = run_deploy_bench(out_dir, smoke=args.smoke)
    if rc_deploy != 0:
        print(f"deploy bench FAILED (exit {rc_deploy})", file=sys.stderr)
    rc_sdc = rc_sdc or rc_deploy

    if args.skip_figures:
        return rc_obs or rc_sdc
    print("figure benches (pytest, single-shot):")
    rc = run_figure_benches(out_dir, FIGURE_BENCHES)
    if rc != 0:
        print(f"figure benches FAILED (exit {rc})", file=sys.stderr)
    return rc or rc_obs or rc_sdc


if __name__ == "__main__":
    sys.exit(main())
