#!/usr/bin/env python
"""Observability overhead benchmark: trainer steps with the full health
stack on vs. everything off.

Times the same trainer configuration in paired interleaved rounds — one
round alternates an *off* segment (no tracer, registry, monitor, or
flight recorder) with an *on* segment (``obs.monitored()``: tracing +
metrics + health detectors + flight recorder) — so CPU frequency drift
biases both sides equally.  The headline is

* ``derived.health_enabled_speedup`` — off-time / on-time (≈1.0 when
  monitoring is cheap; gated higher-is-better by
  ``tools/check_bench_regression.py`` against the committed baseline);
* ``derived.overhead_frac`` — on/off - 1, the fraction of a training
  step spent feeding the health stack.  ``--max-overhead 0.05`` turns
  it into a hard CI failure.

Standalone::

    PYTHONPATH=src python benchmarks/bench_obs_health.py --smoke \\
        --max-overhead 0.05
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import obs, quickstart_components  # noqa: E402


def _build_trainer(seed: int):
    _, trainer = quickstart_components(height=16, width=32,
                                       train_years=0.3, seed=seed,
                                       test_years=0.1)
    return trainer


def _segment_time(trainer, n_steps: int) -> float:
    start = time.perf_counter()
    trainer.fit(n_steps)
    return (time.perf_counter() - start) / n_steps


def run(rounds: int, steps_per_round: int, warmup: int) -> dict:
    """Per-step times (seconds) for both modes, interleaved by round."""
    obs.disable()
    off_trainer = _build_trainer(seed=0)
    on_trainer = _build_trainer(seed=0)
    off_trainer.fit(warmup)
    with obs.monitored():
        on_trainer.fit(warmup)
    off_times: list[float] = []
    on_times: list[float] = []
    for _ in range(rounds):
        off_times.append(_segment_time(off_trainer, steps_per_round))
        with obs.monitored():
            on_times.append(_segment_time(on_trainer, steps_per_round))
    obs.disable()
    return {"off_s": off_times, "on_s": on_times}


def report(times: dict, rounds: int, steps_per_round: int) -> dict:
    # min over rounds is the noise floor; the paired ratio of medians is
    # the headline.
    off = np.asarray(times["off_s"])
    on = np.asarray(times["on_s"])
    off_p50 = float(np.median(off))
    on_p50 = float(np.median(on))
    return {
        "bench": "BENCH_obs_health",
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {"rounds": rounds, "steps_per_round": steps_per_round},
        "data": {
            "off_step_ms": {"p50": off_p50 * 1e3,
                            "min": float(off.min()) * 1e3},
            "on_step_ms": {"p50": on_p50 * 1e3,
                           "min": float(on.min()) * 1e3},
        },
        "derived": {
            "health_enabled_speedup": off_p50 / on_p50,
            "overhead_frac": on_p50 / off_p50 - 1.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fewer rounds (CI-friendly, same schema)")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--steps-per-round", type=int, default=4)
    parser.add_argument("--max-overhead", type=float, default=None,
                        metavar="FRAC",
                        help="hard-fail if overhead_frac exceeds this")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="sidecar directory (default: results/)")
    args = parser.parse_args(argv)

    rounds = args.rounds if args.rounds else (6 if args.smoke else 20)
    times = run(rounds, args.steps_per_round, warmup=2)
    payload = report(times, rounds, args.steps_per_round)

    out_dir = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_obs_health.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)

    d = payload["derived"]
    print(f"obs health overhead: off "
          f"{payload['data']['off_step_ms']['p50']:.2f} ms/step, on "
          f"{payload['data']['on_step_ms']['p50']:.2f} ms/step, "
          f"overhead {d['overhead_frac']:+.2%} "
          f"(speedup x{d['health_enabled_speedup']:.3f})")
    print(f"wrote {path}")

    if args.max_overhead is not None \
            and d["overhead_frac"] > args.max_overhead:
        print(f"FAIL: overhead {d['overhead_frac']:.2%} exceeds "
              f"--max-overhead {args.max_overhead:.2%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
