"""Consistency-distillation ablation (paper Section VII-C future work):
distill the trained TrigFlow teacher into a one-step student and compare
inference cost and one-step forecast quality against the 10-step solver.

"...consistency distillation, which allows us to compress the model size
and reduce inference to a single step, thereby lowering computational cost
by orders of magnitude for generating new forecasts."
"""

import numpy as np
from conftest import BENCH_CONFIG, write_result

from repro.data import TOY_SET
from repro.diffusion import (
    ConsistencyConfig,
    ConsistencyDistiller,
    SolverConfig,
)
from repro.eval import rmse
from repro.model import Aeris


def distill(archive, aeris_trainer, n_steps=120):
    teacher = Aeris(BENCH_CONFIG)
    teacher.load_state_dict(aeris_trainer.model.state_dict())
    aeris_trainer.ema.copy_to(teacher)
    teacher.eval()
    student = Aeris(BENCH_CONFIG)
    student.load_state_dict(teacher.state_dict())
    distiller = ConsistencyDistiller(teacher, student,
                                     config=ConsistencyConfig(seed=0))
    state_norm = aeris_trainer.state_norm
    res_norm = aeris_trainer.residual_norm
    forc_norm = aeris_trainer.forcing_norm
    rng = np.random.default_rng(0)
    train_idx = archive.split_indices("train")
    for _ in range(n_steps):
        idx = rng.choice(train_idx, size=4, replace=False)
        cond, residual, forc = archive.training_batch(
            idx, state_norm, res_norm, forc_norm)
        distiller.train_step(residual, cond, forc)
    return distiller


def one_step_vs_solver(archive, aeris_trainer, distiller):
    """Compare one forecast step: 10-step diffusion vs 1-step consistency."""
    fc = aeris_trainer.forecaster(SolverConfig(n_steps=10))
    idxs = archive.split_indices("test")[10:16]
    z = TOY_SET.index("Z500")
    err_solver, err_onestep = [], []
    for i in idxs:
        i = int(i)
        state = archive.fields[i]
        truth = archive.fields[i + 1]
        pred_solver = fc.step(state, i, np.random.default_rng(i))
        cond = aeris_trainer.state_norm.normalize(state)
        forc = aeris_trainer.forcing_norm.normalize(
            archive.forcing_provider(archive.gcm_step(i)))
        res = distiller.sample_one_step(cond, forc,
                                        np.random.default_rng(i + 1))
        pred_onestep = state + aeris_trainer.residual_norm.denormalize(res)
        err_solver.append(float(rmse(pred_solver[..., z], truth[..., z],
                                     archive.grid)))
        err_onestep.append(float(rmse(pred_onestep[..., z], truth[..., z],
                                      archive.grid)))
    return float(np.mean(err_solver)), float(np.mean(err_onestep))


def test_consistency_distillation(benchmark, bench_archive, aeris_trainer):
    distiller = benchmark.pedantic(
        distill, args=(bench_archive, aeris_trainer), rounds=1, iterations=1)
    err_solver, err_onestep = one_step_vs_solver(bench_archive,
                                                 aeris_trainer, distiller)
    nfe_teacher = distiller.teacher_sample_cost(SolverConfig(n_steps=10))
    losses = np.asarray(distiller.history)
    text = "\n".join([
        "Consistency distillation (teacher: trained AERIS TrigFlow)",
        f"  distillation loss: {losses[:10].mean():.4f} -> "
        f"{losses[-10:].mean():.4f} over {len(losses)} steps",
        f"  network evaluations per forecast step: teacher {nfe_teacher} "
        f"vs student 1 ({nfe_teacher}x cheaper)",
        f"  1-step Z500 RMSE: solver(10 steps) {err_solver:.2f} vs "
        f"one-step student {err_onestep:.2f}",
        "  paper: distillation 'reduces inference to a single step, "
        "lowering computational cost by orders of magnitude'",
    ]) + "\n"
    write_result("consistency_distillation.txt", text)

    assert np.isfinite(losses).all()
    assert losses[-10:].mean() < losses[:10].mean()
    assert nfe_teacher == 20
    # One-step quality within 2.5x of the full solver at this budget.
    assert err_onestep < 2.5 * err_solver
