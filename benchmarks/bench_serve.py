#!/usr/bin/env python
"""Serving-tier load benchmark: latency / throughput / cache behavior of
``repro.serve`` under a Poisson open-loop arrival process at several
rates, plus the batching headline (one 8-member ensemble served in far
fewer stacked forwards than eight sequential rollouts).

Standalone (not a pytest bench — the serving loop drives its own virtual
clock)::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI-sized

Writes ``benchmarks/results/serve_load.txt`` plus a machine-readable
``serve_load.json`` sidecar with p50/p95/p99 latency, throughput, cache
hit rate, and rejection rate per arrival rate.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from conftest import write_result  # noqa: E402

from repro import obs, quickstart_components  # noqa: E402
from repro.model import Aeris  # noqa: E402
from repro.serve import (BatcherConfig, ForecastRequest,  # noqa: E402
                         ForecastService, ServiceConfig)

#: (tier, weight) mix of the synthetic workload.
TIER_MIX = (("fast", 0.5), ("standard", 0.4), ("high", 0.1))


def build_service(height, width, n_workers):
    """A service over a small untrained model pair (latency, batching, and
    caching do not depend on forecast skill)."""
    archive, trainer = quickstart_components(height=height, width=width,
                                             train_years=0.2,
                                             test_years=0.1)
    forecaster = trainer.forecaster()
    student = Aeris(forecaster.model.config, seed=3)
    service = ForecastService(
        forecaster, student=student,
        config=ServiceConfig(n_workers=n_workers,
                             batcher=BatcherConfig(max_members=32,
                                                   max_requests=8)))
    return archive, forecaster, service


def workload(archive, n_requests, rate_hz, seed, n_steps, repeat_frac):
    """Poisson arrivals over a small pool of (init, seed) queries so a
    ``repeat_frac`` fraction of requests are repeats (cacheable)."""
    rng = np.random.default_rng(seed)
    test_idx = archive.split_indices("test")
    pool_size = max(1, int(round(n_requests * (1.0 - repeat_frac))))
    pool = [(int(test_idx[rng.integers(len(test_idx) - n_steps)]),
             int(rng.integers(1 << 16))) for _ in range(pool_size)]
    arrivals = rng.exponential(1.0 / rate_hz, size=n_requests).cumsum()
    tiers, weights = zip(*TIER_MIX)
    requests = []
    for k in range(n_requests):
        idx, qseed = pool[rng.integers(pool_size)]
        requests.append(ForecastRequest(
            init_state=archive.fields[idx], n_steps=n_steps,
            n_members=int(rng.choice((1, 2, 4))),
            tier=str(rng.choice(tiers, p=weights)), seed=qseed,
            start_index=idx, arrival_s=float(arrivals[k])))
    return requests


def percentile_row(latencies):
    arr = np.asarray(latencies)
    return {"p50_s": float(np.percentile(arr, 50)),
            "p95_s": float(np.percentile(arr, 95)),
            "p99_s": float(np.percentile(arr, 99))}


def run_rate(service_builder, rate_hz, n_requests, seed, n_steps,
             repeat_frac):
    """One closed measurement at one arrival rate on a fresh service."""
    archive, _, service = service_builder()
    requests = workload(archive, n_requests, rate_hz, seed, n_steps,
                        repeat_frac)
    responses = service.run(requests)
    completed = [r for r in responses if r.ok]
    row = {
        "rate_hz": rate_hz,
        "requests": len(requests),
        "completed": len(completed),
        "rejected": service.tally["rejected"],
        "timeout": service.tally["timeout"],
        "failed": service.tally["failed"],
        "rejection_rate": service.tally["rejected"] / len(requests),
    }
    if completed:
        ends = [r.request.arrival_s + r.latency_s for r in completed]
        makespan = max(ends) - min(r.request.arrival_s for r in completed)
        row.update(percentile_row([r.latency_s for r in completed]))
        row["throughput_rps"] = (len(completed) / makespan if makespan > 0
                                 else float("nan"))
        row["mean_queue_wait_s"] = float(np.mean(
            [r.queue_wait_s for r in completed]))
    cache = service.cache.stats()
    row["cache_hit_rate"] = cache["hit_rate"]
    row["cache_entries"] = cache["entries"]
    row["slo"] = service.slo.summary()
    row["batches"] = service.pool.stats()["dispatches"]
    return row


def ensemble_batching_headline(archive, forecaster, service, members=8):
    """Serve one ``members``-member ensemble and compare stacked forwards
    against the sequential per-member path (bit-identical by design)."""
    idx = int(archive.split_indices("test")[0])
    req = ForecastRequest(init_state=archive.fields[idx], n_steps=2,
                          n_members=members, tier="standard", seed=42,
                          start_index=idx)
    resp = service.serve(req)
    assert resp.ok, resp.error
    per_step = service.router.route("standard").forwards_per_data_step()
    sequential = members * per_step * req.n_steps
    direct = forecaster.ensemble_rollout(
        archive.fields[idx], n_steps=2, n_members=members, seed=42,
        start_index=idx)
    return {
        "members": members,
        "batched_forwards": resp.batch_forwards,
        "sequential_forwards": sequential,
        "speedup_x": sequential / resp.batch_forwards,
        "bit_identical_to_direct": bool(np.array_equal(resp.forecast,
                                                       direct)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer requests, two rates)")
    parser.add_argument("--rates", type=float, nargs="+", default=None,
                        help="arrival rates to sweep (requests/s)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per rate")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--steps", type=int, default=2,
                        help="forecast lead steps per request")
    parser.add_argument("--repeat-frac", type=float, default=0.5,
                        help="fraction of requests repeating earlier ones")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rates = args.rates or ([2.0, 20.0] if args.smoke
                           else [1.0, 5.0, 20.0, 80.0])
    n_requests = args.requests or (12 if args.smoke else 60)
    size = (8, 16) if args.smoke else (16, 32)

    obs.enable()
    try:
        def builder():
            return build_service(size[0], size[1], args.workers)

        rows = [run_rate(builder, rate, n_requests, args.seed,
                         args.steps, args.repeat_frac) for rate in rates]
        archive, forecaster, service = builder()
        headline = ensemble_batching_headline(archive, forecaster, service)

        header = (f"{'rate/s':>8} {'done':>5} {'rej':>4} {'t/o':>4} "
                  f"{'p50 ms':>8} {'p99 ms':>8} {'thru/s':>8} {'hit%':>6}")
        lines = ["serve load sweep "
                 f"({size[0]}x{size[1]}, {args.workers} workers, "
                 f"{n_requests} requests/rate, repeat_frac="
                 f"{args.repeat_frac})", header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['rate_hz']:>8.1f} {row['completed']:>5d} "
                f"{row['rejected']:>4d} {row['timeout']:>4d} "
                f"{row.get('p50_s', float('nan')) * 1e3:>8.1f} "
                f"{row.get('p99_s', float('nan')) * 1e3:>8.1f} "
                f"{row.get('throughput_rps', float('nan')):>8.2f} "
                f"{row['cache_hit_rate'] * 100:>6.1f}")
        lines.append("")
        lines.append(
            f"8-member ensemble: {headline['batched_forwards']} stacked "
            f"forwards vs {headline['sequential_forwards']} sequential "
            f"({headline['speedup_x']:.1f}x fewer), bit-identical: "
            f"{headline['bit_identical_to_direct']}")
        write_result("serve_load.txt", "\n".join(lines) + "\n",
                     data={"rates": rows, "ensemble_batching": headline,
                           "smoke": args.smoke})
        assert headline["bit_identical_to_direct"]
        assert headline["batched_forwards"] < headline["sequential_forwards"]
        assert any(row["cache_hit_rate"] > 0 for row in rows), \
            "repeated queries produced no cache hits"
    finally:
        obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
