"""Figure 6 — tropical-cyclone track and intensity forecasts.

Finds a strong tropical cyclone in the test period (the Hurricane-Laura
stand-in), launches AERIS ensemble forecasts and the IFS-like numerical
ensemble at decreasing lead times, tracks each forecast's MSLP minimum, and
reports track error (km) and central pressure against the truth track.
"""

import numpy as np
from conftest import write_result

from repro.baselines import NumericalEnsemble, NumericalEnsembleConfig
from repro.data import TOY_SET
from repro.diffusion import SolverConfig
from repro.eval import track_cyclone, track_error_km

LEADS_STEPS = [12, 8, 4]  # 3-, 2-, 1-day leads (6h steps)


def find_cyclone(archive):
    """Strongest TC moment in the test split: (index, lat, lon, intensity)."""
    lo, hi = archive.splits["test"]
    best = None
    for i in range(lo, hi, 4):
        state = archive.internal_state_at(i)
        for tc in state.cyclones:
            if best is None or tc.intensity > best[3]:
                best = (i, tc.lat, tc.lon, tc.intensity)
    return best


def run_case(archive, aeris_trainer):
    best = find_cyclone(archive)
    assert best is not None, "no tropical cyclone in the test period"
    peak_idx, lat, lon, intensity = best
    horizon = max(LEADS_STEPS) + 8
    fc = aeris_trainer.forecaster(SolverConfig(n_steps=4, churn=0.3))
    nwp = NumericalEnsemble(archive, NumericalEnsembleConfig(seed=9))
    results = {}
    for lead in LEADS_STEPS:
        init = peak_idx - lead
        n_steps = lead + 8
        truth = archive.fields[init:init + n_steps + 1]
        # Find the storm's position at init time from the truth state.
        state0 = archive.internal_state_at(init)
        storm0 = max(state0.cyclones, key=lambda c: c.intensity,
                     default=None)
        if storm0 is None:
            continue
        truth_track = track_cyclone(truth, archive.grid, storm0.lat,
                                    storm0.lon)
        aeris_ens = fc.ensemble_rollout(archive.fields[init], n_steps, 3,
                                        seed=41, start_index=init)
        nwp_ens = nwp.ensemble_rollout(init, n_steps, 3)
        aeris_tracks = [track_cyclone(aeris_ens[m], archive.grid,
                                      storm0.lat, storm0.lon)
                        for m in range(3)]
        nwp_tracks = [track_cyclone(nwp_ens[m], archive.grid, storm0.lat,
                                    storm0.lon) for m in range(3)]
        results[lead] = (truth_track, aeris_tracks, nwp_tracks)
    return peak_idx, lat, lon, intensity, results


def test_fig6_hurricane(benchmark, bench_archive, aeris_trainer):
    peak_idx, lat, lon, intensity, results = benchmark.pedantic(
        run_case, args=(bench_archive, aeris_trainer), rounds=1,
        iterations=1)
    lines = [f"Figure 6 — cyclone case study: storm peaking at step "
             f"{peak_idx} near ({lat:.1f}, {lon:.1f}), intensity "
             f"{intensity:.2f}"]
    summary = {}
    for lead, (truth_track, aeris_tracks, nwp_tracks) in results.items():
        lines.append(f"\nlead {lead * 6} h:")
        lines.append(f"  truth track: " + " -> ".join(
            f"({p.lat:.1f},{p.lon:.1f},{p.min_mslp:.0f}hPa)"
            for p in truth_track[::4]))
        aeris_err = np.mean([track_error_km(truth_track, tr)[:lead].mean()
                             for tr in aeris_tracks if len(tr) >= 2])
        nwp_err = np.mean([track_error_km(truth_track, tr)[:lead].mean()
                           for tr in nwp_tracks if len(tr) >= 2])
        truth_min = min(p.min_mslp for p in truth_track)
        aeris_min = np.mean([min(p.min_mslp for p in tr)
                             for tr in aeris_tracks if tr])
        lines.append(f"  AERIS mean track error {aeris_err:8.0f} km | "
                     f"IFS-like {nwp_err:8.0f} km")
        lines.append(f"  min MSLP: truth {truth_min:.0f} hPa, AERIS ens "
                     f"mean {aeris_min:.0f} hPa")
        summary[lead] = (aeris_err, nwp_err, truth_min, aeris_min)
    lines.append("\npaper shape: minimal track errors down to 7-day leads; "
                 "rapid intensification captured at 5-day lead")
    write_result("fig6_hurricane.txt", "\n".join(lines) + "\n")

    # Shape assertions: a track is found at every lead, the shortest lead
    # has bounded error (within a few grid cells ~ coarse-resolution limit),
    # and the ensemble deepens the low relative to climatological MSLP.
    assert summary, "no trackable forecasts produced"
    shortest = min(summary)
    aeris_err, _, truth_min, aeris_min = summary[shortest]
    assert np.isfinite(aeris_err)
    assert aeris_err < 4000.0          # loose bound at 7.5 deg resolution
    assert truth_min < 1000.0          # the event is a real deep low
