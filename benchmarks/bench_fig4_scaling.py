"""Figure 4 — strong and weak scaling of training on Aurora.

Regenerates:
* 4a (top): strong scaling of the 40B model via GAS (paper: 81.6%) and via
  WP 36 -> 64 -> 144 (paper: 100% / 87% / 64%);
* 4a (bottom) + 4b: weak scaling images/s and sustained FLOPS for all
  configurations (paper: 95.5% efficiency for 40B at 10,080 nodes).
"""

from conftest import write_result

from repro.model import TABLE_II
from repro.perf import (
    AURORA,
    scaling_efficiency,
    strong_scaling_gas,
    strong_scaling_wp,
    weak_scaling_series,
)

PAPER_DP = {"1.3B": 40, "13B": 30, "40B": 14, "80B": 5}


def run_series():
    cfg40 = TABLE_II["40B"]
    wp = strong_scaling_wp(cfg40, AURORA, gbs=140,
                           wp_grids=[(6, 6), (8, 8), (12, 12)])
    gas = strong_scaling_gas(cfg40, AURORA, gbs=1960,
                             dp_values=[1, 2, 7, 14])
    weak = {}
    for name in ("1.3B", "13B", "40B", "80B"):
        top_dp = PAPER_DP[name]
        dps = sorted({1, 2, max(top_dp // 4, 1), max(top_dp // 2, 1), top_dp})
        weak[name] = weak_scaling_series(TABLE_II[name], AURORA, dps)
    return wp, gas, weak


def build_report(wp, gas, weak) -> str:
    lines = ["Figure 4 — scaling of AERIS training on Aurora "
             "(analytical model)"]
    lines.append("\n[4a top] 40B strong scaling via WP (GBS=140, DP=1):")
    effs = scaling_efficiency(wp)
    for est, eff in zip(wp, effs):
        lines.append(f"  WP={est.nodes // est.dp // 20:>4d} nodes={est.nodes:>5d}"
                     f" img/s={est.images_per_sec:7.3f} eff={eff * 100:5.1f}%")
    lines.append("  paper: 100% / 87% / 64%")
    lines.append("\n[4a top] 40B strong scaling via GAS (GBS=1960):")
    effs = scaling_efficiency(gas)
    for est, eff in zip(gas, effs):
        lines.append(f"  DP={est.dp:>3d} nodes={est.nodes:>6d} "
                     f"img/s={est.images_per_sec:7.2f} eff={eff * 100:5.1f}%")
    lines.append("  paper: 81.6% overall")
    lines.append("\n[4a bottom / 4b] weak scaling (img/s and sustained EF):")
    for name, series in weak.items():
        effs = scaling_efficiency(series)
        lines.append(f"  {name}:")
        for est, eff in zip(series, effs):
            lines.append(
                f"    DP={est.dp:>3d} nodes={est.nodes:>6d} "
                f"img/s={est.images_per_sec:8.2f} EF(S)={est.ef_sustained:6.2f}"
                f" eff={eff * 100:5.1f}%")
    lines.append("  paper: 95.5% weak-scaling efficiency for 40B at 10,080 "
                 "nodes; ~18x throughput gap 1.3B vs 40B at 1,440 nodes")
    return "\n".join(lines) + "\n"


def structured_data(wp, gas, weak) -> dict:
    """Numeric payload for the JSON sidecar (regression-gated in CI)."""
    return {
        "wp_strong": {
            f"wp{est.nodes}": {"images_per_sec": est.images_per_sec,
                               "efficiency": eff}
            for est, eff in zip(wp, scaling_efficiency(wp))},
        "gas_strong": {
            f"dp{est.dp}": {"images_per_sec": est.images_per_sec,
                            "efficiency": eff}
            for est, eff in zip(gas, scaling_efficiency(gas))},
        "weak": {
            name: {f"dp{est.dp}": {"images_per_sec": est.images_per_sec,
                                   "ef_sustained": est.ef_sustained,
                                   "efficiency": eff}
                   for est, eff in zip(series, scaling_efficiency(series))}
            for name, series in weak.items()},
    }


def test_fig4_scaling(benchmark):
    wp, gas, weak = benchmark.pedantic(run_series, rounds=1, iterations=1)
    write_result("fig4_scaling.txt", build_report(wp, gas, weak),
                 data=structured_data(wp, gas, weak))

    wp_eff = scaling_efficiency(wp)
    assert abs(wp_eff[1] - 0.87) < 0.05
    assert abs(wp_eff[2] - 0.64) < 0.06

    gas_eff = scaling_efficiency(gas)
    assert abs(gas_eff[-1] - 0.816) < 0.05

    weak_eff_40b = scaling_efficiency(weak["40B"])
    assert abs(weak_eff_40b[-1] - 0.955) < 0.04
    # Weak scaling is near-linear for every configuration.
    for name, series in weak.items():
        for eff in scaling_efficiency(series):
            assert eff > 0.85, name

    # Paper: at ~1,440 nodes the 1.3B model has ~18x the 40B throughput.
    from repro.parallel import RankTopology
    from repro.perf import estimate_performance
    t13 = estimate_performance(
        TABLE_II["1.3B"], AURORA,
        RankTopology(dp=30, pp=12, wp_grid=(2, 2), sp=12), gbs=30 * 60)
    t40 = estimate_performance(
        TABLE_II["40B"], AURORA,
        RankTopology(dp=2, pp=20, wp_grid=(6, 6), sp=12), gbs=2 * 140)
    ratio = t13.images_per_sec / t40.images_per_sec
    assert 8 < ratio < 40  # paper: ~18x
