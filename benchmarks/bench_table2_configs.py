"""Table II — AERIS model configurations.

Regenerates the configuration table (WP, PP, GAS, dim, heads, FFN, nodes)
and checks the analytical parameter counts against the paper's nominal
model sizes.
"""

from conftest import write_result

from repro.model import TABLE_II, count_parameters
from repro.model.config import NOMINAL_PARAMS


def build_table() -> str:
    lines = [
        "Table II: AERIS model configurations (paper vs this reproduction)",
        f"{'Config':8s} {'WP':>8s} {'PP':>4s} {'GAS':>5s} {'Dim':>6s} "
        f"{'Heads':>6s} {'FFN':>7s} {'Nodes':>6s} {'Params(B)':>10s} "
        f"{'Nominal':>8s} {'Δ%':>6s}",
    ]
    for name, cfg in TABLE_II.items():
        lay = cfg.layout
        params = count_parameters(cfg)
        nominal = NOMINAL_PARAMS[name]
        delta = 100 * (params - nominal) / nominal
        lines.append(
            f"{name:8s} {lay.wp:>3d}({lay.wp_grid[0]}x{lay.wp_grid[1]})"
            f" {lay.pp:>4d} {lay.gas:>5d} {cfg.dim:>6d} {cfg.heads:>6d} "
            f"{cfg.ffn_dim:>7d} {lay.nodes_per_instance:>6d} "
            f"{params / 1e9:>10.2f} {nominal / 1e9:>8.1f} {delta:>+6.1f}")
    return "\n".join(lines) + "\n"


def test_table2_configs(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_result("table2_configs.txt", table)
    # Shape assertions: nodes column matches the paper exactly; parameter
    # counts land near nominal (block multiplicity unpublished).
    expected_nodes = {"1.3B": 48, "13B": 256, "40B": 720, "80B": 1664,
                      "26B(L)": 504}
    for name, cfg in TABLE_II.items():
        assert cfg.layout.nodes_per_instance == expected_nodes[name]
        rel = abs(count_parameters(cfg) - NOMINAL_PARAMS[name]) \
            / NOMINAL_PARAMS[name]
        assert rel < 0.30
