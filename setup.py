"""Setup shim: allows `pip install -e .` / `python setup.py develop` on
environments whose pip lacks the `wheel` package (PEP 660 fallback)."""
from setuptools import setup

setup()
