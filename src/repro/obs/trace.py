"""Span tracer: nested timed spans with attributes, exportable as Chrome
``trace_event`` JSON and as a plain-text summary table.

A :class:`Span` is one timed interval on a *track* (rendered as a thread
row in ``chrome://tracing`` / Perfetto).  Spans come from two sources:

* live timing — ``with tracer.span("train.step"): ...`` reads the clock on
  entry/exit (the clock is injectable for deterministic tests);
* reconstructed timelines — :meth:`Tracer.add_span` records an interval at
  explicit timestamps, which is how the pipeline engine lays its measured
  per-stage costs onto the per-rank 1F1B schedule so the bubble is visible
  in the trace viewer even though the simulation executes sequentially.

This is the paper's "timers" methodology (Section VI-D) made inspectable:
every figure-quality claim about where time goes should be checkable by
opening the exported trace.
"""

from __future__ import annotations

import json
import time

__all__ = ["Span", "Tracer", "StepClock"]


class Span:
    """One completed timed interval.

    ``Span.allocated`` counts every construction — the overhead tests
    assert it stays flat while tracing is disabled.
    """

    __slots__ = ("name", "start", "end", "track", "category", "attrs")

    allocated = 0

    def __init__(self, name: str, start: float, end: float,
                 track: str = "main", category: str | None = None,
                 attrs: dict | None = None):
        Span.allocated += 1
        self.name = name
        self.start = start
        self.end = end
        self.track = track
        self.category = category
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.start:.6f}..{self.end:.6f}, "
                f"track={self.track!r})")


class StepClock:
    """Deterministic clock: advances by ``step`` per reading (tests)."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class _LiveSpan:
    """Context manager recording one live span into its tracer."""

    __slots__ = ("tracer", "name", "track", "category", "attrs", "start")

    def __init__(self, tracer: "Tracer", name: str, track: str,
                 category: str | None, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.track = track
        self.category = category
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        self.tracer._stack.append(self)
        self.start = self.tracer.clock()
        return self

    def set_attr(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __exit__(self, *exc) -> None:
        end = self.tracer.clock()
        self.tracer._stack.pop()
        self.tracer.spans.append(Span(self.name, self.start, end,
                                      track=self.track,
                                      category=self.category,
                                      attrs=self.attrs))
        return None


class Tracer:
    """Records spans; exports Chrome ``trace_event`` JSON and text tables."""

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self._stack: list[_LiveSpan] = []

    # -- recording ---------------------------------------------------------
    def span(self, name: str, track: str = "main",
             category: str | None = None, **attrs) -> _LiveSpan:
        """Open a live span (use as a context manager)."""
        return _LiveSpan(self, name, track, category, attrs)

    def add_span(self, name: str, start: float, end: float,
                 track: str = "main", category: str | None = None,
                 **attrs) -> Span:
        """Record a span at explicit timestamps (virtual timelines)."""
        span = Span(name, start, end, track=track, category=category,
                    attrs=attrs)
        self.spans.append(span)
        return span

    def clear(self) -> None:
        self.spans.clear()

    def select(self, category: str | None = None,
               track_prefix: str | None = None,
               name: str | None = None) -> list[Span]:
        """Filter recorded spans (used by :class:`~repro.obs.report.TraceReport`)."""
        out = []
        for s in self.spans:
            if category is not None and s.category != category:
                continue
            if track_prefix is not None and not s.track.startswith(track_prefix):
                continue
            if name is not None and s.name != name:
                continue
            out.append(s)
        return out

    # -- Chrome trace_event export ----------------------------------------
    def to_chrome(self) -> list[dict]:
        """Chrome ``trace_event`` array ("X" complete events, µs units).

        Tracks map to thread rows via ``thread_name`` metadata events, so
        per-rank pipeline tracks render as one row per rank.
        """
        tids: dict[str, int] = {}
        events: list[dict] = []
        for span in self.spans:
            tid = tids.setdefault(span.track, len(tids))
            event = {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(span.duration, 0.0) * 1e6,
                "pid": 0,
                "tid": tid,
            }
            if span.category is not None:
                event["cat"] = span.category
            if span.attrs:
                event["args"] = {k: _jsonable(v)
                                 for k, v in span.attrs.items()}
            events.append(event)
        meta = [{"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                 "args": {"name": track}}
                for track, tid in tids.items()]
        meta.append({"name": "process_name", "ph": "M", "pid": 0,
                     "args": {"name": "repro"}})
        return meta + events

    def write_chrome(self, path: str) -> None:
        # Imported lazily: repro.resilience transitively imports the obs
        # hooks, so a module-level import here would be a cycle.
        from ..resilience.atomic import atomic_write
        atomic_write(path, json.dumps(self.to_chrome()))

    # -- text summary ------------------------------------------------------
    def summary(self) -> dict[str, dict]:
        """Aggregate spans by name: count / total / mean / min / max."""
        agg: dict[str, dict] = {}
        for s in self.spans:
            cell = agg.setdefault(s.name, {"count": 0, "total": 0.0,
                                           "min": float("inf"),
                                           "max": float("-inf")})
            d = s.duration
            cell["count"] += 1
            cell["total"] += d
            cell["min"] = min(cell["min"], d)
            cell["max"] = max(cell["max"], d)
        for cell in agg.values():
            cell["mean"] = cell["total"] / cell["count"]
        return agg

    def summary_table(self) -> str:
        rows = [("span", "count", "total_s", "mean_s", "min_s", "max_s")]
        agg = self.summary()
        for name in sorted(agg, key=lambda n: -agg[n]["total"]):
            c = agg[name]
            rows.append((name, str(c["count"]), f"{c['total']:.6f}",
                         f"{c['mean']:.6f}", f"{c['min']:.6f}",
                         f"{c['max']:.6f}"))
        widths = [max(len(r[i]) for r in rows) for i in range(6)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
                 for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _jsonable(v):
    try:
        json.dumps(v)
        return v
    except TypeError:
        return repr(v)
