"""Flight recorder: a bounded ring buffer of typed, structured events.

A crashed 10,080-node run is only debuggable if the last few thousand
things that *happened* — train steps, comm retries and escalations,
serve admissions and rejections, fault injections, checkpoint saves,
fired alerts — survive as structured records.  The
:class:`FlightRecorder` keeps exactly that: a ``deque(maxlen=capacity)``
of :class:`Event` records (oldest events fall off the back, so memory is
bounded no matter how long the run), dumped as JSONL

* **on demand** — :meth:`FlightRecorder.dump` (atomic write, so a crash
  mid-dump never truncates a previous post-mortem), and
* **on unhandled exceptions** — :meth:`FlightRecorder.install_excepthook`
  chains onto ``sys.excepthook`` and writes the post-mortem (including a
  final ``crash`` event carrying the exception) before the traceback
  prints.

Recording is routed through :func:`repro.obs.profile.record_event`,
which is a strict no-op while the recorder is disabled — the same
zero-cost contract as spans and metrics (``Event.allocated`` counts
constructions the way ``Span.allocated`` does, and the overhead tests
pin it flat while disabled).
"""

from __future__ import annotations

import json
import sys
import time
import traceback
from collections import deque

__all__ = ["Event", "FlightRecorder", "SEVERITIES"]

#: Ordered severities, least to most severe.
SEVERITIES = ("info", "warning", "critical")


class Event:
    """One structured flight-recorder record.

    ``Event.allocated`` counts every construction — the overhead tests
    assert it stays flat while recording is disabled.
    """

    __slots__ = ("seq", "ts", "kind", "subsystem", "severity", "data")

    allocated = 0

    def __init__(self, seq: int, ts: float, kind: str, subsystem: str,
                 severity: str = "info", data: dict | None = None):
        Event.allocated += 1
        if severity not in SEVERITIES:
            raise ValueError(f"severity {severity!r}; one of {SEVERITIES}")
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.subsystem = subsystem
        self.severity = severity
        self.data = data or {}

    def to_dict(self) -> dict:
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "subsystem": self.subsystem, "severity": self.severity,
                "data": self.data}

    def __repr__(self) -> str:
        return (f"Event(#{self.seq} {self.kind!r} [{self.severity}] "
                f"@{self.ts:.6f})")


class FlightRecorder:
    """Bounded ring buffer of :class:`Event` records.

    Parameters
    ----------
    capacity:
        Retained event count; the oldest events are discarded first
        (``dropped`` counts how many fell off the back).
    clock:
        Injectable timestamp source (e.g. :class:`~repro.obs.StepClock`
        for deterministic tests); defaults to ``time.time``.
    """

    def __init__(self, capacity: int = 4096, clock=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.clock = clock if clock is not None else time.time
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self._prev_excepthook = None

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording ---------------------------------------------------------
    def record(self, kind: str, subsystem: str = "repro",
               severity: str = "info", **data) -> Event:
        """Append one event (evicting the oldest if the ring is full)."""
        event = Event(self._seq, self.clock(), kind, subsystem,
                      severity, data)
        self._seq += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        return event

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- querying ----------------------------------------------------------
    def events(self, kind: str | None = None, subsystem: str | None = None,
               min_severity: str = "info") -> list[Event]:
        """Retained events, oldest first, optionally filtered."""
        floor = SEVERITIES.index(min_severity)
        return [e for e in self._ring
                if (kind is None or e.kind == kind)
                and (subsystem is None or e.subsystem == subsystem)
                and SEVERITIES.index(e.severity) >= floor]

    def tail(self, n: int = 10) -> list[Event]:
        """The ``n`` most recent events, oldest of them first."""
        return list(self._ring)[-n:]

    # -- post-mortem export ------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first; trailing newline."""
        return "".join(json.dumps(e.to_dict()) + "\n" for e in self._ring)

    def dump(self, path: str) -> str:
        """Write the post-mortem JSONL atomically; returns ``path``."""
        # Imported lazily: repro.resilience transitively imports the obs
        # hooks, so a module-level import here would be a cycle.
        from ..resilience.atomic import atomic_write
        return atomic_write(path, self.to_jsonl())

    # -- crash hook --------------------------------------------------------
    def install_excepthook(self, path: str) -> None:
        """Dump the flight record to ``path`` on unhandled exceptions.

        Chains the previously installed ``sys.excepthook`` (typically the
        default traceback printer) after the dump.  A final ``crash``
        event carrying the exception type/message/traceback is recorded
        before writing, so the post-mortem ends with its own cause.
        """
        if self._prev_excepthook is not None:
            raise RuntimeError("excepthook already installed")
        prev = sys.excepthook

        def hook(exc_type, exc, tb):
            try:
                self.record(
                    "crash", subsystem="obs", severity="critical",
                    exc_type=exc_type.__name__, message=str(exc),
                    traceback="".join(
                        traceback.format_exception(exc_type, exc, tb)))
                self.dump(path)
            except Exception as dump_exc:
                # The hook must never mask the real crash — report the
                # failed dump on stderr and fall through to the chain.
                print(f"flight recorder post-mortem dump failed: "
                      f"{dump_exc!r}", file=sys.stderr)
            prev(exc_type, exc, tb)

        self._prev_excepthook = prev
        sys.excepthook = hook

    def uninstall_excepthook(self) -> None:
        """Restore the previous ``sys.excepthook`` (no-op if not installed)."""
        if self._prev_excepthook is not None:
            sys.excepthook = self._prev_excepthook
            self._prev_excepthook = None
