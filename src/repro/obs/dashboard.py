"""Terminal dashboard: one text panel over the whole telemetry stack.

:func:`render_dashboard` pulls whatever is available — metrics registry,
tracer, health monitor, flight recorder — and renders a deterministic
plain-text panel (train / serve / resilience / kernels sections, fired
alerts, the flight-recorder tail).  Deterministic means: section order,
row order, and number formatting are all stable, so a render produced
under :class:`~repro.obs.StepClock` can be pinned by a golden test and a
render produced in production can be diffed across scrapes.

``tools/obs_dashboard.py`` wraps this as a CLI over exported snapshot /
flight files; :mod:`examples.monitor_training` renders it live.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

__all__ = ["render_dashboard"]

_RULE_WIDTH = 64


def _rule(title: str) -> str:
    pad = _RULE_WIDTH - len(title) - 4
    return f"-- {title} " + "-" * max(pad, 2)


def _num(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return f"{as_float:.6g}"


def _counter_rows(registry: MetricsRegistry, name: str) -> list[str]:
    inst = registry.instruments.get(name)
    if inst is None or not getattr(inst, "series", None):
        return []
    rows = []
    for key in sorted(inst.series):
        label = ",".join(f"{k}={v}" for k, v in key) or "-"
        rows.append(f"  {name}  {label:<28s} {_num(inst.series[key])}")
    return rows


def _hist_rows(registry: MetricsRegistry, name: str) -> list[str]:
    inst = registry.instruments.get(name)
    if inst is None or not getattr(inst, "series", None):
        return []
    rows = []
    for key in sorted(inst.series):
        label = ",".join(f"{k}={v}" for k, v in key) or "-"
        s = inst.stats(**dict(key))
        rows.append(f"  {name}  {label:<28s} n={s['count']} "
                    f"mean={s['mean']:.6g} max={s['max']:.6g}")
    return rows


_SECTIONS = (
    ("train", ("train.steps", "train.loss", "train.grad_norm",
               "train.skipped_steps", "train.checkpoints"),
     ("train.loss_hist",)),
    ("serve", ("serve.requests", "serve.queue_depth", "serve.slo_misses",
               "serve.live_workers", "serve.worker_failovers"),
     ("serve.latency_s",)),
    ("resilience", ("resilience.faults_injected", "comm.faults_detected",
                    "resilience.recoveries", "resilience.dead_ranks"),
     ("comm.straggler_s",)),
    ("obs", ("obs.alerts",), ()),
)


def _plan_cache_rows(stats: dict | None) -> list[str]:
    if stats is None:
        from ..kernels import plan_cache_stats
        stats = plan_cache_stats()
    rows = []
    for name in sorted(stats):
        c = stats[name]
        lookups = c["hits"] + c["misses"]
        if lookups == 0:
            continue
        rate = c["hits"] / lookups
        rows.append(f"  {name:<34s} size={c['size']}/{c['maxsize']} "
                    f"hit_rate={rate:.2f} ({lookups} lookups)")
    return rows


def render_dashboard(registry: MetricsRegistry | None = None,
                     tracer=None, monitor=None, recorder=None,
                     plan_caches: dict | None = None,
                     tail: int = 8) -> str:
    """Render the panel from whatever telemetry objects are provided.

    Any argument left ``None`` falls back to the globally enabled
    instance (and its section is omitted if there is none).  Pass
    ``plan_caches={}`` to suppress the kernel-cache section (e.g. when
    rendering from exported files on another machine).
    """
    from .profile import flight, get_tracer, health, metrics
    registry = registry if registry is not None else metrics()
    tracer = tracer if tracer is not None else get_tracer()
    monitor = monitor if monitor is not None else health()
    recorder = recorder if recorder is not None else flight()

    lines = ["=" * _RULE_WIDTH,
             "repro health dashboard".center(_RULE_WIDTH).rstrip(),
             "=" * _RULE_WIDTH]

    if registry is not None:
        for title, counters, hists in _SECTIONS:
            rows: list[str] = []
            for name in counters:
                rows.extend(_counter_rows(registry, name))
            for name in hists:
                rows.extend(_hist_rows(registry, name))
            if rows:
                lines.append(_rule(title))
                lines.extend(rows)

    cache_rows = _plan_cache_rows(plan_caches)
    if cache_rows:
        lines.append(_rule("kernel plan caches"))
        lines.extend(cache_rows)

    if monitor is not None:
        alerts = monitor.alerts.alerts
        lines.append(_rule(f"alerts ({len(alerts)})"))
        if alerts:
            for a in alerts:
                lab = ",".join(f"{k}={v}" for k, v in a.labels)
                lines.append(f"  [{a.severity:<8s}] {a.kind}"
                             + (f"{{{lab}}}" if lab else "")
                             + f" x{a.count}  {a.message}")
        else:
            lines.append("  (none fired)")

    if recorder is not None and len(recorder):
        lines.append(_rule(f"flight tail ({len(recorder)} events, "
                           f"{recorder.dropped} dropped)"))
        for e in recorder.tail(tail):
            lines.append(f"  #{e.seq:<5d} {e.kind:<20s} "
                         f"[{e.severity}] {e.subsystem}")

    if tracer is not None and tracer.spans:
        lines.append(_rule("spans"))
        lines.extend("  " + row
                     for row in tracer.summary_table().splitlines())

    lines.append("=" * _RULE_WIDTH)
    return "\n".join(lines) + "\n"
