"""``repro.obs`` — unified tracing, metrics, and profiling.

The measurement substrate behind the reproduction's performance claims
(the paper's "timers; performance modeling" methodology, Section VI-D):

* :mod:`~repro.obs.metrics` — labeled counters / gauges / histograms in a
  registry with mergeable JSON snapshots;
* :mod:`~repro.obs.trace` — nested timed spans exported as Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` / Perfetto) or a
  plain-text summary table;
* :mod:`~repro.obs.profile` — global on/off switch plus the zero-cost
  hooks instrumented code calls (``Scope`` / ``span`` / ``@profiled``);
* :mod:`~repro.obs.report` — :class:`TraceReport`, cross-checking
  observed span totals and byte counters against the :mod:`repro.perf`
  analytical predictions.

Everything is **off by default** and strictly free when off::

    from repro import obs
    with obs.observed() as (tracer, registry):
        trainer.fit(10)
    print(tracer.summary_table())
    print(registry.as_table())
    tracer.write_chrome("trace.json")
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      merge_snapshots)
from .profile import (Scope, disable, enable, get_tracer, is_enabled,
                      metrics, observed, profiled, span)
from .report import TraceReport
from .trace import Span, StepClock, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_snapshots",
    "Span", "StepClock", "Tracer",
    "Scope", "span", "profiled",
    "enable", "disable", "is_enabled", "observed",
    "get_tracer", "metrics",
    "TraceReport",
]
