"""``repro.obs`` — unified tracing, metrics, profiling, and health.

The measurement substrate behind the reproduction's performance claims
(the paper's "timers; performance modeling" methodology, Section VI-D):

* :mod:`~repro.obs.metrics` — labeled counters / gauges / histograms in a
  registry with mergeable JSON snapshots;
* :mod:`~repro.obs.trace` — nested timed spans exported as Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` / Perfetto) or a
  plain-text summary table;
* :mod:`~repro.obs.profile` — global on/off switch plus the zero-cost
  hooks instrumented code calls (``Scope`` / ``span`` / ``@profiled`` /
  ``record_event``);
* :mod:`~repro.obs.flight` — bounded ring-buffer flight recorder dumping
  JSONL post-mortems (on demand and on unhandled exceptions);
* :mod:`~repro.obs.health` — online anomaly detectors (loss NaN/spike/
  plateau, gradient explosion, rank stragglers, pipeline-bubble
  regression, plan-cache collapse, queue saturation, multi-window SLO
  burn) firing typed, deduplicated alerts;
* :mod:`~repro.obs.alerts` — the severity/dedup/cooldown alert funnel;
* :mod:`~repro.obs.export` — Prometheus text exposition + JSONL event
  export (atomic writes);
* :mod:`~repro.obs.dashboard` — a deterministic terminal panel over the
  whole stack (CLI in ``tools/obs_dashboard.py``);
* :mod:`~repro.obs.report` — :class:`TraceReport`, cross-checking
  observed span totals, byte counters, fault accounting, and fired
  alerts against the :mod:`repro.perf` / :mod:`repro.resilience`
  ground truth.

Everything is **off by default** and strictly free when off::

    from repro import obs
    with obs.monitored() as m:
        trainer.fit(10)
    print(obs.render_dashboard(m.registry, m.tracer, m.monitor,
                               m.recorder))
    obs.write_prometheus(m.registry, "metrics.prom")
    m.recorder.dump("flight.jsonl")
"""

from .alerts import Alert, AlertManager
from .dashboard import render_dashboard
from .export import (events_jsonl, prometheus_text, write_events_jsonl,
                     write_metrics_json, write_prometheus)
from .flight import SEVERITIES, Event, FlightRecorder
from .health import FAULT_ALERT_KINDS, HealthConfig, HealthMonitor
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      merge_snapshots)
from .profile import (MonitoredSession, Scope, disable, disable_health,
                      enable, enable_health, flight, get_tracer, health,
                      is_enabled, metrics, monitored, observed, profiled,
                      record_event, span)
from .report import TraceReport
from .trace import Span, StepClock, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "merge_snapshots",
    "Span", "StepClock", "Tracer",
    "Scope", "span", "profiled",
    "enable", "disable", "is_enabled", "observed",
    "get_tracer", "metrics",
    "Event", "FlightRecorder", "SEVERITIES",
    "Alert", "AlertManager",
    "HealthConfig", "HealthMonitor", "FAULT_ALERT_KINDS",
    "enable_health", "disable_health", "health", "flight",
    "record_event", "monitored", "MonitoredSession",
    "prometheus_text", "events_jsonl", "write_prometheus",
    "write_events_jsonl", "write_metrics_json",
    "render_dashboard",
    "TraceReport",
]
