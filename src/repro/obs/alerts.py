"""Typed alerts with severities, dedup, and cooldown.

An :class:`Alert` is what a health detector *concluded* (as opposed to a
flight-recorder :class:`~repro.obs.flight.Event`, which is what merely
*happened*).  The :class:`AlertManager` is the single funnel every
detector fires through; it

* **dedups** — repeated firings of the same ``(kind, labels)`` within the
  cooldown window update the existing alert's ``count``/``last_ts``
  instead of spamming a new record (the classic alert-storm defence);
* **routes** — each *new* alert (or re-fire past its cooldown) is
  recorded into the flight recorder (kind ``alert``) and the metrics
  registry (``obs.alerts`` counter labeled by kind/severity), so a
  post-mortem dump and a Prometheus scrape both carry the alert history
  without any extra wiring at the detector call sites.

The clock is injectable, so cooldown behaviour is deterministic under
:class:`~repro.obs.StepClock` in tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .flight import SEVERITIES

__all__ = ["Alert", "AlertManager"]


@dataclass(eq=False)
class Alert:
    """One deduplicated health conclusion."""

    kind: str
    severity: str
    subsystem: str
    message: str
    labels: tuple = ()  # sorted (key, value) pairs
    first_ts: float = 0.0
    last_ts: float = 0.0
    count: int = 1
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "severity": self.severity,
                "subsystem": self.subsystem, "message": self.message,
                "labels": dict(self.labels), "first_ts": self.first_ts,
                "last_ts": self.last_ts, "count": self.count,
                "data": self.data}

    def __repr__(self) -> str:
        lab = ",".join(f"{k}={v}" for k, v in self.labels)
        return (f"Alert({self.kind!r} [{self.severity}]"
                + (f" {lab}" if lab else "") + f" x{self.count})")


class AlertManager:
    """Dedup/cooldown funnel for health alerts.

    Parameters
    ----------
    cooldown_s:
        Window within which repeated firings of one ``(kind, labels)``
        only bump the existing alert.  A firing *after* the window
        re-routes (flight event + counter) but still accumulates into
        the same :class:`Alert` record.
    clock:
        Injectable timestamp source (defaults to ``time.time``).
    """

    def __init__(self, cooldown_s: float = 60.0, clock=None):
        self.cooldown_s = cooldown_s
        self.clock = clock if clock is not None else time.time
        self.alerts: list[Alert] = []
        self._by_key: dict[tuple, Alert] = {}
        self.fired = 0        # every .fire() call
        self.routed = 0       # firings that escaped dedup/cooldown

    def __len__(self) -> int:
        return len(self.alerts)

    # -- firing ------------------------------------------------------------
    def fire(self, kind: str, severity: str, subsystem: str, message: str,
             data: dict | None = None, **labels) -> Alert:
        """Raise (or re-raise) an alert; returns the deduplicated record."""
        if severity not in SEVERITIES:
            raise ValueError(f"severity {severity!r}; one of {SEVERITIES}")
        now = self.clock()
        key = (kind, tuple(sorted(labels.items())))
        self.fired += 1
        alert = self._by_key.get(key)
        if alert is not None:
            within_cooldown = (now - alert.last_ts) < self.cooldown_s
            alert.count += 1
            alert.last_ts = now
            alert.message = message
            if data:
                alert.data.update(data)
            if within_cooldown:
                return alert
        else:
            alert = Alert(kind=kind, severity=severity, subsystem=subsystem,
                          message=message, labels=key[1], first_ts=now,
                          last_ts=now, data=dict(data or {}))
            self._by_key[key] = alert
            self.alerts.append(alert)
        self._route(alert)
        return alert

    def _route(self, alert: Alert) -> None:
        """Book one (non-deduped) firing into flight + metrics."""
        # Lazy import: profile imports this module at load time.
        from .profile import flight, metrics
        self.routed += 1
        recorder = flight()
        if recorder is not None:
            recorder.record("alert", subsystem=alert.subsystem,
                            severity=alert.severity, alert_kind=alert.kind,
                            message=alert.message,
                            labels=dict(alert.labels), count=alert.count)
        registry = metrics()
        if registry is not None:
            registry.counter("obs.alerts",
                             "health alerts routed (post-dedup)").inc(
                1, kind=alert.kind, severity=alert.severity,
                subsystem=alert.subsystem)

    # -- querying ----------------------------------------------------------
    def kinds(self) -> set[str]:
        return {a.kind for a in self.alerts}

    def select(self, kind: str | None = None,
               min_severity: str = "info") -> list[Alert]:
        floor = SEVERITIES.index(min_severity)
        return [a for a in self.alerts
                if (kind is None or a.kind == kind)
                and SEVERITIES.index(a.severity) >= floor]

    def summary(self) -> dict:
        """JSON-friendly rollup (stable ordering by first firing)."""
        return {"total_firings": self.fired, "routed": self.routed,
                "alerts": [a.to_dict() for a in self.alerts]}

    def clear(self) -> None:
        self.alerts.clear()
        self._by_key.clear()
        self.fired = self.routed = 0
