"""Global observability state + zero-cost profiling hooks.

Tracing/metrics are **off by default**.  Instrumented call sites go
through the hooks here, which are strict no-ops while disabled:

* :func:`span` / :class:`Scope` return a shared null context manager —
  no :class:`~repro.obs.trace.Span` is allocated, no clock is read;
* :func:`profiled` wraps a function with a two-attribute check before
  falling through to the original call;
* :func:`metrics` returns ``None``, so call sites guard derived-value
  computation (e.g. gradient norms) behind the same check and skip it
  entirely when nobody is listening;
* :func:`record_event` drops the event on the floor (no
  :class:`~repro.obs.flight.Event` is allocated) while no flight
  recorder is installed, and :func:`health` returns ``None`` so the
  online detectors cost nothing while monitoring is off.

Enable globally with :func:`enable`, or scoped with ``with observed() as
(tracer, registry): ...``.  The *active* health layer (flight recorder +
detectors, see :mod:`repro.obs.health`) is a separate opt-in on top:
:func:`enable_health` / :func:`disable_health`, or everything at once
with ``with monitored() as m: ...``.  The hot-path contract is verified
by ``tests/obs/test_overhead.py``: with tracing disabled, instrumented
code paths produce bit-identical numerics and allocate zero span (and
event) objects.
"""

from __future__ import annotations

import functools
from typing import NamedTuple

from .flight import FlightRecorder
from .health import HealthConfig, HealthMonitor
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["enable", "disable", "is_enabled", "observed", "get_tracer",
           "metrics", "span", "Scope", "profiled",
           "enable_health", "disable_health", "health", "flight",
           "record_event", "monitored", "MonitoredSession"]

_tracer: Tracer | None = None
_registry: MetricsRegistry | None = None
_flight: FlightRecorder | None = None
_health: HealthMonitor | None = None


def enable(tracer: Tracer | None = None,
           registry: MetricsRegistry | None = None
           ) -> tuple[Tracer, MetricsRegistry]:
    """Turn instrumentation on; returns the active (tracer, registry)."""
    global _tracer, _registry
    _tracer = tracer if tracer is not None else (_tracer or Tracer())
    _registry = registry if registry is not None \
        else (_registry or MetricsRegistry())
    return _tracer, _registry


def disable() -> None:
    """Turn instrumentation off (recorded data is dropped).  Also turns
    the health layer off — "fully dark" is one call."""
    global _tracer, _registry
    _tracer = None
    _registry = None
    disable_health()


def is_enabled() -> bool:
    return _tracer is not None


def get_tracer() -> Tracer | None:
    """The active tracer, or ``None`` while disabled."""
    return _tracer


def metrics() -> MetricsRegistry | None:
    """The active metrics registry, or ``None`` while disabled."""
    return _registry


# -- active health layer (flight recorder + online detectors) ------------------
def enable_health(monitor: HealthMonitor | None = None,
                  recorder: FlightRecorder | None = None,
                  config: HealthConfig | None = None,
                  clock=None) -> tuple[HealthMonitor, FlightRecorder]:
    """Install the flight recorder and health monitor (idempotent: an
    existing instance is kept unless an explicit one is passed)."""
    global _flight, _health
    _flight = recorder if recorder is not None \
        else (_flight or FlightRecorder(clock=clock))
    _health = monitor if monitor is not None else (
        _health or HealthMonitor(config or HealthConfig(), clock=clock))
    return _health, _flight


def disable_health() -> None:
    """Remove the health monitor and flight recorder."""
    global _flight, _health
    _flight = None
    _health = None


def health() -> HealthMonitor | None:
    """The active health monitor, or ``None`` while disabled."""
    return _health


def flight() -> FlightRecorder | None:
    """The active flight recorder, or ``None`` while disabled."""
    return _flight


def record_event(kind: str, subsystem: str = "repro",
                 severity: str = "info", **data) -> None:
    """Record a flight event while enabled; a strict no-op otherwise."""
    recorder = _flight
    if recorder is not None:
        recorder.record(kind, subsystem=subsystem, severity=severity,
                        **data)


class MonitoredSession(NamedTuple):
    """What :class:`monitored` yields."""

    tracer: Tracer
    registry: MetricsRegistry
    monitor: HealthMonitor
    recorder: FlightRecorder


class observed:
    """Scoped enablement::

        with observed() as (tracer, registry):
            trainer.fit(10)
        print(tracer.summary_table())

    Restores the previous global state on exit (including "disabled").
    """

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None):
        self._incoming = (tracer, registry)

    def __enter__(self) -> tuple[Tracer, MetricsRegistry]:
        self._saved = (_tracer, _registry)
        tracer = self._incoming[0] or Tracer()
        registry = self._incoming[1] or MetricsRegistry()
        return enable(tracer, registry)

    def __exit__(self, *exc) -> None:
        global _tracer, _registry
        _tracer, _registry = self._saved
        return None


class monitored:
    """Scoped full-stack enablement: tracing + metrics + flight recorder
    + health monitor::

        with monitored() as m:
            trainer.fit(100)
        print(m.monitor.alerts.summary())
        m.recorder.dump("postmortem.jsonl")

    Restores the previous global state (of all four) on exit.
    """

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None,
                 monitor: HealthMonitor | None = None,
                 recorder: FlightRecorder | None = None,
                 config: HealthConfig | None = None, clock=None):
        self._incoming = (tracer, registry, monitor, recorder, config,
                          clock)

    def __enter__(self) -> MonitoredSession:
        self._saved = (_tracer, _registry, _flight, _health)
        tracer, registry, monitor, recorder, config, clock = self._incoming
        pair = enable(tracer or Tracer(clock=clock),
                      registry or MetricsRegistry())
        triple = enable_health(
            monitor or HealthMonitor(config or HealthConfig(), clock=clock),
            recorder or FlightRecorder(clock=clock))
        return MonitoredSession(pair[0], pair[1], triple[0], triple[1])

    def __exit__(self, *exc) -> None:
        global _tracer, _registry, _flight, _health
        _tracer, _registry, _flight, _health = self._saved
        return None


class _NullScope:
    """Shared do-nothing context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, **attrs) -> None:
        pass


_NULL = _NullScope()


def span(name: str, track: str = "main", category: str | None = None,
         **attrs):
    """A live tracer span while enabled; the shared null scope otherwise."""
    if _tracer is None:
        return _NULL
    return _tracer.span(name, track=track, category=category, **attrs)


#: ``Scope`` is the context-manager spelling of :func:`span`:
#: ``with Scope("eval.metric", metric="rmse"): ...``
Scope = span


def profiled(name: str | None = None, category: str | None = None):
    """Decorator timing every call of a function as a span.

    ::

        @profiled()                 # span named after the function
        def solve(...): ...

        @profiled("io.load")        # explicit span name
        def load(...): ...

    While disabled the wrapper costs one global read and one ``if``.
    """

    def decorate(fn):
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _tracer
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(span_name, category=category):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
