"""Metrics: labeled counters, gauges, and histograms in a registry.

Dependency-free (stdlib only).  The design mirrors the usual
Prometheus-style client split:

* a :class:`Counter` only goes up (bytes moved, steps taken);
* a :class:`Gauge` is a point-in-time value (loss, learning rate);
* a :class:`Histogram` accumulates a distribution into exponential
  buckets (per-metric evaluation seconds, span durations).

Every instrument is *labeled*: ``counter.inc(5, primitive="alltoall",
locality="intra")`` keeps an independent series per label set.  A
:class:`MetricsRegistry` owns the instruments, renders a plain-text table,
and produces JSON-serializable snapshots that merge across registries —
the simulated-cluster analogue of aggregating per-rank telemetry.
"""

from __future__ import annotations

import json
import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "merge_snapshots"]

LabelKey = tuple  # tuple of sorted (key, value) pairs


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted(labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key) if key else "-"


class Counter:
    """Monotonically increasing sum per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + value

    def value(self, **labels) -> float:
        return self.series.get(_label_key(labels), 0)

    def total(self, **labels) -> float:
        """Sum over every series whose labels include ``labels``."""
        want = set(labels.items())
        return sum(v for k, v in self.series.items() if want <= set(k))

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> dict:
        return {"kind": self.kind, "help": self.help,
                "series": [[list(map(list, k)), v]
                           for k, v in sorted(self.series.items())]}

    def load(self, snap: dict, merge: bool = False) -> None:
        for raw_key, v in snap["series"]:
            key = tuple(tuple(kv) for kv in raw_key)
            self.series[key] = (self.series.get(key, 0) + v) if merge else v


class Gauge(Counter):
    """Point-in-time value per label set (last write wins; merge keeps the
    incoming value, matching "most recent snapshot" semantics)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.series[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0) + value

    def load(self, snap: dict, merge: bool = False) -> None:
        for raw_key, v in snap["series"]:
            self.series[tuple(tuple(kv) for kv in raw_key)] = v


#: Default histogram buckets: exponential, 1 µs .. ~100 s in decades.
_DEFAULT_BUCKETS = tuple(10.0 ** e for e in range(-6, 3))


class Histogram:
    """Distribution per label set: count / sum / min / max + bucket counts.

    Buckets are upper bounds (``le``); an implicit +inf bucket catches the
    rest.  Exponential defaults suit durations in seconds.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = _DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.series: dict[LabelKey, dict] = {}

    def _cell(self, key: LabelKey) -> dict:
        if key not in self.series:
            self.series[key] = {"count": 0, "sum": 0.0,
                                "min": math.inf, "max": -math.inf,
                                "bucket_counts": [0] * (len(self.buckets) + 1)}
        return self.series[key]

    def observe(self, value: float, **labels) -> None:
        cell = self._cell(_label_key(labels))
        cell["count"] += 1
        cell["sum"] += value
        cell["min"] = min(cell["min"], value)
        cell["max"] = max(cell["max"], value)
        for i, le in enumerate(self.buckets):
            if value <= le:
                cell["bucket_counts"][i] += 1
                return
        cell["bucket_counts"][-1] += 1

    def stats(self, **labels) -> dict:
        """count/sum/mean/min/max for one label set (zeros if unseen)."""
        cell = self.series.get(_label_key(labels))
        if cell is None or cell["count"] == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0}
        return {"count": cell["count"], "sum": cell["sum"],
                "mean": cell["sum"] / cell["count"],
                "min": cell["min"], "max": cell["max"]}

    # -- snapshot ----------------------------------------------------------
    def snapshot(self) -> dict:
        series = []
        for k, cell in sorted(self.series.items()):
            out = dict(cell)
            out["min"] = None if math.isinf(out["min"]) else out["min"]
            out["max"] = None if math.isinf(out["max"]) else out["max"]
            series.append([list(map(list, k)), out])
        return {"kind": self.kind, "help": self.help,
                "buckets": list(self.buckets), "series": series}

    def load(self, snap: dict, merge: bool = False) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError(f"bucket mismatch for histogram {self.name!r}")
        for raw_key, incoming in snap["series"]:
            key = tuple(tuple(kv) for kv in raw_key)
            inc = dict(incoming)
            inc["min"] = math.inf if inc["min"] is None else inc["min"]
            inc["max"] = -math.inf if inc["max"] is None else inc["max"]
            if merge and key in self.series:
                cell = self.series[key]
                cell["count"] += inc["count"]
                cell["sum"] += inc["sum"]
                cell["min"] = min(cell["min"], inc["min"])
                cell["max"] = max(cell["max"], inc["max"])
                cell["bucket_counts"] = [
                    a + b for a, b in zip(cell["bucket_counts"],
                                          inc["bucket_counts"])]
            else:
                self.series[key] = {**inc,
                                    "bucket_counts": list(inc["bucket_counts"])}


class MetricsRegistry:
    """Owns named instruments; get-or-create accessors keep call sites
    one-liners (``registry.counter("comm.bytes").inc(...)``)."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self.instruments: dict[str, object] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        inst = self.instruments.get(name)
        if inst is None:
            inst = cls(name, help, **kwargs)
            self.instruments[name] = inst
        elif not isinstance(inst, cls) or type(inst) is not cls:
            raise TypeError(f"{name!r} already registered as "
                            f"{type(inst).__name__}")
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = _DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def reset(self) -> None:
        self.instruments.clear()

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable dump of every instrument."""
        return {name: inst.snapshot()
                for name, inst in sorted(self.instruments.items())}

    def load_snapshot(self, snap: dict, merge: bool = False) -> None:
        """Restore (or, with ``merge=True``, accumulate) a snapshot."""
        for name, data in snap.items():
            cls = self._KINDS[data["kind"]]
            kwargs = ({"buckets": tuple(data["buckets"])}
                      if data["kind"] == "histogram" else {})
            self._get(cls, name, data.get("help", ""), **kwargs) \
                .load(data, merge=merge)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Accumulate ``other``'s series into this registry (in place)."""
        self.load_snapshot(other.snapshot(), merge=True)
        return self

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    # -- rendering ---------------------------------------------------------
    def as_table(self) -> str:
        """Plain-text table, one row per (instrument, label set)."""
        rows = [("metric", "labels", "value")]
        for name, inst in sorted(self.instruments.items()):
            if isinstance(inst, Histogram):
                for key in sorted(inst.series):
                    s = inst.stats(**dict(key))
                    rows.append((name, _label_str(key),
                                 f"n={s['count']} sum={s['sum']:.6g} "
                                 f"mean={s['mean']:.6g}"))
            else:
                for key, v in sorted(inst.series.items()):
                    rows.append((name, _label_str(key), f"{v:.6g}"))
        widths = [max(len(r[i]) for r in rows) for i in range(3)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
                 for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def merge_snapshots(*snaps: dict) -> dict:
    """Merge snapshot dicts (e.g. loaded from per-rank JSON files)."""
    reg = MetricsRegistry()
    for snap in snaps:
        reg.load_snapshot(snap, merge=True)
    return reg.snapshot()
