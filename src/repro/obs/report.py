"""Observed-vs-predicted cross checks: ``TraceReport``.

The paper's performance numbers come from two places that must agree —
timers (what actually ran) and the analytical model (what Section VI-D
predicts).  :class:`TraceReport` closes that loop for the reproduction:

* **pipeline** — the per-rank 1F1B stage spans the pipeline engine lays
  onto the trace are re-measured geometrically (busy time vs. makespan)
  and compared against :func:`repro.perf.pipeline_model.bubble_fraction`
  and a :func:`~repro.perf.pipeline_model.simulate_timeline` replay at the
  measured stage costs;
* **communication** — the per-(primitive, locality) byte counters the
  metrics registry accumulated are compared against the cluster's
  :class:`~repro.parallel.comm.CommStats` (they meter the same collectives
  and must agree exactly) and, optionally, against analytical per-
  primitive predictions (``M = b·s·h/SP/WP``-style formulas).

Every check appends a structured result, so one report renders both as a
human-readable text block and as machine-readable JSON for benchmark
artifacts.
"""

from __future__ import annotations

import json

from .metrics import MetricsRegistry
from .profile import get_tracer, metrics
from .trace import Tracer

__all__ = ["TraceReport"]


class TraceReport:
    """Aggregates cross-checks over one traced run."""

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None):
        self.tracer = tracer if tracer is not None else get_tracer()
        self.registry = registry if registry is not None else metrics()
        if self.tracer is None:
            raise ValueError("no tracer: pass one or obs.enable() first")
        self.checks: list[dict] = []

    # -- pipeline bubble ---------------------------------------------------
    def pipeline_check(self, pp: int, n_micro: int, schedule: str = "1f1b",
                       category: str = "pp-1f1b",
                       track_prefix: str | None = None,
                       tol_simulated: float = 0.02,
                       tol_closed_form: float = 0.2) -> dict:
        """Observed bubble fraction (from the trace geometry) vs. the perf
        model's closed form and a timeline replay at measured stage costs.

        The closed form assumes uniform stages with ``t_bwd = 2 t_fwd``;
        real stages are not uniform (I/O stages are thinner than Swin
        stages), hence the looser ``tol_closed_form``.
        """
        from ..perf.pipeline_model import (bubble_fraction, schedule_1f1b,
                                           schedule_gpipe, simulate_timeline)
        spans = self.tracer.select(category=category,
                                   track_prefix=track_prefix)
        if not spans:
            where = f"category {category!r}"
            if track_prefix is not None:
                where += f" on tracks starting with {track_prefix!r}"
            raise ValueError(f"no spans with {where}")
        tracks: dict[str, list] = {}
        for s in spans:
            tracks.setdefault(s.track, []).append(s)
        n_tracks = len(tracks)
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        makespan = t1 - t0
        busy = sum(s.duration for s in spans)
        observed = 1.0 - busy / (n_tracks * makespan)

        predicted_closed = bubble_fraction(pp, n_micro, schedule)
        fwd = [s.duration for s in spans if s.attrs.get("phase") == "F"]
        bwd = [s.duration for s in spans if s.attrs.get("phase") == "B"]
        predicted_sim = None
        if fwd and bwd:
            maker = schedule_gpipe if schedule == "gpipe" else schedule_1f1b
            predicted_sim = simulate_timeline(
                maker(pp, n_micro), t_fwd=sum(fwd) / len(fwd),
                t_bwd=sum(bwd) / len(bwd))["bubble"]
        result = {
            "check": "pipeline_bubble",
            "pp": pp, "n_micro": n_micro, "schedule": schedule,
            "n_tracks": n_tracks, "n_spans": len(spans),
            "makespan_s": makespan,
            "observed_bubble": observed,
            "predicted_bubble_closed_form": predicted_closed,
            "predicted_bubble_simulated": predicted_sim,
            "abs_error_closed_form": abs(observed - predicted_closed),
            "abs_error_simulated": (abs(observed - predicted_sim)
                                    if predicted_sim is not None else None),
            "agrees": (abs(observed - predicted_closed) <= tol_closed_form
                       and (predicted_sim is None
                            or abs(observed - predicted_sim)
                            <= tol_simulated)),
        }
        self.checks.append(result)
        return result

    # -- communication volumes ---------------------------------------------
    def comm_check(self, stats, predicted: dict[str, float] | None = None,
                   rel_tol: float = 0.05) -> dict:
        """Registry byte counters vs. ``CommStats``; optionally vs. an
        analytical prediction ``{primitive: bytes}`` (e.g. from
        :class:`repro.perf.comm_model.CommModel` or
        ``SwipeEngine.attention_alltoall_bytes``).
        """
        if self.registry is None:
            raise ValueError("no metrics registry active")
        counter = self.registry.counter("comm.bytes")
        per_key = {}
        agrees = True
        for (primitive, locality), expected in sorted(stats.bytes.items()):
            observed = counter.value(primitive=primitive, locality=locality)
            match = observed == expected
            agrees = agrees and match
            per_key[f"{primitive}/{locality}"] = {
                "registry_bytes": observed, "commstats_bytes": expected,
                "match": match}
        analytical = None
        if predicted is not None:
            analytical = {}
            for primitive, expected in sorted(predicted.items()):
                observed = stats.total_bytes(primitive)
                err = (abs(observed - expected) / expected
                       if expected else float(observed != 0))
                within = err <= rel_tol
                agrees = agrees and within
                analytical[primitive] = {
                    "observed_bytes": observed,
                    "predicted_bytes": expected,
                    "rel_error": err, "within_tolerance": within}
        result = {"check": "comm_bytes",
                  "registry_vs_commstats": per_key,
                  "analytical": analytical, "agrees": agrees}
        self.checks.append(result)
        return result

    # -- fault accounting ----------------------------------------------------
    def resilience_check(self, injector) -> dict:
        """Every fault the injector dealt must be *observed* somewhere.

        Reconciles :attr:`FaultInjector.injected` against what the layers
        booked: transient flips/drops against ``comm.faults_detected``,
        stragglers against the ``comm.straggler_s`` histogram, fail-stops
        against the supervisor's ``resilience.dead_ranks`` counter.  Spans
        of category ``resilience`` are counted too — a silent fault (dealt
        but never detected) fails the check.
        """
        if self.registry is None:
            raise ValueError("no metrics registry active")
        injected = dict(injector.injected)
        detected = self.registry.counter("comm.faults_detected")
        straggles = self.registry.histogram("comm.straggler_s")
        per_kind = {}
        agrees = True
        for kind in ("flip", "drop"):
            dealt = injected.get(kind, 0)
            seen = detected.total(kind=kind)
            match = seen == dealt
            agrees = agrees and match
            per_kind[kind] = {"injected": dealt, "detected": seen,
                              "match": match}
        dealt = injected.get("straggler", 0)
        seen = sum(cell["count"] for cell in straggles.series.values())
        per_kind["straggler"] = {"injected": dealt, "detected": seen,
                                 "match": seen == dealt}
        agrees = agrees and seen == dealt
        dealt = injected.get("failstop", 0)
        handled = self.registry.counter("resilience.dead_ranks").total()
        per_kind["failstop"] = {"injected": dealt, "handled": handled,
                                "match": handled == dealt}
        agrees = agrees and handled == dealt
        n_spans = len(self.tracer.select(category="resilience"))
        result = {"check": "resilience_faults", "per_kind": per_kind,
                  "resilience_spans": n_spans, "agrees": agrees}
        self.checks.append(result)
        return result

    def sdc_check(self, injector) -> dict:
        """Every *compute-domain* corruption dealt must be detected — and
        every detection must have closed with a recovery.

        The silent-data-corruption analogue of :meth:`resilience_check`:
        injected GEMM flips (``sdc_gemm``) and state flips (``sdc_weight``
        / ``sdc_opt``) reconcile against ``resilience.sdc_detected`` (the
        ABFT checksums and the guarded step's CRC audit), and poisoned
        forecasts (``sdc_forecast``) against
        ``serve.forecasts_quarantined`` (the physical guardrails).  The
        recovery loop must also close: the guarded trainer books one
        ``train.step_retries`` rollback per compute/state detection, so a
        detection that never rolled back — detected but *not* healed —
        fails the check.
        """
        if self.registry is None:
            raise ValueError("no metrics registry active")
        injected = dict(injector.injected)
        detected = self.registry.counter("resilience.sdc_detected")
        per_kind = {}
        agrees = True
        for kind in ("sdc_gemm", "sdc_weight", "sdc_opt"):
            dealt = injected.get(kind, 0)
            seen = detected.total(kind=kind)
            match = seen == dealt
            agrees = agrees and match
            per_kind[kind] = {"injected": dealt, "detected": seen,
                              "match": match}
        dealt = injected.get("sdc_forecast", 0)
        quarantined = self.registry.counter(
            "serve.forecasts_quarantined").total()
        per_kind["sdc_forecast"] = {"injected": dealt,
                                    "detected": quarantined,
                                    "match": quarantined == dealt}
        agrees = agrees and quarantined == dealt
        retries = self.registry.counter("train.step_retries")
        recovered = {
            "step_retries": {cause: retries.total(cause=cause)
                             for cause in ("gemm", "weight", "optimizer")},
            "guardrail_reruns": self.registry.counter(
                "serve.guardrail_reruns").total(),
            "escalations": self.registry.counter(
                "train.guard_escalations").total(),
        }
        compute_detections = sum(per_kind[k]["detected"]
                                 for k in ("sdc_gemm", "sdc_weight",
                                           "sdc_opt"))
        recovery_closed = (sum(recovered["step_retries"].values())
                           == compute_detections)
        agrees = agrees and recovery_closed
        n_spans = len(self.tracer.select(category="resilience"))
        result = {"check": "sdc_faults", "per_kind": per_kind,
                  "recovered": recovered,
                  "recovery_closed": recovery_closed,
                  "resilience_spans": n_spans, "agrees": agrees}
        self.checks.append(result)
        return result

    # -- serving accounting --------------------------------------------------
    def serve_check(self, service) -> dict:
        """Every request the service admitted must be answered somewhere.

        Reconciles a :class:`~repro.serve.ForecastService`'s request tally
        against the ``serve.requests`` lifecycle counter and against the
        conservation identities of the serving loop: ``submitted =
        accepted + rejected`` and ``accepted = completed + timeout +
        failed``.  A request that was admitted but never answered (lost in
        the queue, dropped by a failover) breaks the identity and fails
        the check — the serving analogue of a silent fault in
        :meth:`resilience_check`.
        """
        if self.registry is None:
            raise ValueError("no metrics registry active")
        counter = self.registry.counter("serve.requests")
        tally = dict(service.tally)
        per_event = {}
        agrees = True
        for event in ("submitted", "accepted", "rejected",
                      "completed", "timeout", "failed"):
            tallied = tally.get(event, 0)
            booked = counter.total(event=event)
            match = booked == tallied
            agrees = agrees and match
            per_event[event] = {"tally": tallied, "counter": booked,
                                "match": match}
        conservation = {
            "submitted_eq_accepted_plus_rejected":
                tally["submitted"] == tally["accepted"] + tally["rejected"],
            "accepted_eq_completed_plus_timeout_plus_failed":
                tally["accepted"] == (tally["completed"] + tally["timeout"]
                                      + tally["failed"]),
        }
        agrees = agrees and all(conservation.values())
        n_spans = len(self.tracer.select(category="serve"))
        result = {"check": "serve_requests", "per_event": per_event,
                  "conservation": conservation, "serve_spans": n_spans,
                  "cache": service.cache.stats(), "agrees": agrees}
        self.checks.append(result)
        return result

    # -- deployment accounting -----------------------------------------------
    def deploy_check(self, service, controller) -> dict:
        """A rolling version swap must lose nothing and land somewhere
        definite.

        Three families of identities over a canary rollout driven by a
        :class:`~repro.serve.DeploymentController`:

        * **per-version request conservation** — for every version that
          appeared in the lifecycle counters, ``accepted + reassigned_in
          - reassigned_out = completed + timeout + failed``.  A request
          admitted under the candidate and answered under the incumbent
          after a rollback is *moved*, not lost; a request answered twice
          breaks the identity from the other side.  Summed over versions
          this must also equal the service tally, so no response escaped
          version accounting.
        * **controller ledger vs metrics** — the controller's transition
          list and shadow count must match the ``deploy.transitions`` /
          ``deploy.shadows`` counters exactly (the hook path booked every
          decision it made).
        * **terminal digest** — after a rollback the active binding's
          weights digest equals the incumbent digest recorded at
          controller construction (restored *exactly*, not approximately)
          and the candidate is unloaded; after a promotion it equals the
          candidate digest.  When a registry is attached, its notion of
          the live/rolled-back version must agree.
        """
        if self.registry is None:
            raise ValueError("no metrics registry active")
        counter = self.registry.counter("serve.requests")
        moved = self.registry.counter("serve.requests_reassigned")
        versions = sorted({dict(key)["version"]
                           for key in counter.series
                           if "version" in dict(key)})
        agrees = True
        per_version = {}
        sums = {"accepted": 0.0, "answered": 0.0}
        for v in versions:
            accepted = counter.total(event="accepted", version=v)
            answered = {e: counter.total(event=e, version=v)
                        for e in ("completed", "timeout", "failed")}
            moved_in = moved.total(dst=v)
            moved_out = moved.total(src=v)
            conserved = (accepted + moved_in - moved_out
                         == sum(answered.values()))
            agrees = agrees and conserved
            sums["accepted"] += accepted
            sums["answered"] += sum(answered.values())
            per_version[v] = {"accepted": accepted, **answered,
                              "reassigned_in": moved_in,
                              "reassigned_out": moved_out,
                              "conserved": conserved}
        tally = dict(service.tally)
        covered = (sums["accepted"] == tally["accepted"]
                   and sums["answered"] == tally["completed"]
                   + tally["timeout"] + tally["failed"])
        agrees = agrees and covered

        transitions = self.registry.counter("deploy.transitions")
        by_kind: dict[str, int] = {}
        for t in controller.transitions:
            by_kind[t["kind"]] = by_kind.get(t["kind"], 0) + 1
        ledger = {
            "transitions_match":
                transitions.total() == len(controller.transitions)
                and all(transitions.total(kind=k) == n
                        for k, n in by_kind.items()),
            "shadows_match":
                self.registry.counter("deploy.shadows").total()
                == controller.counts["shadows"],
            "reassigned_match":
                moved.total() == controller.counts["reassigned"],
        }
        agrees = agrees and all(ledger.values())

        active = service.bindings[service.active_version]
        terminal = {"state": controller.state,
                    "active_version": service.active_version,
                    "active_digest": active.weights_digest[:12]}
        if controller.state == "rolled_back":
            terminal["incumbent_restored"] = (
                service.active_version == controller.incumbent
                and active.weights_digest == controller.incumbent_digest)
            terminal["candidate_unloaded"] = \
                controller.candidate not in service.bindings
            agrees = agrees and terminal["incumbent_restored"] \
                and terminal["candidate_unloaded"]
            if controller.registry is not None:
                terminal["registry_agrees"] = (
                    controller.registry.get(controller.candidate).status
                    == "rolled_back"
                    and controller.registry.live() != controller.candidate)
                agrees = agrees and terminal["registry_agrees"]
        elif controller.state == "promoted":
            terminal["candidate_live"] = (
                service.active_version == controller.candidate
                and active.weights_digest == controller.candidate_digest)
            agrees = agrees and terminal["candidate_live"]
            if controller.registry is not None:
                terminal["registry_agrees"] = (
                    controller.registry.live() == controller.candidate)
                agrees = agrees and terminal["registry_agrees"]
        result = {"check": "deploy", "per_version": per_version,
                  "tally_covered": covered, "ledger": ledger,
                  "terminal": terminal,
                  "counts": dict(controller.counts), "agrees": agrees}
        self.checks.append(result)
        return result

    # -- alert fidelity ------------------------------------------------------
    def health_check(self, monitor, injector=None) -> dict:
        """Fired alerts must reconcile against injected fault classes.

        Runs the monitor's pull detectors over this report's registry,
        then checks the two directions of alert fidelity against
        :data:`~repro.obs.health.FAULT_ALERT_KINDS`:

        * **coverage** — every fault class the injector dealt at least
          once has its alert kind fired (a chaos run with silent fault
          classes fails);
        * **no false positives** — every fault class the injector never
          dealt (all of them, when ``injector`` is ``None``: a clean
          run) has its alert kind absent.

        Detectors outside the fault mapping (loss plateau, SLO burn, …)
        are deliberately out of scope — they alert on organic behaviour,
        not injections.
        """
        from .health import FAULT_ALERT_KINDS
        if self.registry is None:
            raise ValueError("no metrics registry active")
        monitor.check_faults(self.registry)
        fired = monitor.alerts.kinds()
        injected = dict(injector.injected) if injector is not None else {}
        per_fault = {}
        agrees = True
        for fault, kind in sorted(FAULT_ALERT_KINDS.items()):
            dealt = injected.get(fault, 0)
            alerted = kind in fired
            match = alerted if dealt > 0 else not alerted
            agrees = agrees and match
            per_fault[fault] = {"injected": dealt, "alert_kind": kind,
                                "alerted": alerted, "match": match}
        result = {"check": "health_alerts", "per_fault": per_fault,
                  "alert_kinds_fired": sorted(fired),
                  "alerts_total": len(monitor.alerts.alerts),
                  "agrees": agrees}
        self.checks.append(result)
        return result

    # -- autotuned layout --------------------------------------------------
    def autotune_check(self, plan, topology=None, config=None,
                       machine=None) -> dict:
        """The run must have executed the plan, and the plan must be sound.

        Two directions:

        * **executed = planned** — ``topology`` (the engine's live grid,
          when given) must be exactly the plan's chosen layout; a run
          that silently fell back to a hardcoded grid fails here;
        * **pruning soundness** — the planner's recorded
          infeasible-candidate examples are re-checked against a fresh
          enumeration for the same inputs: none of them may appear in
          today's feasible set (a pruned layout that would actually fit
          means the pruning constraints drifted from the cost model),
          and the chosen layout must still be feasible.

        ``config``/``machine`` default to resolving the plan's names
        (custom configs must be passed explicitly).
        """
        from ..parallel import autotune as _autotune
        config = config if config is not None else (
            _autotune.resolve_config(plan.config_name))
        machine = machine if machine is not None else (
            _autotune.resolve_machine(plan.machine_name))
        feasible, _, _ = _autotune.enumerate_candidates(
            config, machine, plan.world_size, plan.gbs,
            pipeline=plan.pipeline, micro_batches=plan.micro_batches,
            schedule=plan.schedule)
        feasible_keys = {(c.dp, c.pp, tuple(c.wp_grid), c.sp, c.micro_batch)
                         for c in feasible}
        chosen = plan.chosen
        chosen_feasible = (chosen.dp, chosen.pp, tuple(chosen.wp_grid),
                           chosen.sp, chosen.micro_batch) in feasible_keys
        topology_matches = None
        if topology is not None:
            topology_matches = (
                topology.dp == chosen.dp and topology.pp == chosen.pp
                and tuple(topology.wp_grid) == tuple(chosen.wp_grid)
                and topology.sp == chosen.sp)
        violations = []
        for rec in plan.pruned:
            # Each prune reason rules out an axis combination for *every*
            # refinement of it, so the recheck matches at that granularity
            # (an SP rejected for head divisibility must not appear on any
            # feasible candidate at all, etc.).
            reason, wp = rec["reason"], tuple(rec["wp_grid"])
            if reason == "sequence":
                hit = any(c.sp == rec["sp"] for c in feasible)
            elif reason == "windows":
                hit = any(tuple(c.wp_grid) == wp for c in feasible)
            elif reason == "ranks":
                hit = any(c.dp == rec["dp"] and tuple(c.wp_grid) == wp
                          and c.sp == rec["sp"] for c in feasible)
            elif reason == "batch":
                hit = any(c.dp == rec["dp"]
                          and c.micro_batch == rec["micro_batch"]
                          for c in feasible)
            else:  # memory: the exact candidate
                hit = (rec["dp"], rec["pp"], wp, rec["sp"],
                       rec["micro_batch"]) in feasible_keys
            if hit:
                violations.append(rec)
        agrees = (chosen_feasible and not violations
                  and topology_matches is not False)
        result = {"check": "autotune_plan",
                  "layout": chosen.layout_key,
                  "topology_matches": topology_matches,
                  "chosen_feasible": chosen_feasible,
                  "n_feasible": len(feasible),
                  "pruned_rechecked": len(plan.pruned),
                  "pruned_violations": violations,
                  "agrees": agrees}
        self.checks.append(result)
        return result

    # -- rendering ---------------------------------------------------------
    def to_dict(self) -> dict:
        out = {"checks": self.checks,
               "span_summary": self.tracer.summary()}
        if self.registry is not None:
            out["metrics"] = self.registry.snapshot()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable report block."""
        lines = ["TraceReport"]
        for c in self.checks:
            if c["check"] == "pipeline_bubble":
                sim = c["predicted_bubble_simulated"]
                lines.append(
                    f"  pipeline bubble (PP={c['pp']}, M={c['n_micro']}, "
                    f"{c['schedule']}): observed {c['observed_bubble']:.4f}"
                    f" | closed-form {c['predicted_bubble_closed_form']:.4f}"
                    + (f" | simulated {sim:.4f}" if sim is not None else "")
                    + f" | {'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "resilience_faults":
                parts = []
                for kind, r in c["per_kind"].items():
                    seen = r.get("detected", r.get("handled"))
                    parts.append(f"{kind} {r['injected']}/{seen}")
                lines.append(
                    f"  resilience faults (injected/observed): "
                    f"{', '.join(parts)} | {c['resilience_spans']} spans | "
                    f"{'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "sdc_faults":
                parts = [f"{kind} {r['injected']}/{r['detected']}"
                         for kind, r in c["per_kind"].items()]
                reruns = c["recovered"]["guardrail_reruns"]
                lines.append(
                    f"  sdc faults (injected/detected): "
                    f"{', '.join(parts)} | retries "
                    f"{sum(c['recovered']['step_retries'].values()):g}, "
                    f"reruns {reruns:g} | recovery "
                    f"{'closed' if c['recovery_closed'] else 'OPEN'} | "
                    f"{'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "serve_requests":
                parts = [f"{event} {r['tally']}"
                         for event, r in c["per_event"].items()]
                lines.append(
                    f"  serve requests (tally vs counters): "
                    f"{', '.join(parts)} | cache hit rate "
                    f"{c['cache']['hit_rate']:.2f} | "
                    f"{c['serve_spans']} spans | "
                    f"{'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "deploy":
                parts = [
                    f"{v} {int(r['accepted']):d}acc"
                    f"{'' if r['conserved'] else '!'}"
                    for v, r in c["per_version"].items()]
                t = c["terminal"]
                lines.append(
                    f"  deploy ({t['state']}): {', '.join(parts)} | "
                    f"active {t['active_version']}@{t['active_digest']} | "
                    f"ledger {'OK' if all(c['ledger'].values()) else 'BAD'}"
                    f" | {'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "health_alerts":
                parts = [
                    f"{fault} {r['injected']}/"
                    f"{'fired' if r['alerted'] else 'quiet'}"
                    for fault, r in c["per_fault"].items()]
                lines.append(
                    f"  health alerts (injected/alert): "
                    f"{', '.join(parts)} | "
                    f"{c['alerts_total']} alert(s) | "
                    f"{'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "autotune_plan":
                topo = c["topology_matches"]
                topo_s = ("-" if topo is None
                          else "match" if topo else "DIVERGED")
                lines.append(
                    f"  autotune plan {c['layout']}: executed topology "
                    f"{topo_s} | chosen "
                    f"{'feasible' if c['chosen_feasible'] else 'INFEASIBLE'}"
                    f" | {c['pruned_rechecked']} pruned rechecked, "
                    f"{len(c['pruned_violations'])} violation(s) | "
                    f"{'OK' if c['agrees'] else 'MISMATCH'}")
            elif c["check"] == "comm_bytes":
                n = len(c["registry_vs_commstats"])
                lines.append(f"  comm bytes: {n} (primitive, locality) "
                             f"series vs CommStats | "
                             f"{'OK' if c['agrees'] else 'MISMATCH'}")
                if c["analytical"]:
                    for prim, a in c["analytical"].items():
                        lines.append(
                            f"    {prim}: observed {a['observed_bytes']:,} B"
                            f" vs predicted {int(a['predicted_bytes']):,} B"
                            f" (rel err {a['rel_error']:.3f})")
        lines.append("  spans:")
        lines.extend("    " + line
                     for line in self.tracer.summary_table().splitlines())
        return "\n".join(lines)
