"""Exporters: Prometheus text format, JSONL events, JSON snapshots.

The registry's native interchange format is its JSON snapshot
(:meth:`~repro.obs.MetricsRegistry.snapshot`); this module renders the
same data in the formats the outside world scrapes and ships:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` plus one sample per labeled series; counters
  get the conventional ``_total`` suffix, histograms expand into
  cumulative ``_bucket{le=...}`` samples with ``_sum``/``_count``).
  Output is deterministic: instruments sort by name, series by label
  set, so golden tests can pin the exact text;
* :func:`events_jsonl` — flight-recorder events (or any ``to_dict``-able
  records) as one JSON object per line;
* the ``write_*`` variants — the same renders written **atomically**
  (tmp + fsync + rename via the :mod:`repro.resilience` helper), so a
  crash mid-export never leaves a truncated artifact where a good one
  used to be.

Metric names keep their canonical dotted spelling everywhere else in the
repo (``train.loss``); only this exporter flattens dots to underscores,
because the Prometheus grammar requires it.
"""

from __future__ import annotations

import json
import math

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_text", "write_prometheus", "events_jsonl",
           "write_events_jsonl", "write_metrics_json"]


def _sanitize(name: str) -> str:
    """Dotted metric name → Prometheus-legal name."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return "_" + out if out[:1].isdigit() else out


def _escape(value) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(key, extra: list[tuple[str, str]] | None = None) -> str:
    pairs = [(k, str(v)) for k, v in key] + list(extra or [])
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in pairs) + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the text exposition format."""
    lines: list[str] = []
    for name in sorted(registry.instruments):
        inst = registry.instruments[name]
        pname = _sanitize(name)
        if inst.help:
            lines.append(f"# HELP {pname} {_escape(inst.help)}")
        if isinstance(inst, Gauge):  # Gauge subclasses Counter: check first
            lines.append(f"# TYPE {pname} gauge")
            for key in sorted(inst.series):
                lines.append(f"{pname}{_labels(key)} "
                             f"{_fmt(inst.series[key])}")
        elif isinstance(inst, Counter):
            lines.append(f"# TYPE {pname} counter")
            for key in sorted(inst.series):
                lines.append(f"{pname}_total{_labels(key)} "
                             f"{_fmt(inst.series[key])}")
        elif isinstance(inst, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            for key in sorted(inst.series):
                cell = inst.series[key]
                cumulative = 0
                for le, count in zip(inst.buckets,
                                     cell["bucket_counts"]):
                    cumulative += count
                    lines.append(
                        f"{pname}_bucket"
                        f"{_labels(key, [('le', _fmt(le))])} "
                        f"{cumulative}")
                cumulative += cell["bucket_counts"][-1]
                lines.append(f"{pname}_bucket"
                             f"{_labels(key, [('le', '+Inf')])} "
                             f"{cumulative}")
                lines.append(f"{pname}_sum{_labels(key)} "
                             f"{_fmt(cell['sum'])}")
                lines.append(f"{pname}_count{_labels(key)} "
                             f"{cell['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def events_jsonl(events) -> str:
    """Events (anything with ``to_dict``) as one JSON object per line."""
    return "".join(json.dumps(e.to_dict()) + "\n" for e in events)


# -- atomic writers ------------------------------------------------------------
def _atomic(path: str, text: str) -> str:
    # Lazy import: repro.resilience transitively imports the obs hooks.
    from ..resilience.atomic import atomic_write
    return atomic_write(path, text)


def write_prometheus(registry: MetricsRegistry, path: str) -> str:
    """Atomically write :func:`prometheus_text`; returns ``path``."""
    return _atomic(path, prometheus_text(registry))


def write_events_jsonl(events, path: str) -> str:
    """Atomically write :func:`events_jsonl`; returns ``path``."""
    return _atomic(path, events_jsonl(events))


def write_metrics_json(registry: MetricsRegistry, path: str,
                       indent: int | None = 2) -> str:
    """Atomically write the registry's JSON snapshot; returns ``path``."""
    return _atomic(path, registry.to_json(indent=indent))
