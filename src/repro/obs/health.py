"""Online health detection: rolling-window anomaly detectors over the
telemetry the rest of :mod:`repro.obs` already collects.

The passive layer (metrics, spans, flight events) answers "what
happened"; the :class:`HealthMonitor` answers "is the run healthy *right
now*" — the difference between a skillful exascale allocation and a
wasted one is noticing the loss spike, the straggling rank, or the SLO
burn while the job is still running.  Detectors:

* **loss** — NaN/Inf (critical), spikes via a robust z-score (median +
  MAD over a rolling window), and plateaus via two EWMAs (fast vs slow:
  when the fast average stops improving on the slow one, training has
  stalled);
* **gradient norm** — explosion relative to the rolling median;
* **per-rank stragglers** — busy-time imbalance across tracer span
  tracks (a rank whose measured stage time sits z MADs above its peers);
* **pipeline bubble** — observed bubble fraction from trace geometry vs
  the :mod:`repro.perf` closed-form prediction (a regression means the
  schedule is losing real overlap, not that the model was wrong);
* **plan caches** — hit-rate collapse on the :mod:`repro.kernels` plan
  caches (a serving process that stops hitting its plans is rebuilding
  gathers on the hot path);
* **serve queues** — per-tier depth saturation against the admission
  caps;
* **SLO burn rate** — multi-window (fast/slow) error-budget burn per
  tier: page only when *both* the recent window and the long window burn
  the budget, the standard defence against paging on blips;
* **fault classes** — transient comm faults, stragglers, and fail-stops
  booked by the resilience layer, mapped 1:1 onto alert kinds so
  :meth:`repro.obs.TraceReport.health_check` can reconcile fired alerts
  against a :class:`~repro.resilience.FaultPlan`'s injected classes.

Everything funnels through one :class:`~repro.obs.alerts.AlertManager`
(dedup + cooldown + routing into flight recorder and metrics).  The
monitor itself is cheap — O(window) arithmetic per observation — and
only runs when explicitly enabled (see
:func:`repro.obs.profile.enable_health`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from .alerts import AlertManager

__all__ = ["HealthConfig", "HealthMonitor", "FAULT_ALERT_KINDS"]

#: Injected fault class (``FaultInjector.injected`` keys) → the alert
#: kind the matching detector fires.  ``TraceReport.health_check``
#: reconciles chaos runs against exactly this mapping.
FAULT_ALERT_KINDS = {
    "flip": "comm.bitflip",
    "drop": "comm.drop",
    "straggler": "comm.straggler",
    "failstop": "resilience.rank_failure",
    "sdc_gemm": "compute.gemm_sdc",
    "sdc_weight": "state.weight_sdc",
    "sdc_opt": "state.optimizer_sdc",
    "sdc_forecast": "serve.forecast_sdc",
}

#: Scale factor making the median absolute deviation a consistent
#: estimator of the standard deviation for normal data.
_MAD_TO_SIGMA = 1.4826


def _median(values) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return float(s[mid]) if n % 2 else (s[mid - 1] + s[mid]) / 2.0


def _robust_z(value: float, window) -> float:
    """Robust z-score of ``value`` against ``window`` (median + MAD)."""
    med = _median(window)
    mad = _median([abs(v - med) for v in window])
    scale = max(mad * _MAD_TO_SIGMA, 1e-12)
    return (value - med) / scale


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for every detector (defaults sized for toy runs)."""

    # loss detectors
    loss_window: int = 32          # rolling window for the spike z-score
    loss_spike_z: float = 8.0      # robust z above which a loss is a spike
    ewma_fast: float = 0.3         # fast EWMA coefficient
    ewma_slow: float = 0.03        # slow EWMA coefficient
    plateau_steps: int = 64        # min observations before plateau fires
    plateau_margin: float = 1e-3   # fast must undercut slow by this frac
    # gradient detector
    grad_window: int = 32
    grad_explosion_z: float = 10.0
    # per-rank straggler detector (tracer span tracks)
    straggler_z: float = 4.0
    straggler_min_tracks: int = 3
    # pipeline bubble regression
    bubble_margin: float = 0.10    # observed may exceed predicted by this
    # plan caches
    plan_cache_min_lookups: int = 64
    plan_cache_min_hit_rate: float = 0.5
    # forecast cache (serving tier)
    forecast_cache_min_lookups: int = 64
    forecast_cache_min_hit_rate: float = 0.3
    # serve queues
    queue_saturation_frac: float = 0.9
    # autotuned-plan skew: observed step time may exceed prediction by
    # this fraction before the plan is considered stale
    plan_skew_frac: float = 0.25
    # SLO burn rate (multi-window)
    slo_error_budget: float = 0.05  # tolerated miss fraction
    burn_fast_window: int = 16
    burn_slow_window: int = 128
    burn_fast_threshold: float = 2.0   # fast window burns 2x budget
    burn_slow_threshold: float = 1.0   # and the slow window is over budget
    # alerting
    cooldown_s: float = 60.0


class HealthMonitor:
    """Runs the detector suite; fires through one :class:`AlertManager`.

    Online observations (``observe_*``) are called from instrumented hot
    paths while health is enabled; pull checks (``check_*``) inspect the
    registry/tracer on demand (dashboard render, end of run, CI).
    """

    def __init__(self, config: HealthConfig = HealthConfig(),
                 alerts: AlertManager | None = None, clock=None):
        self.config = config
        self.alerts = alerts if alerts is not None else AlertManager(
            cooldown_s=config.cooldown_s, clock=clock)
        self._loss_window: deque[float] = deque(maxlen=config.loss_window)
        self._grad_window: deque[float] = deque(maxlen=config.grad_window)
        self._ewma_fast: float | None = None
        self._ewma_slow: float | None = None
        self._loss_observed = 0
        # per-tier (fast, slow) deques of SLO miss booleans
        self._burn: dict[str, tuple[deque, deque]] = {}
        self.observations = 0

    # -- online: training -------------------------------------------------
    def observe_step(self, step: int, loss: float,
                     grad_norm: float | None = None) -> None:
        """Feed one training step's loss (and optionally gradient norm)."""
        cfg = self.config
        self.observations += 1
        if not math.isfinite(loss):
            self.alerts.fire(
                "train.loss_nonfinite", "critical", "train",
                f"non-finite loss {loss!r} at step {step}", step=str(step))
            return  # a NaN would poison the windows
        if len(self._loss_window) == cfg.loss_window:
            z = _robust_z(loss, self._loss_window)
            if z > cfg.loss_spike_z:
                self.alerts.fire(
                    "train.loss_spike", "warning", "train",
                    f"loss {loss:.6g} is {z:.1f} MADs above the rolling "
                    f"median at step {step}", data={"z": z, "loss": loss})
        self._loss_window.append(loss)
        self._loss_observed += 1
        if self._ewma_fast is None:
            self._ewma_fast = self._ewma_slow = loss
        else:
            self._ewma_fast += cfg.ewma_fast * (loss - self._ewma_fast)
            self._ewma_slow += cfg.ewma_slow * (loss - self._ewma_slow)
            if (self._loss_observed >= cfg.plateau_steps
                    and self._ewma_fast > self._ewma_slow
                    * (1.0 - cfg.plateau_margin)):
                self.alerts.fire(
                    "train.loss_plateau", "info", "train",
                    f"fast EWMA {self._ewma_fast:.6g} no longer improving "
                    f"on slow EWMA {self._ewma_slow:.6g}",
                    data={"fast": self._ewma_fast, "slow": self._ewma_slow})
        if grad_norm is not None:
            if not math.isfinite(grad_norm):
                self.alerts.fire(
                    "train.grad_explosion", "critical", "train",
                    f"non-finite gradient norm at step {step}")
            elif len(self._grad_window) == cfg.grad_window:
                z = _robust_z(grad_norm, self._grad_window)
                if z > cfg.grad_explosion_z:
                    self.alerts.fire(
                        "train.grad_explosion", "critical", "train",
                        f"gradient norm {grad_norm:.6g} is {z:.1f} MADs "
                        f"above the rolling median at step {step}",
                        data={"z": z, "grad_norm": grad_norm})
            if math.isfinite(grad_norm):
                self._grad_window.append(grad_norm)

    # -- online: serving --------------------------------------------------
    def observe_latency(self, tier: str, latency_s: float,
                        slo_s: float) -> None:
        """Feed one completed request's latency into the burn windows."""
        cfg = self.config
        self.observations += 1
        fast, slow = self._burn.setdefault(
            tier, (deque(maxlen=cfg.burn_fast_window),
                   deque(maxlen=cfg.burn_slow_window)))
        miss = latency_s > slo_s
        fast.append(miss)
        slow.append(miss)
        if len(fast) < cfg.burn_fast_window:
            return
        budget = max(cfg.slo_error_budget, 1e-9)
        burn_fast = (sum(fast) / len(fast)) / budget
        burn_slow = (sum(slow) / len(slow)) / budget
        if burn_fast >= cfg.burn_fast_threshold \
                and burn_slow >= cfg.burn_slow_threshold:
            self.alerts.fire(
                "serve.slo_burn", "critical", "serve",
                f"tier {tier!r} burning {burn_fast:.1f}x its error budget "
                f"(slow window {burn_slow:.1f}x)", tier=tier,
                data={"burn_fast": burn_fast, "burn_slow": burn_slow})

    def observe_queue_depth(self, tier: str, depth: int, cap: int) -> None:
        """Feed one admission-time queue depth against the tier cap."""
        self.observations += 1
        if cap > 0 and depth >= self.config.queue_saturation_frac * cap:
            self.alerts.fire(
                "serve.queue_saturation", "warning", "serve",
                f"tier {tier!r} queue at {depth}/{cap}", tier=tier,
                data={"depth": depth, "cap": cap})

    # -- pull: fault classes ----------------------------------------------
    def check_faults(self, registry) -> dict:
        """Map the resilience layer's bookkeeping onto fault-class alerts.

        Each class fires iff the corresponding meter is non-zero, so a
        fault-free run fires none of these kinds — the property
        :meth:`repro.obs.TraceReport.health_check` asserts.
        """
        sdc = registry.counter("resilience.sdc_detected")
        counts = {
            "flip": registry.counter("comm.faults_detected").total(
                kind="flip"),
            "drop": registry.counter("comm.faults_detected").total(
                kind="drop"),
            "straggler": sum(
                cell["count"] for cell in registry.histogram(
                    "comm.straggler_s").series.values()),
            "failstop": registry.counter("resilience.dead_ranks").total(),
            "sdc_gemm": sdc.total(kind="sdc_gemm"),
            "sdc_weight": sdc.total(kind="sdc_weight"),
            "sdc_opt": sdc.total(kind="sdc_opt"),
            "sdc_forecast": registry.counter(
                "serve.forecasts_quarantined").total(),
        }
        severities = {"flip": "warning", "drop": "warning",
                      "straggler": "warning", "failstop": "critical",
                      "sdc_gemm": "critical", "sdc_weight": "critical",
                      "sdc_opt": "critical", "sdc_forecast": "critical"}
        subsystems = {"failstop": "resilience", "sdc_gemm": "kernels",
                      "sdc_weight": "train", "sdc_opt": "train",
                      "sdc_forecast": "serve"}
        for fault, n in counts.items():
            if n > 0:
                self.alerts.fire(
                    FAULT_ALERT_KINDS[fault], severities[fault],
                    subsystems.get(fault, "comm"),
                    f"{int(n)} {fault} fault(s) observed",
                    data={"count": int(n)})
        skipped = registry.counter("train.skipped_steps").total()
        if skipped > 0:
            self.alerts.fire(
                "train.loss_nonfinite", "critical", "train",
                f"{int(skipped)} step(s) skipped by the NaN/Inf guard",
                data={"skipped_steps": int(skipped)})
        return counts

    # -- pull: per-rank stragglers from span tracks ------------------------
    def check_rank_balance(self, tracer, category: str = "pp-1f1b",
                           track_prefix: str | None = None) -> dict:
        """Busy-time imbalance across tracks: a rank sitting ``z`` robust
        deviations above its peers is a straggler."""
        cfg = self.config
        busy: dict[str, float] = {}
        for span in tracer.select(category=category,
                                  track_prefix=track_prefix):
            busy[span.track] = busy.get(span.track, 0.0) + span.duration
        if len(busy) >= cfg.straggler_min_tracks:
            values = list(busy.values())
            for track in sorted(busy):
                z = _robust_z(busy[track], values)
                if z > cfg.straggler_z:
                    self.alerts.fire(
                        "pp.rank_straggler", "warning", "parallel",
                        f"track {track!r} busy {busy[track]:.6g}s, "
                        f"{z:.1f} MADs above its peers", track=track,
                        data={"busy_s": busy[track], "z": z})
        return busy

    # -- pull: pipeline bubble vs the perf model ---------------------------
    def check_pipeline(self, tracer, pp: int, n_micro: int,
                       schedule: str = "1f1b",
                       category: str = "pp-1f1b",
                       track_prefix: str | None = None) -> dict | None:
        """Observed bubble fraction (trace geometry) vs the closed-form
        prediction; fires when the schedule loses real overlap."""
        from ..perf.pipeline_model import bubble_fraction
        spans = tracer.select(category=category, track_prefix=track_prefix)
        if not spans:
            return None
        tracks = {s.track for s in spans}
        makespan = max(s.end for s in spans) - min(s.start for s in spans)
        busy = sum(s.duration for s in spans)
        observed = 1.0 - busy / (len(tracks) * makespan)
        predicted = bubble_fraction(pp, n_micro, schedule)
        result = {"observed": observed, "predicted": predicted,
                  "margin": self.config.bubble_margin}
        if observed > predicted + self.config.bubble_margin:
            self.alerts.fire(
                "pp.bubble_regression", "warning", "parallel",
                f"observed bubble {observed:.3f} exceeds predicted "
                f"{predicted:.3f} by more than {self.config.bubble_margin}",
                data=result)
        return result

    # -- pull: kernel plan caches ------------------------------------------
    def check_plan_caches(self, stats: dict | None = None) -> dict:
        """Hit-rate collapse on the kernel plan caches."""
        if stats is None:
            from ..kernels import plan_cache_stats
            stats = plan_cache_stats()
        cfg = self.config
        rates = {}
        for name in sorted(stats):
            cache = stats[name]
            lookups = cache["hits"] + cache["misses"]
            if lookups < cfg.plan_cache_min_lookups:
                continue
            rate = cache["hits"] / lookups
            rates[name] = rate
            if rate < cfg.plan_cache_min_hit_rate:
                self.alerts.fire(
                    "kernels.plan_cache_collapse", "warning", "kernels",
                    f"plan cache {name!r} hit rate {rate:.2f} over "
                    f"{lookups} lookups", cache=name,
                    data={"hit_rate": rate, "lookups": lookups})
        return rates

    # -- pull: forecast cache ----------------------------------------------
    def check_forecast_cache(self, registry) -> dict | None:
        """Hit-rate collapse on the serving forecast cache.

        The cache is content-addressed by weights digest, so a model
        version swap silently invalidates every incumbent entry — a
        rollout that shifts traffic to a cold version shows up here as a
        hit-rate collapse (recompute storm) before it shows up as SLO
        burn.  Reads the ``serve.cache`` lookup counter, so it works as
        a pull detector with no handle on the service itself.
        """
        cfg = self.config
        counter = registry.counter("serve.cache")
        hits = counter.total(event="hit")
        misses = counter.total(event="miss")
        lookups = hits + misses
        if lookups < cfg.forecast_cache_min_lookups:
            return None
        rate = hits / lookups
        occupancy = registry.gauge("serve.cache_occupancy_frac").value()
        result = {"hit_rate": rate, "lookups": int(lookups),
                  "occupancy_frac": occupancy}
        if rate < cfg.forecast_cache_min_hit_rate:
            self.alerts.fire(
                "serve.cache_collapse", "warning", "serve",
                f"forecast cache hit rate {rate:.2f} over {int(lookups)} "
                f"lookups (occupancy {occupancy:.2f})", data=result)
        return result

    def check_plan_skew(self, registry) -> dict | None:
        """Measured step time drifting away from the tuned plan.

        Compares ``autotune.observed_step_s`` (set per step by a
        plan-driven trainer/supervisor) with the plan's
        ``autotune.predicted_step_s``.  A sustained overshoot beyond
        ``plan_skew_frac`` means the plan's cost model no longer
        describes the run (contention, a degraded grid, a stale
        snapshot) — the fix is a re-tune, so the alert is advisory, not
        a fault.  Returns ``None`` until both gauges have data.
        """
        cfg = self.config
        predicted = registry.gauge("autotune.predicted_step_s").value()
        observed = registry.gauge("autotune.observed_step_s").value()
        if predicted <= 0.0 or observed <= 0.0:
            return None
        skew = observed / predicted - 1.0
        result = {"predicted_s": predicted, "observed_s": observed,
                  "skew_frac": skew}
        if skew > cfg.plan_skew_frac:
            self.alerts.fire(
                "autotune.plan_skew", "warning", "autotune",
                f"observed step {observed:.4g}s is {skew:+.0%} off the "
                f"plan's {predicted:.4g}s prediction (tolerance "
                f"{cfg.plan_skew_frac:.0%}) — re-tune the layout",
                data=result)
        return result

    # -- pull: everything registry-driven ----------------------------------
    def check(self, registry=None, tracer=None) -> "HealthMonitor":
        """Run every pull detector that has data available."""
        from .profile import get_tracer, metrics
        registry = registry if registry is not None else metrics()
        tracer = tracer if tracer is not None else get_tracer()
        if registry is not None:
            self.check_faults(registry)
            self.check_forecast_cache(registry)
            self.check_plan_skew(registry)
        self.check_plan_caches()
        if tracer is not None:
            self.check_rank_balance(tracer)
        return self

    # -- reporting ---------------------------------------------------------
    def report(self) -> dict:
        """JSON-friendly state rollup."""
        return {
            "observations": self.observations,
            "ewma_fast": self._ewma_fast,
            "ewma_slow": self._ewma_slow,
            "alert_kinds": sorted(self.alerts.kinds()),
            "alerts": self.alerts.summary(),
        }
