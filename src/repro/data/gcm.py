"""A toy general-circulation model generating the synthetic reanalysis.

The paper trains on four decades of 0.25° ERA5; that archive (16 TiB) and
the exascale machine to learn from it are unavailable here, so this module
supplies the closest laptop-scale equivalent: a deterministic, chaotic,
multi-timescale Earth-system simulator on a reduced lat-lon grid.  It
preserves the *learning problem structure* AERIS addresses:

* chaotic synoptic dynamics with finite predictability — hidden Lorenz-96
  latents force advected anomaly fields, so one-step residuals have an
  irreducible stochastic component (what the diffusion ensemble must
  capture);
* advection by a seasonal jet — residuals are spatially structured and
  partially predictable from the visible state;
* a slow ocean — a recharge-discharge ENSO oscillator drives equatorial
  Pacific SST (the Niño 3.4 / spring-barrier diagnostics of Figure 7a);
* extremes — tropical cyclones with genesis/steering/intensification/decay
  (Figure 6) and persistent summer heatwaves over land (Figure 5b);
* seasonal and diurnal cycles phase-locked to the TOA solar forcing.

All evolution is deterministic given the initial seed; the state is
fork-able, which is how the perturbed-physics "IFS ENS"-like baseline
(:mod:`repro.baselines.numerical`) produces its ensemble.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from .forcings import DAYS_PER_YEAR, STEPS_PER_DAY, StaticFields, toa_solar
from .grid import LatLonGrid
from .variables import TOY_SET

__all__ = ["GcmConfig", "GcmState", "ToyGCM", "TropicalCyclone", "Heatwave"]

_DT_DAYS = 1.0 / STEPS_PER_DAY  # 6h step


@dataclass(frozen=True)
class GcmConfig:
    """Tunable constants of the toy GCM (perturbed for the NWP baseline)."""

    n_latents: int = 24            # Lorenz-96 ring size
    l96_forcing: float = 8.0       # chaos strength
    l96_dt: float = 0.06           # L96 time units per 6h step
    jet_speed: float = 28.0        # m/s midlatitude jet maximum
    easterly_speed: float = 6.0    # m/s tropical easterlies
    anomaly_wind: float = 9.0      # m/s latent-driven wind variability
    forcing_amp: float = 0.065     # latent forcing injected per step
    relax_rate: float = 0.012      # anomaly damping per step (~20 day decay)
    smooth_passes: int = 1         # hyperdiffusion strength
    enso_period_years: float = 3.7
    enso_damping: float = 0.02     # per month
    enso_coupling: float = 0.012   # latent noise into the ocean
    tc_rate_per_day: float = 0.10  # genesis rate in season
    tc_max_amplitude: float = 28.0 # hPa central pressure deficit scale
    tc_radius_deg: float = 9.0
    heatwave_rate_per_day: float = 0.035
    heatwave_amplitude: float = 7.5  # K
    heatwave_radius_deg: float = 16.0
    seed_spatial: int = 1234       # basis-pattern seed (shared across twins)


@dataclass
class TropicalCyclone:
    lat: float
    lon: float
    intensity: float   # 0..1
    age_days: float = 0.0
    hemisphere: int = 1  # +1 NH, -1 SH


@dataclass
class Heatwave:
    lat: float
    lon: float
    amplitude: float   # K at peak
    age_days: float = 0.0
    duration_days: float = 10.0


@dataclass
class GcmState:
    """Full prognostic state; deep-copyable for forecast forking."""

    step: int
    latents: np.ndarray          # (K,) Lorenz-96
    enso: np.ndarray             # (2,) [T_e anomaly (K), thermocline h]
    q: np.ndarray                # (H, W) geopotential-anomaly scalar
    theta: np.ndarray            # (H, W) thermal-anomaly scalar
    moisture: np.ndarray         # (H, W) moisture-anomaly scalar
    cyclones: list = field(default_factory=list)
    heatwaves: list = field(default_factory=list)
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))

    def clone(self) -> "GcmState":
        return copy.deepcopy(self)


def _l96_tendency(x: np.ndarray, forcing: float) -> np.ndarray:
    return ((np.roll(x, -1) - np.roll(x, 2)) * np.roll(x, 1) - x + forcing)


def _smooth(f: np.ndarray, passes: int = 1) -> np.ndarray:
    """Cheap 5-point smoother; zonally periodic, meridionally clamped."""
    for _ in range(passes):
        east = np.roll(f, 1, axis=1)
        west = np.roll(f, -1, axis=1)
        north = np.vstack([f[:1], f[:-1]])
        south = np.vstack([f[1:], f[-1:]])
        f = 0.5 * f + 0.125 * (east + west + north + south)
    return f


class ToyGCM:
    """The simulator.  One instance is bound to a grid, geography, and a
    :class:`GcmConfig`; states evolve through :meth:`step`."""

    def __init__(self, grid: LatLonGrid, static: StaticFields,
                 config: GcmConfig = GcmConfig()):
        self.grid = grid
        self.static = static
        self.config = config
        self._build_patterns()

    # -- fixed spatial structures ------------------------------------------
    def _build_patterns(self) -> None:
        cfg = self.config
        g = self.grid
        rng = np.random.default_rng(cfg.seed_spatial)
        k = cfg.n_latents
        self.basis_q = self._smooth_bases(rng, k, cutoff=3.5)
        self.basis_theta = self._smooth_bases(rng, k, cutoff=3.0)
        self.basis_m = self._smooth_bases(rng, k, cutoff=4.0)
        self.basis_u = self._smooth_bases(rng, 4, cutoff=2.0)
        self.basis_v = self._smooth_bases(rng, 4, cutoff=2.0)
        lats = g.lats
        latr = np.deg2rad(lats)
        # ENSO SST pattern: equatorial central-east Pacific blob.
        lat2 = lats[:, None]
        lon2 = g.lons[None, :]
        dlon = np.minimum(np.abs(lon2 - 210.0), 360.0 - np.abs(lon2 - 210.0))
        self.enso_pattern = (np.exp(-(lat2 / 10.0) ** 2)
                             * np.exp(-(dlon / 40.0) ** 2))
        self.coslat = np.clip(np.cos(latr), 0.2, None)[:, None]
        self.latr = latr

    def _smooth_bases(self, rng, count: int, cutoff: float) -> np.ndarray:
        from .forcings import _smooth_noise
        out = np.stack([_smooth_noise(rng, self.grid.height, self.grid.width,
                                      cutoff=cutoff) for _ in range(count)])
        return out / np.sqrt(count)

    # -- climatological background -------------------------------------------
    def _season_phase(self, step: int) -> float:
        doy = (step / STEPS_PER_DAY) % DAYS_PER_YEAR
        # Peaks at NH midsummer (doy ~202).
        return float(np.cos(2 * np.pi * (doy - 202.0) / DAYS_PER_YEAR))

    def jet(self, step: int) -> np.ndarray:
        """Zonal-mean zonal wind u(lat) (m/s) with a seasonal swing."""
        cfg = self.config
        lats = self.grid.lats
        season = self._season_phase(step)
        # Winter hemisphere jet is stronger.
        strength_nh = cfg.jet_speed * (1.0 - 0.30 * season)
        strength_sh = cfg.jet_speed * (1.0 + 0.30 * season)
        jet_nh = strength_nh * np.exp(-(((lats - 42.0) / 14.0) ** 2))
        jet_sh = strength_sh * np.exp(-(((lats + 42.0) / 14.0) ** 2))
        easterly = -cfg.easterly_speed * np.exp(-((lats / 14.0) ** 2))
        return jet_nh + jet_sh + easterly

    def climatology(self, step: int) -> dict[str, np.ndarray]:
        """Seasonal background fields (H, W) keyed by TOY variable name."""
        g = self.grid
        lats = g.lats[:, None]
        latr = np.deg2rad(lats)
        season = self._season_phase(step)
        hemis = np.tanh(lats / 25.0)
        seasonal_t = 14.0 * (np.abs(lats) / 90.0) * season * hemis
        t850 = 248.0 + 42.0 * np.cos(latr) ** 2 + seasonal_t
        sst = 271.5 + 28.5 * np.cos(latr) ** 2 + 0.5 * seasonal_t
        z500 = 5850.0 - 450.0 * np.sin(latr) ** 2 - 12.0 * seasonal_t
        mslp = (1013.0 + 7.0 * np.exp(-(((np.abs(lats) - 32.0) / 12.0) ** 2))
                - 9.0 * np.exp(-(((np.abs(lats) - 62.0) / 12.0) ** 2))
                - 4.0 * np.exp(-((lats / 10.0) ** 2)))
        q700 = 6.0 * np.exp(-((lats / 26.0) ** 2))
        ones = np.ones((g.height, g.width))
        return {"T850": t850 * ones, "SST": sst * ones, "Z500": z500 * ones,
                "MSLP": mslp * ones, "Q700": q700 * ones}

    # -- initialization -------------------------------------------------------
    def initial_state(self, seed: int = 0, spinup_steps: int = 240) -> GcmState:
        rng = np.random.default_rng(seed)
        h, w = self.grid.height, self.grid.width
        k = self.config.n_latents
        state = GcmState(
            step=0,
            latents=self.config.l96_forcing * (1.0 + 0.01 * rng.normal(size=k)),
            enso=np.array([0.8 * rng.normal(), 0.8 * rng.normal()]),
            q=np.zeros((h, w)),
            theta=np.zeros((h, w)),
            moisture=np.zeros((h, w)),
            rng=rng,
        )
        for _ in range(spinup_steps):
            self.step(state)
        return state

    # -- dynamics -------------------------------------------------------------
    def _advect(self, f: np.ndarray, u_deg: np.ndarray, v_deg: np.ndarray
                ) -> np.ndarray:
        """Semi-Lagrangian advection: sample each cell at its departure
        point (bilinear; zonally periodic, meridionally clamped)."""
        g = self.grid
        h, w = g.height, g.width
        rows = np.arange(h)[:, None] + v_deg / g.dlat     # departure row
        cols = np.arange(w)[None, :] - u_deg / g.dlon     # departure col
        rows = np.clip(rows, 0.0, h - 1.000001)
        cols = cols % w
        r0 = np.floor(rows).astype(np.int64)
        c0 = np.floor(cols).astype(np.int64)
        fr = rows - r0
        fc = cols - c0
        r1 = np.clip(r0 + 1, 0, h - 1)
        c1 = (c0 + 1) % w
        return ((1 - fr) * (1 - fc) * f[r0, c0] + (1 - fr) * fc * f[r0, c1]
                + fr * (1 - fc) * f[r1, c0] + fr * fc * f[r1, c1])

    def _winds_deg(self, state: GcmState) -> tuple[np.ndarray, np.ndarray,
                                                   np.ndarray, np.ndarray]:
        """(u, v) in m/s and in grid-degrees-per-step."""
        cfg = self.config
        latn = (state.latents - state.latents.mean()) / max(state.latents.std(), 1e-6)
        u = self.jet(state.step)[:, None] + cfg.anomaly_wind * np.tensordot(
            latn[:4], self.basis_u, axes=(0, 0))
        v = cfg.anomaly_wind * 0.6 * np.tensordot(
            latn[4:8], self.basis_v, axes=(0, 0))
        seconds = _DT_DAYS * 86400.0
        deg_per_m = 1.0 / 111_000.0
        u_deg = u * seconds * deg_per_m / self.coslat
        v_deg = v * seconds * deg_per_m
        return u, v, u_deg, v_deg

    def step(self, state: GcmState) -> GcmState:
        """Advance the state by one 6h step, in place; returns the state."""
        cfg = self.config
        # 1) Latent chaos (RK4 Lorenz-96).
        x = state.latents
        dt = cfg.l96_dt
        k1 = _l96_tendency(x, cfg.l96_forcing)
        k2 = _l96_tendency(x + 0.5 * dt * k1, cfg.l96_forcing)
        k3 = _l96_tendency(x + 0.5 * dt * k2, cfg.l96_forcing)
        k4 = _l96_tendency(x + dt * k3, cfg.l96_forcing)
        state.latents = x + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)

        # 2) ENSO recharge-discharge oscillator, excited by zero-mean chaotic
        # forcing from the fast latents (per-step increments).
        te, th = state.enso
        steps_per_year = DAYS_PER_YEAR / _DT_DAYS
        omega = 2 * np.pi / (cfg.enso_period_years * steps_per_year)
        damp = 1.0 / (2.5 * steps_per_year)  # ~2.5-year e-folding
        latn0 = (state.latents[0] - state.latents.mean()) \
            / max(state.latents.std(), 1e-6)
        forcing = cfg.enso_coupling * latn0
        state.enso = np.array([te + omega * th - damp * te + forcing,
                               th - omega * te - damp * th])

        # 3) Advected anomaly scalars forced by latents.
        latn = (state.latents - state.latents.mean()) / max(state.latents.std(), 1e-6)
        _, _, u_deg, v_deg = self._winds_deg(state)
        for name, basis in (("q", self.basis_q), ("theta", self.basis_theta),
                            ("moisture", self.basis_m)):
            fld = getattr(state, name)
            adv = self._advect(fld, u_deg, v_deg)
            forced = cfg.forcing_amp * np.tensordot(latn, basis, axes=(0, 0))
            new = (1.0 - cfg.relax_rate) * adv + forced
            setattr(state, name, _smooth(new, cfg.smooth_passes))

        # 4) Events.
        self._step_cyclones(state)
        self._step_heatwaves(state)
        state.step += 1
        return state

    # -- tropical cyclones -----------------------------------------------------
    def _tc_season_weight(self, step: int, hemisphere: int) -> float:
        doy = (step / STEPS_PER_DAY) % DAYS_PER_YEAR
        peak = 250.0 if hemisphere > 0 else 45.0
        dist = min(abs(doy - peak), DAYS_PER_YEAR - abs(doy - peak))
        return float(np.exp(-((dist / 45.0) ** 2)))

    def _step_cyclones(self, state: GcmState) -> None:
        cfg = self.config
        g = self.grid
        # Genesis (seeded, hence deterministic along a trajectory).
        for hemi in (1, -1):
            rate = cfg.tc_rate_per_day * _DT_DAYS * self._tc_season_weight(
                state.step, hemi)
            if state.rng.uniform() < rate:
                lat = hemi * state.rng.uniform(8.0, 18.0)
                lon = state.rng.uniform(0.0, 360.0)
                if self.static.land_mask[g.lat_index(lat), g.lon_index(lon)] < 0.5:
                    state.cyclones.append(TropicalCyclone(
                        lat=lat, lon=lon, intensity=0.15, hemisphere=hemi))
        # Motion + intensity.
        survivors = []
        jet = self.jet(state.step)
        for tc in state.cyclones:
            li = g.lat_index(tc.lat)
            steering_u = 0.35 * jet[li] - 2.5  # m/s; easterly in tropics
            dlon = steering_u * 86400.0 * _DT_DAYS / 111_000.0 / max(
                np.cos(np.deg2rad(tc.lat)), 0.3)
            poleward = tc.hemisphere * (0.28 + 0.30 * (abs(tc.lat) / 30.0) ** 2)
            tc.lon = (tc.lon + dlon) % 360.0
            tc.lat += poleward
            tc.age_days += _DT_DAYS
            over_land = self.static.land_mask[
                g.lat_index(tc.lat), g.lon_index(tc.lon)] > 0.5
            warm = max(0.0, 1.0 - (abs(tc.lat) / 32.0) ** 2)
            growth = 0.55 * warm * (0.0 if over_land else 1.0)
            decay = 0.9 if over_land else 0.06 + 0.5 * (abs(tc.lat) / 45.0) ** 4
            tc.intensity += _DT_DAYS * (growth * (1.0 - tc.intensity)
                                        - decay * tc.intensity)
            if tc.intensity > 0.03 and abs(tc.lat) < 55.0 and tc.age_days < 25.0:
                survivors.append(tc)
        state.cyclones = survivors

    # -- heatwaves ---------------------------------------------------------------
    def _step_heatwaves(self, state: GcmState) -> None:
        cfg = self.config
        g = self.grid
        for hemi in (1, -1):
            # Summer-hemisphere genesis over midlatitude land.
            weight = self._tc_season_weight(state.step, hemi)  # same summer peak
            if state.rng.uniform() < cfg.heatwave_rate_per_day * _DT_DAYS * weight:
                lat = hemi * state.rng.uniform(38.0, 58.0)
                lon = state.rng.uniform(0.0, 360.0)
                if self.static.land_mask[g.lat_index(lat), g.lon_index(lon)] > 0.5:
                    state.heatwaves.append(Heatwave(
                        lat=lat, lon=lon,
                        amplitude=cfg.heatwave_amplitude * state.rng.uniform(0.6, 1.3),
                        duration_days=state.rng.uniform(6.0, 14.0)))
        survivors = []
        for hw in state.heatwaves:
            hw.age_days += _DT_DAYS
            if hw.age_days < hw.duration_days:
                survivors.append(hw)
        state.heatwaves = survivors

    @staticmethod
    def _event_envelope(age: float, duration: float, ramp: float = 2.5) -> float:
        """Smooth grow-hold-decay profile in [0, 1]."""
        up = min(1.0, age / ramp)
        down = min(1.0, max(0.0, (duration - age)) / ramp)
        return up * down

    def _gaussian_blob(self, lat: float, lon: float, radius_deg: float
                       ) -> np.ndarray:
        g = self.grid
        dlat = g.lats[:, None] - lat
        dlon = np.abs(g.lons[None, :] - lon)
        dlon = np.minimum(dlon, 360.0 - dlon) * np.cos(np.deg2rad(lat))
        d2 = dlat ** 2 + dlon ** 2
        return np.exp(-d2 / (2.0 * radius_deg ** 2))

    # -- diagnostics -------------------------------------------------------------
    def diagnostics(self, state: GcmState) -> np.ndarray:
        """Synthesize the 9-channel observable fields ``(H, W, C)``."""
        cfg = self.config
        g = self.grid
        clim = self.climatology(state.step)
        u_ms, v_ms, _, _ = self._winds_deg(state)

        z500 = clim["Z500"] + 120.0 * state.q
        # Geostrophic-like winds from the Z500 anomaly.
        zanom = 120.0 * state.q
        dzdy = np.gradient(zanom, axis=0) / (g.dlat * 111_000.0)
        dzdx = np.gradient(zanom, axis=1) / (g.dlon * 111_000.0) / self.coslat
        geo_scale = 9.81 / 1.0e-4  # g / f0
        sign = np.sign(np.tan(self.latr))[:, None]  # flips in SH
        u_geo = np.clip(-geo_scale * dzdy * sign * 0.10, -40, 40)
        v_geo = np.clip(geo_scale * dzdx * sign * 0.10, -40, 40)

        u850 = 0.75 * u_ms + 0.6 * u_geo
        v850 = 0.75 * v_ms + 0.6 * v_geo
        u10 = 0.45 * u_ms + 0.35 * u_geo
        v10 = 0.45 * v_ms + 0.35 * v_geo

        t850 = clim["T850"] + 6.5 * state.theta
        mslp = clim["MSLP"] - 9.0 * _smooth(state.q, 1)
        q700 = np.clip(clim["Q700"] * (1.0 + 0.55 * state.moisture), 0.0, None)

        sst_anom = 2.2 * self.enso_pattern * state.enso[0] \
            + 0.8 * _smooth(state.theta, 2)
        sst = clim["SST"] + sst_anom
        # SST relaxes to a fixed proxy over land (masked in evaluation).
        sst = np.where(self.static.land_mask > 0.5, clim["SST"], sst)

        solar = toa_solar(g, state.step) / 1361.0
        land = self.static.land_mask
        t2m = (t850 + 6.0
               - 0.0065 * self.static.orography
               + 3.5 * land * (solar - 0.25)       # diurnal cycle over land
               + 2.0 * land * 6.5 * state.theta * 0.3)

        # Event imprints.
        for tc in state.cyclones:
            blob = self._gaussian_blob(tc.lat, tc.lon, cfg.tc_radius_deg)
            depth = cfg.tc_max_amplitude * tc.intensity
            mslp = mslp - depth * blob
            z500 = z500 - 2.0 * depth * blob
            q700 = q700 + 2.5 * tc.intensity * blob
            # Cyclonic winds: tangential flow around the center.
            gy = np.gradient(blob, axis=0) / g.dlat
            gx = np.gradient(blob, axis=1) / g.dlon / self.coslat
            # Counterclockwise (NH) tangential flow: with rows running
            # north->south, (u, v) ∝ −(∂blob/∂row, ∂blob/∂col).
            spin = 16.0 * depth / cfg.tc_max_amplitude * tc.hemisphere
            u10 = u10 - spin * gy
            v10 = v10 - spin * gx
            u850 = u850 - 1.3 * spin * gy
            v850 = v850 - 1.3 * spin * gx
        for hw in state.heatwaves:
            blob = self._gaussian_blob(hw.lat, hw.lon, cfg.heatwave_radius_deg)
            env = self._event_envelope(hw.age_days, hw.duration_days)
            t2m = t2m + hw.amplitude * env * blob * land
            t850 = t850 + 0.6 * hw.amplitude * env * blob
            z500 = z500 + 5.0 * hw.amplitude * env * blob
            mslp = mslp + 0.25 * hw.amplitude * env * blob

        out = np.empty((g.height, g.width, len(TOY_SET)), dtype=np.float32)
        out[..., TOY_SET.index("T2M")] = t2m
        out[..., TOY_SET.index("U10")] = u10
        out[..., TOY_SET.index("V10")] = v10
        out[..., TOY_SET.index("MSLP")] = mslp
        out[..., TOY_SET.index("SST")] = sst
        out[..., TOY_SET.index("Z500")] = z500
        out[..., TOY_SET.index("T850")] = t850
        out[..., TOY_SET.index("Q700")] = q700
        out[..., TOY_SET.index("U850")] = u850
        return out

    # -- convenience -------------------------------------------------------------
    def run(self, state: GcmState, n_steps: int):
        """Yield ``(step_index, fields)`` for ``n_steps`` successive steps."""
        for _ in range(n_steps):
            self.step(state)
            yield state.step, self.diagnostics(state)

    def perturbed_twin(self, rel_error: float, seed: int) -> "ToyGCM":
        """An imperfect copy of this model: every tunable constant perturbed
        by ``~rel_error`` relative noise (the NWP-baseline physics)."""
        rng = np.random.default_rng(seed)
        cfg = self.config
        def jitter(v: float) -> float:
            return float(v * (1.0 + rel_error * rng.normal()))
        twin_cfg = replace(
            cfg,
            l96_forcing=jitter(cfg.l96_forcing),
            jet_speed=jitter(cfg.jet_speed),
            anomaly_wind=jitter(cfg.anomaly_wind),
            forcing_amp=jitter(cfg.forcing_amp),
            relax_rate=jitter(cfg.relax_rate),
            enso_coupling=jitter(cfg.enso_coupling),
        )
        return ToyGCM(self.grid, self.static, twin_cfg)
