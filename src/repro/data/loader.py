"""Window-parallel sharded data loading (paper Section V-A, "Data loading").

Under WP, input and output are spatially partitioned so each node loads only
the windows it processes: with a WP group of 16, each node reads 1/16 of the
image.  Windows are distributed round-robin in both grid directions across
the ``A x B`` WP node grid — the same distribution the attention sharding
uses, so no redistribution is needed after loading.

The loader wraps any ``(T, H, W, C)`` array-like that supports NumPy basic
slicing (an ``np.memmap``, an ``h5py.Dataset``, or an in-memory array) and
meters per-rank bytes read, which the I/O tests and the ablation bench use
to verify the 1/WP claim.
"""

from __future__ import annotations

import numpy as np

from ..model.windows import window_grid_shape

__all__ = ["ShardedWindowLoader", "round_robin_assignment"]


def round_robin_assignment(n_win_h: int, n_win_w: int, wp_grid: tuple[int, int]
                           ) -> np.ndarray:
    """Rank of each window: ``(n_win_h, n_win_w)`` integer array.

    Window (i, j) belongs to WP rank ``(i mod A) * B + (j mod B)`` — the
    round-robin-in-both-directions scheme of Figure 2a that balances load
    and keeps shifted-window exchanges batched.
    """
    a, b = wp_grid
    rows = np.arange(n_win_h) % a
    cols = np.arange(n_win_w) % b
    return (rows[:, None] * b + cols[None, :]).astype(np.int64)


class ShardedWindowLoader:
    """Per-WP-rank window loader with byte metering."""

    def __init__(self, fields, window: tuple[int, int],
                 wp_grid: tuple[int, int]):
        self.fields = fields
        self.window = window
        self.wp_grid = wp_grid
        _, height, width, self.channels = fields.shape
        self.grid_shape = (height, width)
        self.n_win_h, self.n_win_w = window_grid_shape(height, width, window)
        self.assignment = round_robin_assignment(self.n_win_h, self.n_win_w,
                                                 wp_grid)
        self.wp_size = wp_grid[0] * wp_grid[1]
        if self.n_win_h % wp_grid[0] or self.n_win_w % wp_grid[1]:
            raise ValueError(
                f"window grid {self.n_win_h}x{self.n_win_w} not divisible by "
                f"WP grid {wp_grid}")
        self.bytes_read = np.zeros(self.wp_size, dtype=np.int64)

    def windows_for_rank(self, rank: int) -> list[tuple[int, int]]:
        """(row, col) window coordinates owned by ``rank``, row-major."""
        rows, cols = np.nonzero(self.assignment == rank)
        return list(zip(rows.tolist(), cols.tolist()))

    def load(self, t: int, rank: int) -> np.ndarray:
        """Load rank-local windows of sample ``t``:
        ``(windows_per_rank, wh, ww, C)``.

        Reads only the owned spatial slices (HDF5-style partial I/O).
        """
        wh, ww = self.window
        owned = self.windows_for_rank(rank)
        out = np.empty((len(owned), wh, ww, self.channels), dtype=np.float32)
        for n, (i, j) in enumerate(owned):
            block = self.fields[t, i * wh:(i + 1) * wh, j * ww:(j + 1) * ww, :]
            out[n] = block
            self.bytes_read[rank] += block.nbytes
        return out

    def load_full(self, t: int) -> np.ndarray:
        """Reference unsharded read (what a no-WP configuration would do on
        every node)."""
        return np.asarray(self.fields[t], dtype=np.float32)

    def reassemble(self, shards: list[np.ndarray]) -> np.ndarray:
        """Rebuild the full image from all ranks' shards (for testing and
        for the output-writing pipeline stage)."""
        wh, ww = self.window
        h, w = self.grid_shape
        full = np.empty((h, w, self.channels), dtype=np.float32)
        for rank, shard in enumerate(shards):
            for n, (i, j) in enumerate(self.windows_for_rank(rank)):
                full[i * wh:(i + 1) * wh, j * ww:(j + 1) * ww, :] = shard[n]
        return full
