"""Data substrate: toy GCM, synthetic reanalysis, grids, forcings, loaders."""

from .era5 import ReanalysisConfig, SyntheticReanalysis
from .forcings import (
    DAYS_PER_YEAR,
    STEPS_PER_DAY,
    STEPS_PER_YEAR,
    ForcingProvider,
    StaticFields,
    toa_solar,
)
from .gcm import GcmConfig, GcmState, Heatwave, ToyGCM, TropicalCyclone
from .grid import LatLonGrid
from .loader import ShardedWindowLoader, round_robin_assignment
from .normalize import FieldNormalizer
from .variables import ERA5_FULL, PRESSURE_LEVELS, TOY_SET, Variable, VariableSet

__all__ = [
    "LatLonGrid", "FieldNormalizer",
    "Variable", "VariableSet", "ERA5_FULL", "TOY_SET", "PRESSURE_LEVELS",
    "GcmConfig", "GcmState", "ToyGCM", "TropicalCyclone", "Heatwave",
    "StaticFields", "ForcingProvider", "toa_solar",
    "STEPS_PER_DAY", "STEPS_PER_YEAR", "DAYS_PER_YEAR",
    "ReanalysisConfig", "SyntheticReanalysis",
    "ShardedWindowLoader", "round_robin_assignment",
]
