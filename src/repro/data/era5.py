"""The synthetic reanalysis archive (ERA5 stand-in).

Runs the toy GCM for a configurable number of years at 6-hourly cadence and
exposes the same interfaces the paper's pipeline needs: year-based
train/val/test splits (paper: 1979–2018 / 2019 / 2020), per-variable
training statistics for states and one-step residuals, day-of-year
climatology, training pair access, and *internal-state checkpoints* so the
perturbed-physics numerical baseline can be initialized at any analysis time
(standing in for operational data assimilation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forcings import STEPS_PER_YEAR, ForcingProvider, StaticFields
from .gcm import GcmConfig, GcmState, ToyGCM
from .grid import LatLonGrid
from .normalize import FieldNormalizer
from .variables import TOY_SET

__all__ = ["ReanalysisConfig", "SyntheticReanalysis"]


@dataclass(frozen=True)
class ReanalysisConfig:
    """Archive shape: grid size and split lengths in years."""

    height: int = 24
    width: int = 48
    train_years: float = 3.0
    val_years: float = 0.5
    test_years: float = 1.0
    seed: int = 0
    spinup_steps: int = 240
    checkpoint_every: int = 8      # internal-state snapshots (2-daily)
    gcm: GcmConfig = GcmConfig()

    @property
    def n_steps(self) -> int:
        return int(round((self.train_years + self.val_years + self.test_years)
                         * STEPS_PER_YEAR))


class SyntheticReanalysis:
    """In-memory reanalysis archive with GCM state checkpoints.

    ``fields`` has shape ``(T, H, W, C)`` with C following
    :data:`repro.data.variables.TOY_SET`. Time index ``i`` corresponds to
    GCM step ``spinup + i`` — forcings for sample ``i`` are
    ``forcing_provider(archive.gcm_step(i))``.
    """

    def __init__(self, config: ReanalysisConfig = ReanalysisConfig()):
        self.config = config
        self.grid = LatLonGrid(config.height, config.width)
        self.static = StaticFields.generate(self.grid)
        self.gcm = ToyGCM(self.grid, self.static, config.gcm)
        self.forcing_provider = ForcingProvider(self.grid, self.static)
        self._checkpoints: dict[int, GcmState] = {}
        self._generate()

    # -- generation ----------------------------------------------------------
    def _generate(self) -> None:
        cfg = self.config
        n = cfg.n_steps
        state = self.gcm.initial_state(seed=cfg.seed,
                                       spinup_steps=cfg.spinup_steps)
        shape = (n, self.grid.height, self.grid.width, len(TOY_SET))
        self.fields = np.empty(shape, dtype=np.float32)
        self.fields[0] = self.gcm.diagnostics(state)
        self._checkpoints[0] = state.clone()
        for i in range(1, n):
            self.gcm.step(state)
            self.fields[i] = self.gcm.diagnostics(state)
            if i % cfg.checkpoint_every == 0:
                self._checkpoints[i] = state.clone()
        self._final_state = state

    # -- indexing ------------------------------------------------------------
    def gcm_step(self, i: int) -> int:
        """GCM absolute step for archive time index ``i`` (drives forcings
        and the seasonal calendar)."""
        return self.config.spinup_steps + i

    def __len__(self) -> int:
        return self.fields.shape[0]

    @property
    def splits(self) -> dict[str, tuple[int, int]]:
        cfg = self.config
        t0 = int(round(cfg.train_years * STEPS_PER_YEAR))
        v0 = t0 + int(round(cfg.val_years * STEPS_PER_YEAR))
        return {"train": (0, t0), "val": (t0, v0), "test": (v0, len(self))}

    def split_indices(self, split: str) -> np.ndarray:
        lo, hi = self.splits[split]
        # Pairs (i, i+1) must both be inside the split.
        return np.arange(lo, hi - 1)

    # -- training statistics ---------------------------------------------------
    def state_normalizer(self) -> FieldNormalizer:
        lo, hi = self.splits["train"]
        return FieldNormalizer.from_data(self.fields[lo:hi])

    def residual_normalizer(self) -> FieldNormalizer:
        lo, hi = self.splits["train"]
        residuals = np.diff(self.fields[lo:hi], axis=0)
        return FieldNormalizer.from_data(residuals)

    def forcing_normalizer(self) -> FieldNormalizer:
        lo, hi = self.splits["train"]
        sample = np.stack([self.forcing_provider(self.gcm_step(i))
                           for i in range(lo, min(hi, lo + 200))])
        return FieldNormalizer.from_data(sample)

    def daily_climatology(self) -> np.ndarray:
        """Day-of-year mean over training years: ``(365, H, W, C)``."""
        lo, hi = self.splits["train"]
        steps_per_day = 4
        n_days = 365
        clim = np.zeros((n_days,) + self.fields.shape[1:], dtype=np.float64)
        counts = np.zeros(n_days, dtype=np.int64)
        for i in range(lo, hi):
            doy = (self.gcm_step(i) // steps_per_day) % n_days
            clim[doy] += self.fields[i]
            counts[doy] += 1
        seen = counts > 0
        clim[seen] /= counts[seen, None, None, None]
        if not seen.all():
            # Short training splits may not cover the full calendar; fall
            # back to the all-training mean for unseen days.
            fallback = self.fields[lo:hi].mean(axis=0, dtype=np.float64)
            clim[~seen] = fallback
        return clim.astype(np.float32)

    def climatology_at(self, clim: np.ndarray, i: int) -> np.ndarray:
        doy = (self.gcm_step(i) // 4) % 365
        return clim[doy]

    # -- sample access -----------------------------------------------------------
    def pair(self, i: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(x_i, x_{i+1}, forcings_i)`` in physical units."""
        return (self.fields[i], self.fields[i + 1],
                self.forcing_provider(self.gcm_step(i)))

    def training_batch(self, indices: np.ndarray, state_norm: FieldNormalizer,
                       residual_norm: FieldNormalizer,
                       forcing_norm: FieldNormalizer
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Standardized ``(condition, residual_target, forcings)`` batch."""
        cond = state_norm.normalize(self.fields[indices])
        residual = residual_norm.normalize(
            self.fields[indices + 1] - self.fields[indices])
        forc = np.stack([
            forcing_norm.normalize(self.forcing_provider(self.gcm_step(int(i))))
            for i in indices])
        return cond, residual, forc

    # -- numerical-baseline support -------------------------------------------
    def internal_state_at(self, i: int) -> GcmState:
        """Exact GCM state at archive index ``i`` (the 'analysis').

        Replays from the nearest stored checkpoint — this is the truth state
        an operational system would approximate by data assimilation.
        """
        every = self.config.checkpoint_every
        base = (i // every) * every
        while base not in self._checkpoints and base > 0:
            base -= every
        state = self._checkpoints[base].clone()
        for _ in range(i - base):
            self.gcm.step(state)
        return state
