"""Variable inventories and the kappa(v) variable weighting.

Two inventories are provided:

* :data:`ERA5_FULL` — the paper's full prognostic set: five surface-level
  variables (T2m, U10, V10, MSLP, SST) and five atmospheric variables
  (Z, T, U, V, Q) at the 13 WeatherBench2 pressure levels (70 channels).
  Used symbolically by the performance model and documentation.
* :data:`TOY_SET` — the 9-channel subset carried by the toy reanalysis,
  covering every variable family the paper's evaluation uses (T2m for
  heatwaves, MSLP/wind for cyclones, SST for ENSO, Q700 for humidity skill,
  U850 for Hovmöller diagrams, Z500 for synoptic verification).

kappa(v) follows the convention of the latitude/pressure-weighted losses in
prior work the paper cites: fixed weights for surface variables and weights
proportional to pressure for upper-air levels (emphasizing near-surface).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Variable", "VariableSet", "ERA5_FULL", "TOY_SET",
           "PRESSURE_LEVELS"]

#: The 13 WeatherBench2 pressure levels (hPa).
PRESSURE_LEVELS = (50, 100, 150, 200, 250, 300, 400, 500, 600, 700, 850, 925, 1000)

#: Fixed loss weights for surface variables (GraphCast-style convention).
_SURFACE_WEIGHTS = {"T2M": 1.0, "U10": 0.77, "V10": 0.66, "MSLP": 1.5,
                    "SST": 1.0}


@dataclass(frozen=True)
class Variable:
    """One prognostic channel."""

    name: str          # e.g. "Z500", "T2M"
    family: str        # "Z", "T", "U", "V", "Q" or surface name
    level: int | None  # hPa, None for surface variables
    units: str

    @property
    def kappa(self) -> float:
        """Loss weight kappa(v)."""
        if self.level is None:
            return _SURFACE_WEIGHTS.get(self.name, 1.0)
        return self.level / 1000.0


@dataclass(frozen=True)
class VariableSet:
    """Ordered channel inventory."""

    variables: tuple[Variable, ...]

    def __len__(self) -> int:
        return len(self.variables)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def index(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown variable {name!r}; have {self.names}") from None

    def kappa_weights(self) -> list[float]:
        return [v.kappa for v in self.variables]

    def __getitem__(self, name: str) -> Variable:
        return self.variables[self.index(name)]


def _surface(name: str, units: str) -> Variable:
    return Variable(name=name, family=name, level=None, units=units)


def _atmos(family: str, level: int, units: str) -> Variable:
    return Variable(name=f"{family}{level}", family=family, level=level,
                    units=units)


_FAMILY_UNITS = {"Z": "m^2/s^2", "T": "K", "U": "m/s", "V": "m/s", "Q": "kg/kg"}

#: Full 70-channel paper inventory.
ERA5_FULL = VariableSet(variables=tuple(
    [_surface("T2M", "K"), _surface("U10", "m/s"), _surface("V10", "m/s"),
     _surface("MSLP", "Pa"), _surface("SST", "K")]
    + [_atmos(fam, lvl, _FAMILY_UNITS[fam])
       for fam in ("Z", "T", "U", "V", "Q") for lvl in PRESSURE_LEVELS]))

#: 9-channel toy inventory (order defines channel layout in the toy dataset).
TOY_SET = VariableSet(variables=(
    _surface("T2M", "K"),
    _surface("U10", "m/s"),
    _surface("V10", "m/s"),
    _surface("MSLP", "hPa"),
    _surface("SST", "K"),
    _atmos("Z", 500, "m"),
    _atmos("T", 850, "K"),
    _atmos("Q", 700, "g/kg"),
    _atmos("U", 850, "m/s"),
))
