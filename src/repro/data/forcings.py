"""Forcing inputs: top-of-atmosphere solar radiation, surface geopotential
(orography), and land-sea mask (paper Section VI-B: "we also force the model
with top-of-atmosphere solar radiation, surface geopotential, and land-sea
mask as input").

The static fields are procedural (seeded smooth noise shaped into
continents) since the substitution substrate has no real geography; the TOA
solar flux is the standard analytic insolation formula and carries the
diurnal + seasonal phase information the paper uses it for ("to stabilize
phase shift").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import LatLonGrid

__all__ = ["StaticFields", "toa_solar", "ForcingProvider",
           "STEPS_PER_DAY", "DAYS_PER_YEAR", "STEPS_PER_YEAR"]

#: 6-hourly cadence, 365-day calendar (no leap days, like many GCMs).
STEPS_PER_DAY = 4
DAYS_PER_YEAR = 365
STEPS_PER_YEAR = STEPS_PER_DAY * DAYS_PER_YEAR

_SOLAR_CONSTANT = 1361.0  # W/m^2


def _smooth_noise(rng: np.random.Generator, height: int, width: int,
                  cutoff: float = 4.0) -> np.ndarray:
    """Smooth random field via low-pass filtering white noise in Fourier
    space (zonally periodic; meridionally reflected)."""
    noise = rng.normal(size=(height, width))
    fy = np.fft.fftfreq(height)[:, None] * height
    fx = np.fft.fftfreq(width)[None, :] * width
    k = np.sqrt(fy ** 2 + fx ** 2)
    filt = np.exp(-(k / cutoff) ** 2)
    out = np.fft.ifft2(np.fft.fft2(noise) * filt).real
    out /= max(out.std(), 1e-12)
    return out


@dataclass(frozen=True)
class StaticFields:
    """Procedural geography: land mask and orography."""

    land_mask: np.ndarray   # (H, W) float in {0, 1}
    orography: np.ndarray   # (H, W) meters, zero over ocean

    @classmethod
    def generate(cls, grid: LatLonGrid, seed: int = 7,
                 land_fraction: float = 0.3) -> "StaticFields":
        rng = np.random.default_rng(seed)
        base = _smooth_noise(rng, grid.height, grid.width, cutoff=3.0)
        # Continents avoid deep polar rows slightly and are favored mid-lat.
        lat_bias = 0.3 * np.cos(np.deg2rad(grid.lats / 1.5))[:, None]
        score = base + lat_bias
        threshold = np.quantile(score, 1.0 - land_fraction)
        land = (score > threshold).astype(np.float64)
        rough = _smooth_noise(rng, grid.height, grid.width, cutoff=6.0)
        orography = np.clip(rough, 0.0, 1.3) ** 2 * 2000.0 * land
        return cls(land_mask=land, orography=orography)


def toa_solar(grid: LatLonGrid, step: int) -> np.ndarray:
    """Instantaneous TOA insolation (W/m^2) at a 6-hourly step index.

    Standard solar geometry: declination follows the day of year, the hour
    angle follows UTC time and longitude.
    """
    day_of_year = (step // STEPS_PER_DAY) % DAYS_PER_YEAR
    hour_utc = (step % STEPS_PER_DAY) * 24.0 / STEPS_PER_DAY
    decl = np.deg2rad(-23.44) * np.cos(2 * np.pi * (day_of_year + 10) / DAYS_PER_YEAR)
    lat = np.deg2rad(grid.lats)[:, None]
    # Local solar hour angle (radians): 0 at local noon.
    hour_local = (hour_utc + grid.lons / 15.0) % 24.0
    hour_angle = np.deg2rad(15.0 * (hour_local - 12.0))[None, :]
    cos_zenith = (np.sin(lat) * np.sin(decl)
                  + np.cos(lat) * np.cos(decl) * np.cos(hour_angle))
    return (_SOLAR_CONSTANT * np.clip(cos_zenith, 0.0, None)).astype(np.float64)


class ForcingProvider:
    """Assembles the ``(H, W, 3)`` forcing tensor for a time step.

    Channel order: [TOA solar, orography, land-sea mask]. A provider is the
    `forcing_fn` consumed by :class:`repro.diffusion.ResidualForecaster`.
    """

    def __init__(self, grid: LatLonGrid, static: StaticFields):
        self.grid = grid
        self.static = static

    @property
    def n_channels(self) -> int:
        return 3

    def __call__(self, step: int) -> np.ndarray:
        out = np.empty((self.grid.height, self.grid.width, 3), dtype=np.float32)
        out[..., 0] = toa_solar(self.grid, step)
        out[..., 1] = self.static.orography
        out[..., 2] = self.static.land_mask
        return out
