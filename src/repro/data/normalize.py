"""Per-variable z-score normalization (paper: "Data are z-score standardized
with per-variable training statistics")."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FieldNormalizer"]


@dataclass(frozen=True)
class FieldNormalizer:
    """Channel-wise affine standardization for ``(..., C)`` fields."""

    mean: np.ndarray   # (C,)
    std: np.ndarray    # (C,)

    def __post_init__(self):
        if self.mean.shape != self.std.shape or self.mean.ndim != 1:
            raise ValueError("mean/std must be matching 1-D arrays")
        if np.any(self.std <= 0):
            raise ValueError("std must be strictly positive")

    @classmethod
    def from_data(cls, data: np.ndarray) -> "FieldNormalizer":
        """Fit over all axes except the trailing channel axis."""
        axes = tuple(range(data.ndim - 1))
        mean = data.mean(axis=axes, dtype=np.float64)
        std = data.std(axis=axes, dtype=np.float64)
        std = np.maximum(std, 1e-8)
        return cls(mean=mean.astype(np.float32), std=std.astype(np.float32))

    def normalize(self, x: np.ndarray) -> np.ndarray:
        return ((x - self.mean) / self.std).astype(np.float32)

    def denormalize(self, x: np.ndarray) -> np.ndarray:
        return (x * self.std + self.mean).astype(np.float32)

    # -- persistence ---------------------------------------------------------
    def save(self, path: str) -> None:
        np.savez(path, mean=self.mean, std=self.std)

    @classmethod
    def load(cls, path: str) -> "FieldNormalizer":
        with np.load(path) as data:
            return cls(mean=data["mean"], std=data["std"])
