"""Lat-lon grid utilities.

The paper's data live on the native 0.25° ERA5 grid (720x1440 with poles
removed); the reproduction uses the same equiangular pole-free layout at a
reduced resolution.  Latitude weights implement the alpha(s) factor of the
training objective and of all latitude-weighted verification metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatLonGrid"]


@dataclass(frozen=True)
class LatLonGrid:
    """Equiangular latitude-longitude grid, poles excluded.

    Rows run north to south (lat ``+max .. −max``), columns west to east
    (lon ``0 .. 360``), matching the row-major image layout of the model.
    """

    height: int
    width: int

    @property
    def lats(self) -> np.ndarray:
        """Cell-center latitudes (degrees), shape ``(height,)``."""
        step = 180.0 / self.height
        return (90.0 - step / 2 - step * np.arange(self.height)).astype(np.float64)

    @property
    def lons(self) -> np.ndarray:
        """Cell-center longitudes (degrees in [0, 360)), shape ``(width,)``."""
        return (360.0 / self.width * np.arange(self.width)).astype(np.float64)

    @property
    def dlat(self) -> float:
        return 180.0 / self.height

    @property
    def dlon(self) -> float:
        return 360.0 / self.width

    def latitude_weights(self) -> np.ndarray:
        """Area (cosine-latitude) weights normalized to mean 1, shape (H,)."""
        w = np.cos(np.deg2rad(self.lats))
        return (w / w.mean()).astype(np.float64)

    def cell_area_weights(self) -> np.ndarray:
        """2D weights ``(H, W)`` normalized to mean 1 (zonally uniform)."""
        return np.repeat(self.latitude_weights()[:, None], self.width, axis=1)

    # -- index helpers -------------------------------------------------------
    def lat_index(self, lat: float) -> int:
        """Row index of the cell containing ``lat``."""
        return int(np.clip(np.argmin(np.abs(self.lats - lat)), 0, self.height - 1))

    def lon_index(self, lon: float) -> int:
        return int(np.round((lon % 360.0) / self.dlon)) % self.width

    def box_mask(self, lat_min: float, lat_max: float, lon_min: float,
                 lon_max: float) -> np.ndarray:
        """Boolean mask for a lat/lon box (lon range may wrap 360).

        A cell belongs to the box if its *area* overlaps it (half-cell
        margin), so narrow boxes remain non-empty on coarse grids.
        """
        mlat, mlon = self.dlat / 2, self.dlon / 2
        lat_ok = (self.lats >= lat_min - mlat) & (self.lats <= lat_max + mlat)
        lons = self.lons
        lon_min, lon_max = lon_min % 360.0, lon_max % 360.0
        if lon_min <= lon_max:
            lon_ok = (lons >= lon_min - mlon) & (lons <= lon_max + mlon)
        else:
            lon_ok = (lons >= lon_min - mlon) | (lons <= lon_max + mlon)
        return lat_ok[:, None] & lon_ok[None, :]

    def band_mask(self, lat_min: float, lat_max: float) -> np.ndarray:
        """Boolean mask for a latitude band, shape ``(H, W)``."""
        return self.box_mask(lat_min, lat_max, 0.0, 359.999)

    def area_mean(self, field: np.ndarray, mask: np.ndarray | None = None
                  ) -> np.ndarray:
        """Latitude-weighted mean over (H, W), optionally under a mask.

        ``field`` may have leading axes; the spatial axes must be the last
        two (or last three with a trailing channel axis is NOT supported
        here — reduce channels first).
        """
        w = self.cell_area_weights()
        if mask is not None:
            w = w * mask
        total = w.sum()
        return (field * w).sum(axis=(-2, -1)) / total
