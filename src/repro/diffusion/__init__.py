"""TrigFlow diffusion: objective, weighted loss, PFODE solver, forecaster."""

from .consistency import ConsistencyConfig, ConsistencyDistiller, consistency_jump
from .loss import velocity_loss, weighted_velocity_loss
from .sampler import Normalizer, ResidualForecaster
from .solver import DpmSolver2S, SolverConfig
from .trigflow import TrigFlow

__all__ = [
    "TrigFlow", "DpmSolver2S", "SolverConfig",
    "velocity_loss", "weighted_velocity_loss",
    "ResidualForecaster", "Normalizer",
    "ConsistencyDistiller", "ConsistencyConfig", "consistency_jump",
]
