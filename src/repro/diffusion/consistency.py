"""Consistency distillation (paper Section VII-C):

    "Our diffusion parameterization also allows for consistency
    distillation [50], which allows us to compress the model size and
    reduce inference to a single step, thereby lowering computational cost
    by orders of magnitude for generating new forecasts."

TrigFlow (Lu & Song) defines the consistency function

    f(x_t, t) = cos(t) x_t − sin(t) σ_d F_θ(x_t / σ_d, t),

the one-step jump from any point on a PFODE trajectory back to its ``t=0``
endpoint.  Distillation trains a student ``F_φ`` so that its jump from
``x_t`` matches the teacher-ODE-consistent jump from a *less noisy* point
``x_s`` on the same trajectory (obtained by one teacher solver step),
evaluated by the student with stopped gradients — the standard discrete
consistency-distillation objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import EMA, AdamW, Module
from ..tensor import Tensor, no_grad
from .solver import SolverConfig
from .trigflow import TrigFlow

__all__ = ["ConsistencyConfig", "ConsistencyDistiller", "consistency_jump"]


def consistency_jump(flow: TrigFlow, x_t: np.ndarray, velocity: np.ndarray,
                     t: np.ndarray) -> np.ndarray:
    """TrigFlow consistency function: ``cos(t) x_t − sin(t) v``."""
    return flow.denoise_from_velocity(x_t, velocity, t)


@dataclass(frozen=True)
class ConsistencyConfig:
    """Distillation hyperparameters."""

    n_boundary_steps: int = 8      # discretization of [t_min, pi/2]
    lr: float = 1e-3
    ema_halflife_images: float = 500.0
    seed: int = 0


class ConsistencyDistiller:
    """Distills a trained TrigFlow teacher into a one-step student.

    Both teacher and student share the AERIS call signature
    ``model(x_t, t, cond, forc)``.  The student is typically initialized
    from the teacher's weights.
    """

    def __init__(self, teacher: Module, student: Module,
                 flow: TrigFlow = TrigFlow(),
                 config: ConsistencyConfig = ConsistencyConfig()):
        self.teacher = teacher
        self.student = student
        self.flow = flow
        self.config = config
        self.optimizer = AdamW(student.parameters(), lr=config.lr,
                               weight_decay=0.0)
        self.ema = EMA(student, halflife_images=config.ema_halflife_images)
        self.rng_t = np.random.default_rng(config.seed + 1)
        self.rng_z = np.random.default_rng(config.seed + 2)
        self.history: list[float] = []
        # Boundary times: log-uniform in tan(t), densest near t_min.
        taus = np.linspace(np.log(flow.sigma_min), np.log(flow.sigma_max),
                           config.n_boundary_steps + 1)
        self.boundaries = flow.tau_to_t(taus)  # increasing

    # -- teacher utilities ---------------------------------------------------
    def _teacher_velocity(self, x: np.ndarray, t: np.ndarray,
                          cond: np.ndarray, forc: np.ndarray) -> np.ndarray:
        with no_grad():
            out = self.teacher(Tensor(x / self.flow.sigma_d), Tensor(t),
                               Tensor(cond), Tensor(forc))
        return self.flow.sigma_d * out.numpy()

    def _teacher_ode_step(self, x_t: np.ndarray, t: np.ndarray,
                          s: np.ndarray, cond: np.ndarray,
                          forc: np.ndarray) -> np.ndarray:
        """One midpoint step of the teacher PFODE from time t down to s."""
        h = (s - t).reshape((-1,) + (1,) * (x_t.ndim - 1))
        v1 = self._teacher_velocity(x_t, t, cond, forc)
        x_mid = x_t + 0.5 * h * v1
        v2 = self._teacher_velocity(x_mid, 0.5 * (t + s), cond, forc)
        return x_t + h * v2

    def _student_jump(self, x: np.ndarray, t: np.ndarray, cond: np.ndarray,
                      forc: np.ndarray, grad: bool):
        """Student consistency function; Tensor (with graph) if ``grad``."""
        if grad:
            out = self.student(Tensor(x / self.flow.sigma_d), Tensor(t),
                               Tensor(cond), Tensor(forc))
            ct, st = TrigFlow._angles(t, x.ndim)
            return Tensor(ct * x) - Tensor(st) * (out * self.flow.sigma_d)
        with no_grad():
            out = self.student(Tensor(x / self.flow.sigma_d), Tensor(t),
                               Tensor(cond), Tensor(forc))
        return consistency_jump(self.flow, x, self.flow.sigma_d * out.numpy(), t)

    # -- one distillation step -----------------------------------------------
    def train_step(self, x0: np.ndarray, cond: np.ndarray,
                   forc: np.ndarray) -> float:
        """``x0``: clean (standardized residual) targets, ``(B, H, W, C)``."""
        batch = x0.shape[0]
        # Sample a boundary interval [s, t] per sample.
        idx = self.rng_t.integers(1, len(self.boundaries), size=batch)
        t = self.boundaries[idx].astype(np.float32)
        s = self.boundaries[idx - 1].astype(np.float32)
        z = self.rng_z.normal(0.0, self.flow.sigma_d,
                              size=x0.shape).astype(np.float32)
        x_t = self.flow.interpolate(x0, z, t)
        # Teacher moves x_t -> x_s along the PFODE; the EMA student's jump
        # from x_s is the (stop-gradient) target.
        x_s = self._teacher_ode_step(x_t, t, s, cond, forc)
        target = self._student_jump(x_s, s, cond, forc, grad=False)
        self.optimizer.zero_grad()
        pred = self._student_jump(x_t, t, cond, forc, grad=True)
        loss = ((pred - Tensor(target)) ** 2).mean()
        loss.backward()
        self.optimizer.step()
        self.ema.update(self.student, images_per_step=batch)
        value = loss.item()
        self.history.append(value)
        return value

    # -- one-step inference ----------------------------------------------------
    def sample_one_step(self, cond: np.ndarray, forc: np.ndarray,
                        rng: np.random.Generator,
                        use_ema: bool = False) -> np.ndarray:
        """Single-network-evaluation sample: jump from pure noise at
        ``t = pi/2`` directly to ``t = 0``."""
        model = self.student
        if use_ema:
            saved = model.state_dict()
            self.ema.copy_to(model)
        z = rng.normal(0.0, self.flow.sigma_d,
                       size=cond.shape).astype(np.float32)
        t = np.full(cond.shape[0] if cond.ndim == 4 else 1, np.pi / 2,
                    dtype=np.float32)
        x = z if cond.ndim == 4 else z[None]
        c = cond if cond.ndim == 4 else cond[None]
        f = forc if forc.ndim == 4 else forc[None]
        out = self._student_jump(x, t, c, f, grad=False)
        if use_ema:
            model.load_state_dict(saved)
        return out if cond.ndim == 4 else out[0]

    def teacher_sample_cost(self, solver_config: SolverConfig) -> int:
        """Network evaluations per forecast step for the diffusion teacher
        (2 per 2S solver step) vs 1 for the consistency student."""
        return 2 * solver_config.n_steps
