"""Probability-flow ODE solver: DPMSolver++ 2S under TrigFlow with a
log-uniform time schedule and trigonometric Langevin churn (Section VI-B,
"Inference").

The learned dynamics follow ``dx_t/dt = sigma_d * F_theta(x_t / sigma_d, t)``.
A forecast step integrates this from pure noise at ``t = pi/2`` down to
``t ≈ 0`` in a fixed number of solver steps.  Each step is a second-order
"2S" (single-step midpoint) update; the step endpoints follow the training
prior by placing them log-uniformly in ``tan(t)``.

Churn: before each solver step the state can be rotated *toward* noise —
``x' = cos(delta) x + sin(delta) z`` lands exactly on the TrigFlow marginal
at ``t' = arccos(cos t · cos delta)`` — which re-injects stochasticity,
improving sample quality and ensemble spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from .trigflow import TrigFlow

__all__ = ["SolverConfig", "DpmSolver2S"]

#: A velocity oracle: (x_t, t) -> sigma_d * F_theta(x_t / sigma_d, t).
VelocityFn = Callable[[np.ndarray, float], np.ndarray]


@dataclass(frozen=True)
class SolverConfig:
    """Sampler hyperparameters (paper defaults)."""

    n_steps: int = 10
    churn: float = 0.0          # fraction of each step re-noised (0 disables)
    t_end: float | None = None  # defaults to the TrigFlow t_min


class DpmSolver2S:
    """Second-order single-step solver over the TrigFlow PFODE."""

    def __init__(self, flow: TrigFlow, config: SolverConfig = SolverConfig()):
        self.flow = flow
        self.config = config

    def schedule(self) -> np.ndarray:
        """Decreasing time grid: ``pi/2`` then log-uniform in ``tan(t)`` down
        to ``t_end`` (matching the training prior's support)."""
        t_end = (self.config.t_end if self.config.t_end is not None
                 else self.flow.t_min)
        taus = np.linspace(np.log(self.flow.sigma_max),
                           np.log(np.tan(t_end) * self.flow.sigma_d),
                           self.config.n_steps)
        ts = self.flow.tau_to_t(taus)
        ts[0] = np.pi / 2  # exact pure-noise start
        return ts.astype(np.float64)

    def churn_state(self, x: np.ndarray, t: float, delta: float,
                    rng: np.random.Generator) -> tuple[np.ndarray, float]:
        """Rotate the state toward noise by angle ``delta`` (Langevin-like)."""
        if delta <= 0:
            return x, t
        z = rng.normal(0.0, self.flow.sigma_d, size=x.shape).astype(x.dtype)
        x_new = np.cos(delta) * x + np.sin(delta) * z
        t_new = float(np.arccos(np.clip(np.cos(t) * np.cos(delta), -1.0, 1.0)))
        return x_new, t_new

    def sample_members(self, velocity_fn: VelocityFn,
                       shape: tuple[int, ...],
                       rngs: list[np.random.Generator]) -> np.ndarray:
        """Draw one sample per generator with *stacked* model evaluations.

        Per-member randomness (initial noise, churn) comes from each
        member's own generator — the exact streams ``M`` sequential
        :meth:`sample` calls would consume — while every velocity
        evaluation runs once on the ``(M,) + shape`` batch.  Per-row
        numerics are bit-identical to the sequential path, so this is a
        pure batching optimization: one model forward serves ``M``
        ensemble members per solver evaluation.

        ``velocity_fn`` must accept/return batched ``(M,) + shape`` arrays.
        """
        m = len(rngs)
        x = np.stack([rng.normal(0.0, self.flow.sigma_d, size=shape)
                      .astype(np.float32) for rng in rngs])
        ts = self.schedule()
        registry = _obs_metrics()
        for i in range(len(ts) - 1):
            t, t_next = float(ts[i]), float(ts[i + 1])
            with _span("solver.step", category="diffusion", i=i, t=t,
                       t_next=t_next, members=m):
                if self.config.churn > 0 and i > 0:
                    delta = self.config.churn * (t - t_next)
                    # The churned time depends only on (t, delta), so every
                    # member lands on the same t; only the noise differs.
                    # Restacking (not in-place assignment) keeps the same
                    # dtype promotion as the sequential path.
                    t_churned = t
                    rows = []
                    for k, rng in enumerate(rngs):
                        row, t_churned = self.churn_state(x[k], t, delta,
                                                          rng)
                        rows.append(row)
                    x = np.stack(rows)
                    t = t_churned
                x = self._step(velocity_fn, x, t, t_next)
            if registry is not None:
                registry.counter("solver.steps",
                                 "2S solver steps taken").inc(m)
        t_last = float(ts[-1])
        with _span("solver.denoise", category="diffusion", t=t_last,
                   members=m):
            v = velocity_fn(x, t_last)
            return self.flow.denoise_from_velocity(x, v, np.asarray(t_last))

    def sample(self, velocity_fn: VelocityFn, shape: tuple[int, ...],
               rng: np.random.Generator) -> np.ndarray:
        """Draw one sample: integrate from ``z ~ N(0, sigma_d^2)`` at
        ``t = pi/2`` to ``t_end`` and denoise the final state."""
        x = rng.normal(0.0, self.flow.sigma_d, size=shape).astype(np.float32)
        ts = self.schedule()
        registry = _obs_metrics()
        for i in range(len(ts) - 1):
            t, t_next = float(ts[i]), float(ts[i + 1])
            with _span("solver.step", category="diffusion", i=i, t=t,
                       t_next=t_next):
                if self.config.churn > 0 and i > 0:
                    delta = self.config.churn * (t - t_next)
                    x, t = self.churn_state(x, t, delta, rng)
                x = self._step(velocity_fn, x, t, t_next)
            if registry is not None:
                registry.counter("solver.steps",
                                 "2S solver steps taken").inc()
        # Final denoise: read x0 off the velocity at the last time.
        t_last = float(ts[-1])
        with _span("solver.denoise", category="diffusion", t=t_last):
            v = velocity_fn(x, t_last)
            return self.flow.denoise_from_velocity(x, v, np.asarray(t_last))

    def _step(self, velocity_fn: VelocityFn, x: np.ndarray, t: float,
              t_next: float) -> np.ndarray:
        """One 2S update: explicit midpoint over the PFODE."""
        h = t_next - t
        v1 = velocity_fn(x, t)
        x_mid = x + 0.5 * h * v1
        t_mid = t + 0.5 * h
        v2 = velocity_fn(x_mid, t_mid)
        return x + h * v2
