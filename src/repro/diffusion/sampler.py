"""Forecast generation: iterative diffusion steps within one 6h/24h data
step, autoregressive data steps out to seasonal scales, and ensembles by
noise resampling (paper Figure 1c/1d).

The model estimates the *standardized residual* ``x_i − x_{i−1}``; a
:class:`ResidualForecaster` owns the state/residual normalizations so users
interact in physical units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from ..tensor import Tensor, no_grad
from .solver import DpmSolver2S, SolverConfig
from .trigflow import TrigFlow

__all__ = ["ResidualForecaster", "Normalizer"]


class Normalizer(Protocol):
    """Z-score normalization protocol (implemented by
    :class:`repro.data.normalize.FieldNormalizer`)."""

    def normalize(self, x: np.ndarray) -> np.ndarray: ...
    def denormalize(self, x: np.ndarray) -> np.ndarray: ...


@dataclass
class ResidualForecaster:
    """Autoregressive ensemble forecaster around a trained AERIS model.

    Parameters
    ----------
    model:
        The trained network (typically with EMA weights loaded). Must accept
        ``(x_t, t, condition, forcings)`` tensors shaped ``(B, H, W, C)``.
    state_norm / residual_norm:
        Z-score transforms for full states and one-step residuals.
    forcing_fn:
        ``time_index -> (H, W, F)`` physical forcings; normalized internally
        by ``forcing_norm`` if provided.
    """

    model: object
    state_norm: Normalizer
    residual_norm: Normalizer
    forcing_fn: Callable[[int], np.ndarray]
    forcing_norm: Normalizer | None = None
    flow: TrigFlow = TrigFlow()
    solver_config: SolverConfig = SolverConfig()

    def _velocity_fn(self, cond: np.ndarray, forcings: np.ndarray):
        """Bind conditioning into a velocity oracle for the ODE solver."""
        cond_t = Tensor(cond[None])
        forc_t = Tensor(forcings[None])
        sigma_d = self.flow.sigma_d

        def velocity(x_t: np.ndarray, t: float) -> np.ndarray:
            with no_grad():
                out = self.model(Tensor(x_t[None] / sigma_d),
                                 Tensor(np.array([t], dtype=np.float32)),
                                 cond_t, forc_t)
            return sigma_d * out.numpy()[0]

        return velocity

    def step(self, state: np.ndarray, time_index: int,
             rng: np.random.Generator) -> np.ndarray:
        """One data step: sample a residual by diffusion, add to the state.

        ``state`` is physical ``(H, W, C)``; returns the next physical state.
        """
        with _span("sampler.step", category="diffusion",
                   time_index=time_index):
            cond = self.state_norm.normalize(state)
            forcings = self.forcing_fn(time_index)
            if self.forcing_norm is not None:
                forcings = self.forcing_norm.normalize(forcings)
            solver = DpmSolver2S(self.flow, self.solver_config)
            residual_std = solver.sample(self._velocity_fn(cond, forcings),
                                         state.shape, rng)
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("sampler.data_steps",
                                 "autoregressive data steps sampled").inc()
            return state + self.residual_norm.denormalize(residual_std)

    def rollout(self, state0: np.ndarray, n_steps: int,
                rng: np.random.Generator, start_index: int = 0) -> np.ndarray:
        """Autoregressive forecast: ``(n_steps + 1, H, W, C)`` incl. IC."""
        states = np.empty((n_steps + 1,) + state0.shape, dtype=np.float32)
        states[0] = state0
        with _span("sampler.rollout", category="diffusion", n_steps=n_steps,
                   start_index=start_index):
            for i in range(n_steps):
                states[i + 1] = self.step(states[i], start_index + i, rng)
        return states

    def perturbed_initial_condition(self, state0: np.ndarray,
                                    rng: np.random.Generator,
                                    amplitude: float) -> np.ndarray:
        """Initial-condition perturbation scaled by the one-step residual
        statistics (the paper's future-work lever for improving the
        spread/skill ratio: "Improving the spread/skill ratio through
        initial condition perturbations ... may improve ensemble spread
        without hurting skill")."""
        noise = rng.normal(size=state0.shape).astype(np.float32)
        scaled = self.residual_norm.denormalize(noise) \
            - self.residual_norm.denormalize(np.zeros_like(noise))
        return state0 + amplitude * scaled

    def ensemble_rollout(self, state0: np.ndarray, n_steps: int,
                         n_members: int, seed: int = 0,
                         start_index: int = 0,
                         ic_perturbation: float = 0.0) -> np.ndarray:
        """Ensemble by resampling the diffusion noise per member (and
        optionally perturbing initial conditions):
        ``(n_members, n_steps + 1, H, W, C)``."""
        out = np.empty((n_members, n_steps + 1) + state0.shape, dtype=np.float32)
        for m in range(n_members):
            rng = np.random.default_rng(seed + 1000 * m)
            start = state0
            if ic_perturbation > 0.0 and m > 0:
                # Member 0 stays unperturbed (the control member).
                start = self.perturbed_initial_condition(state0, rng,
                                                         ic_perturbation)
            out[m] = self.rollout(start, n_steps, rng, start_index)
        return out
