"""Forecast generation: iterative diffusion steps within one 6h/24h data
step, autoregressive data steps out to seasonal scales, and ensembles by
noise resampling (paper Figure 1c/1d).

The model estimates the *standardized residual* ``x_i − x_{i−1}``; a
:class:`ResidualForecaster` owns the state/residual normalizations so users
interact in physical units.

Ensemble members are sampled **batched** by default: the model already
accepts ``(B, H, W, C)`` inputs, so one stacked forward per solver
evaluation serves every member at once (`ensemble_rollout`), bit-identical
to the sequential per-member loop (each member keeps its own seeded
generator, and per-row numerics of a stacked forward are exact).  The
serving tier (:mod:`repro.serve`) batches across *requests* the same way
via :meth:`ResidualForecaster.step_members`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from ..tensor import Tensor, no_grad
from .solver import DpmSolver2S, SolverConfig
from .trigflow import TrigFlow

__all__ = ["ResidualForecaster", "Normalizer", "count_model_forwards"]


class Normalizer(Protocol):
    """Z-score normalization protocol (implemented by
    :class:`repro.data.normalize.FieldNormalizer`)."""

    def normalize(self, x: np.ndarray) -> np.ndarray: ...
    def denormalize(self, x: np.ndarray) -> np.ndarray: ...


def count_model_forwards(members: int) -> None:
    """Book one stacked model forward serving ``members`` ensemble members
    (``sampler.model_forwards`` counts forward passes — what latency is
    made of; ``sampler.member_forwards`` counts member-evaluations — what
    the sequential path would have paid one forward each for)."""
    registry = _obs_metrics()
    if registry is not None:
        registry.counter("sampler.model_forwards",
                         "stacked model forward passes").inc()
        registry.counter("sampler.member_forwards",
                         "per-member model evaluations").inc(members)


@dataclass
class ResidualForecaster:
    """Autoregressive ensemble forecaster around a trained AERIS model.

    Parameters
    ----------
    model:
        The trained network (typically with EMA weights loaded). Must accept
        ``(x_t, t, condition, forcings)`` tensors shaped ``(B, H, W, C)``.
    state_norm / residual_norm:
        Z-score transforms for full states and one-step residuals.
    forcing_fn:
        ``time_index -> (H, W, F)`` physical forcings; normalized internally
        by ``forcing_norm`` if provided.
    """

    model: object
    state_norm: Normalizer
    residual_norm: Normalizer
    forcing_fn: Callable[[int], np.ndarray]
    forcing_norm: Normalizer | None = None
    flow: TrigFlow = field(default_factory=TrigFlow)
    solver_config: SolverConfig = field(default_factory=SolverConfig)

    def _velocity_fn(self, cond: np.ndarray, forcings: np.ndarray):
        """Bind conditioning into a velocity oracle for the ODE solver."""
        cond_t = Tensor(cond[None])
        forc_t = Tensor(forcings[None])
        sigma_d = self.flow.sigma_d

        def velocity(x_t: np.ndarray, t: float) -> np.ndarray:
            count_model_forwards(1)
            with no_grad():
                out = self.model(Tensor(x_t[None] / sigma_d),
                                 Tensor(np.array([t], dtype=np.float32)),
                                 cond_t, forc_t)
            return sigma_d * out.numpy()[0]

        return velocity

    def _batched_velocity_fn(self, cond: np.ndarray, forc: np.ndarray):
        """Batched velocity oracle: ``cond`` / ``forc`` carry one row per
        ensemble member, so members with *different* conditioning (states
        diverge after step one; serving coalesces distinct requests) still
        share a single stacked forward."""
        cond_t = Tensor(cond)
        forc_t = Tensor(forc)
        sigma_d = self.flow.sigma_d

        def velocity(x_t: np.ndarray, t: float) -> np.ndarray:
            count_model_forwards(x_t.shape[0])
            with no_grad():
                out = self.model(Tensor(x_t / sigma_d),
                                 Tensor(np.full(x_t.shape[0], t,
                                                dtype=np.float32)),
                                 cond_t, forc_t)
            return sigma_d * out.numpy()

        return velocity

    def _normalized_forcings(self, time_index: int) -> np.ndarray:
        forcings = self.forcing_fn(time_index)
        if self.forcing_norm is not None:
            forcings = self.forcing_norm.normalize(forcings)
        return forcings

    def step(self, state: np.ndarray, time_index: int,
             rng: np.random.Generator) -> np.ndarray:
        """One data step: sample a residual by diffusion, add to the state.

        ``state`` is physical ``(H, W, C)``; returns the next physical state.
        """
        with _span("sampler.step", category="diffusion",
                   time_index=time_index):
            cond = self.state_norm.normalize(state)
            forcings = self._normalized_forcings(time_index)
            solver = DpmSolver2S(self.flow, self.solver_config)
            residual_std = solver.sample(self._velocity_fn(cond, forcings),
                                         state.shape, rng)
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("sampler.data_steps",
                                 "autoregressive data steps sampled").inc()
            return state + self.residual_norm.denormalize(residual_std)

    def step_members(self, states: np.ndarray,
                     time_indices: int | Sequence[int],
                     rngs: Sequence[np.random.Generator]) -> np.ndarray:
        """One data step for ``M = len(rngs)`` members through stacked
        forwards: ``(M, H, W, C)`` physical states in, next states out.

        Each member keeps its own generator and its own conditioning row;
        ``time_indices`` may be one shared index (an ensemble advancing in
        lockstep) or one per member (coalesced serving requests at
        different leads/init times).  Bit-identical to ``M`` sequential
        :meth:`step` calls.
        """
        m = len(rngs)
        if states.shape[0] != m:
            raise ValueError("one state row per generator required")
        if isinstance(time_indices, (int, np.integer)):
            time_indices = [int(time_indices)] * m
        elif len(time_indices) != m:
            raise ValueError("one time index per member required")
        with _span("sampler.step_members", category="diffusion",
                   members=m, time_index=int(time_indices[0])):
            cond = self.state_norm.normalize(states)
            forc_cache: dict[int, np.ndarray] = {}
            for idx in time_indices:
                if idx not in forc_cache:
                    forc_cache[idx] = self._normalized_forcings(idx)
            forc = np.stack([forc_cache[idx] for idx in time_indices])
            solver = DpmSolver2S(self.flow, self.solver_config)
            residual_std = solver.sample_members(
                self._batched_velocity_fn(cond, forc), states.shape[1:],
                list(rngs))
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("sampler.data_steps",
                                 "autoregressive data steps sampled").inc(m)
            return states + self.residual_norm.denormalize(residual_std)

    def rollout(self, state0: np.ndarray, n_steps: int,
                rng: np.random.Generator, start_index: int = 0) -> np.ndarray:
        """Autoregressive forecast: ``(n_steps + 1, H, W, C)`` incl. IC."""
        states = np.empty((n_steps + 1,) + state0.shape, dtype=np.float32)
        states[0] = state0
        with _span("sampler.rollout", category="diffusion", n_steps=n_steps,
                   start_index=start_index):
            for i in range(n_steps):
                states[i + 1] = self.step(states[i], start_index + i, rng)
        return states

    def perturbed_initial_condition(self, state0: np.ndarray,
                                    rng: np.random.Generator,
                                    amplitude: float) -> np.ndarray:
        """Initial-condition perturbation scaled by the one-step residual
        statistics (the paper's future-work lever for improving the
        spread/skill ratio: "Improving the spread/skill ratio through
        initial condition perturbations ... may improve ensemble spread
        without hurting skill")."""
        noise = rng.normal(size=state0.shape).astype(np.float32)
        scaled = self.residual_norm.denormalize(noise) \
            - self.residual_norm.denormalize(np.zeros_like(noise))
        return state0 + amplitude * scaled

    def member_rngs(self, n_members: int,
                    seed: int) -> list[np.random.Generator]:
        """The per-member generator convention shared by both rollout paths
        and the serving cache (member ``m`` streams from
        ``default_rng(seed + 1000 m)``)."""
        return [np.random.default_rng(seed + 1000 * m)
                for m in range(n_members)]

    def ensemble_rollout(self, state0: np.ndarray, n_steps: int,
                         n_members: int, seed: int = 0,
                         start_index: int = 0,
                         ic_perturbation: float = 0.0,
                         batched: bool = True) -> np.ndarray:
        """Ensemble by resampling the diffusion noise per member (and
        optionally perturbing initial conditions):
        ``(n_members, n_steps + 1, H, W, C)``.

        ``batched=True`` (default) advances all members in lockstep through
        one stacked model forward per solver evaluation; ``batched=False``
        keeps the original per-member loop.  The two paths are
        bit-identical (asserted by ``tests/diffusion``): every member's
        noise comes from its own seeded generator either way.
        """
        if not batched:
            return self._ensemble_rollout_sequential(
                state0, n_steps, n_members, seed, start_index,
                ic_perturbation)
        rngs = self.member_rngs(n_members, seed)
        out = np.empty((n_members, n_steps + 1) + state0.shape,
                       dtype=np.float32)
        for m, rng in enumerate(rngs):
            start = state0
            if ic_perturbation > 0.0 and m > 0:
                # Member 0 stays unperturbed (the control member).
                start = self.perturbed_initial_condition(state0, rng,
                                                         ic_perturbation)
            out[m, 0] = start
        with _span("sampler.ensemble_rollout", category="diffusion",
                   n_steps=n_steps, members=n_members,
                   start_index=start_index):
            states = out[:, 0].copy()
            for i in range(n_steps):
                states = self.step_members(states, start_index + i, rngs)
                out[:, i + 1] = states
        return out

    def _ensemble_rollout_sequential(self, state0: np.ndarray, n_steps: int,
                                     n_members: int, seed: int,
                                     start_index: int,
                                     ic_perturbation: float) -> np.ndarray:
        out = np.empty((n_members, n_steps + 1) + state0.shape,
                       dtype=np.float32)
        for m, rng in enumerate(self.member_rngs(n_members, seed)):
            start = state0
            if ic_perturbation > 0.0 and m > 0:
                # Member 0 stays unperturbed (the control member).
                start = self.perturbed_initial_condition(state0, rng,
                                                         ic_perturbation)
            out[m] = self.rollout(start, n_steps, rng, start_index)
        return out
