"""TrigFlow diffusion parameterization (paper Section VI-B, after Lu & Song).

Clean samples ``x0 ~ p_d`` are noised by spherical interpolation with
Gaussian noise::

    x_t = cos(t) * x0 + sin(t) * z,      z ~ N(0, sigma_d^2 I)

with diffusion time ``t = arctan(e^tau / sigma_d) in [0, pi/2]`` and ``tau``
drawn log-uniformly between ``log(sigma_min)`` and ``log(sigma_max)``
(empirically 0.2 and 500 — a heavy-tailed noise prior).  The network learns
the velocity ``v_t = cos(t) z − sin(t) x0`` via an L2 objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrigFlow"]


@dataclass(frozen=True)
class TrigFlow:
    """Stateless TrigFlow helper bundling the paper's constants."""

    sigma_d: float = 1.0
    sigma_min: float = 0.2
    sigma_max: float = 500.0

    # -- time / noise-level mappings ---------------------------------------
    def tau_to_t(self, tau: np.ndarray) -> np.ndarray:
        """Map log-noise ``tau`` to the angular time ``t``."""
        return np.arctan(np.exp(tau) / self.sigma_d)

    def t_to_tau(self, t: np.ndarray) -> np.ndarray:
        return np.log(np.tan(t) * self.sigma_d)

    def sample_tau(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Log-uniform prior over noise levels."""
        u = rng.uniform(0.0, 1.0, size=n)
        return ((1.0 - u) * np.log(self.sigma_min)
                + u * np.log(self.sigma_max)).astype(np.float32)

    def sample_t(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.tau_to_t(self.sample_tau(rng, n)).astype(np.float32)

    @property
    def t_min(self) -> float:
        return float(self.tau_to_t(np.log(self.sigma_min)))

    @property
    def t_max(self) -> float:
        return float(self.tau_to_t(np.log(self.sigma_max)))

    # -- interpolant ---------------------------------------------------------
    def interpolate(self, x0: np.ndarray, z: np.ndarray, t: np.ndarray
                    ) -> np.ndarray:
        """``x_t = cos(t) x0 + sin(t) z`` with ``t`` broadcast per-sample."""
        ct, st = self._angles(t, x0.ndim)
        return ct * x0 + st * z

    def velocity_target(self, x0: np.ndarray, z: np.ndarray, t: np.ndarray
                        ) -> np.ndarray:
        """``v_t = cos(t) z − sin(t) x0``, the regression target."""
        ct, st = self._angles(t, x0.ndim)
        return ct * z - st * x0

    def denoise_from_velocity(self, x_t: np.ndarray, v: np.ndarray,
                              t: np.ndarray) -> np.ndarray:
        """Recover the implied clean sample: ``x0 = cos(t) x_t − sin(t) v``.

        (Inverting the rotation [x_t; v] = R(t) [x0; z].)
        """
        ct, st = self._angles(t, x_t.ndim)
        return ct * x_t - st * v

    @staticmethod
    def _angles(t: np.ndarray, ndim: int) -> tuple[np.ndarray, np.ndarray]:
        t = np.asarray(t)
        if t.dtype != np.float64:  # keep FP64 when callers ask for it
            t = t.astype(np.float32)
        shape = t.shape + (1,) * (ndim - t.ndim)
        t = t.reshape(shape)
        return np.cos(t), np.sin(t)

    # -- training-pair construction -----------------------------------------
    def training_pair(self, x0: np.ndarray, rng_t: np.random.Generator,
                      rng_z: np.random.Generator
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``(x_t, t, v_target)`` for a batch of clean samples.

        Two independent generators implement the paper's distributed seeding
        rule: ``rng_t`` (the noise *level*) is shared across all
        model-parallel ranks so every shard of one sample sees the same ``t``;
        ``rng_z`` (the Gaussian noise field) is "truly random across ranks",
        spatially uncorrelated.
        """
        batch = x0.shape[0]
        t = self.sample_t(rng_t, batch)
        z = rng_z.normal(0.0, self.sigma_d, size=x0.shape).astype(np.float32)
        x_t = self.interpolate(x0, z, t)
        v = self.velocity_target(x0, z, t)
        return x_t, t, v
