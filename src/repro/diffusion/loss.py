"""Physically weighted diffusion objective (paper Eq. 1–2).

The per-pixel velocity regression error is weighted by a latitude factor
``alpha(s)`` (the sphere's re-gridded cell areas) and a per-variable factor
``kappa(v)`` (pressure weighting emphasizing near-surface levels).  Both
weight vectors are produced by :mod:`repro.data` and normalized to mean 1 so
the weighted loss is directly comparable to an unweighted MSE.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["weighted_velocity_loss", "velocity_loss"]


def velocity_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Plain (unweighted) TrigFlow objective ``|F_theta − v_t|^2``."""
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def weighted_velocity_loss(pred: Tensor, target: np.ndarray,
                           lat_weights: np.ndarray,
                           var_weights: np.ndarray) -> Tensor:
    """Latitude- and variable-weighted L2 loss.

    Parameters
    ----------
    pred:
        ``(B, H, W, C)`` network output (sigma_d * F_theta).
    target:
        ``(B, H, W, C)`` velocity target.
    lat_weights:
        ``(H,)`` latitude weights alpha(s); normalized internally to mean 1.
    var_weights:
        ``(C,)`` variable weights kappa(v); normalized internally to mean 1.
    """
    lat = np.asarray(lat_weights, dtype=np.float32)
    var = np.asarray(var_weights, dtype=np.float32)
    if pred.shape[1] != lat.shape[0]:
        raise ValueError(f"lat_weights length {lat.shape[0]} != H {pred.shape[1]}")
    if pred.shape[-1] != var.shape[0]:
        raise ValueError(f"var_weights length {var.shape[0]} != C {pred.shape[-1]}")
    lat = lat / lat.mean()
    var = var / var.mean()
    weight = lat[None, :, None, None] * var[None, None, None, :]
    diff = pred - Tensor(target)
    return (diff * diff * Tensor(weight)).mean()
