"""Content-addressed model registry: immutable versions + lineage.

Operational earth-system models ship as a *stream* of retrained and
fine-tuned versions; what separates a research checkpoint from a
deployable release is exactly the metadata this registry makes durable:

* **artifacts** — weights, model config, and normalizer statistics, each
  stored once under its SHA-256 content digest (``blobs/<digest>.npz`` /
  ``.json``).  The weights digest is :func:`repro.resilience.state_digest`
  over the ``state_dict`` — byte-identical to the digest the forecast
  cache keys entries with, so "registry version" and "serving cache
  namespace" are the same address space;
* **lineage** — parent version, training step, seed, and free-form
  provenance (checkpoint path, experiment name);
* **scorecard** — eval-harness skill numbers attached at registration
  and consulted by the promotion gate (:mod:`repro.registry.gate`);
* **status** — a validated lifecycle state machine
  ``registered → {servable | rejected}``, ``servable → canary → {live |
  rolled_back}``, ``live → retired``, every transition booked as
  ``registry.transitions`` metrics and flight-recorder events.

The index file is one JSON document written via
:func:`repro.resilience.atomic_write` (tmp + fsync + rename), so a crash
mid-registration leaves either the old or the new index, never a torn
one; blobs are written before the index references them, so a referenced
blob always exists (the converse — an unreferenced blob after a crash —
is what :meth:`ModelRegistry.gc` collects).
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import re
from dataclasses import dataclass, field

import numpy as np

from ..data.normalize import FieldNormalizer
from ..model import Aeris
from ..model.config import AerisConfig, config_from_dict, config_to_dict
from ..obs.profile import metrics as _obs_metrics, record_event
from ..resilience.atomic import atomic_write
from ..resilience.checksum import content_digest, state_digest

__all__ = ["RegistryError", "ModelVersion", "ModelRegistry",
           "STATUSES", "TRANSITIONS"]

#: Lifecycle states a version can be in.
STATUSES = ("registered", "servable", "rejected", "canary", "live",
            "retired", "rolled_back")

#: Legal transitions (terminal states map to an empty tuple).
TRANSITIONS: dict[str, tuple[str, ...]] = {
    "registered": ("servable", "rejected"),
    "servable": ("canary", "live", "retired"),
    "canary": ("live", "rolled_back"),
    "live": ("retired",),
    "rejected": (),
    "retired": (),
    "rolled_back": (),
}

_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_INDEX_FORMAT = 1


class RegistryError(Exception):
    """Typed failure for registry operations (missing version, illegal
    transition, digest mismatch, unregisterable checkpoint)."""


@dataclass
class ModelVersion:
    """One immutable registered model version (metadata only; the bytes
    live in the blob store under the digests recorded here)."""

    version: str
    status: str = "registered"
    created_step: int = 0
    seed: int = 0
    parent: str | None = None
    source: str = ""
    weights_digest: str = ""
    config_digest: str = ""
    artifacts: dict = field(default_factory=dict)   # name -> digest
    scorecard: dict | None = None
    history: list = field(default_factory=list)     # transition records

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ModelVersion":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in d.items() if k in known})


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _json_digest(obj) -> str:
    return hashlib.sha256(_canonical_json(obj).encode()).hexdigest()


def normalizer_digest(norm: FieldNormalizer) -> str:
    """Content address of a normalizer's statistics."""
    return state_digest({"mean": norm.mean, "std": norm.std})


class ModelRegistry:
    """Content-addressed store of model versions under one root dir."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.blob_dir = os.path.join(self.root, "blobs")
        self.index_path = os.path.join(self.root, "index.json")
        os.makedirs(self.blob_dir, exist_ok=True)
        self._index = self._load_index()

    # -- index persistence -------------------------------------------------
    def _load_index(self) -> dict:
        if not os.path.exists(self.index_path):
            return {"format": _INDEX_FORMAT, "versions": {}}
        with open(self.index_path) as fh:
            index = json.load(fh)
        if index.get("format") != _INDEX_FORMAT:
            raise RegistryError(
                f"unsupported registry index format {index.get('format')!r}")
        return index

    def _save_index(self) -> None:
        atomic_write(self.index_path,
                     json.dumps(self._index, indent=2, sort_keys=True))

    # -- blob store --------------------------------------------------------
    def _blob_path(self, digest: str, kind: str) -> str:
        ext = "npz" if kind == "arrays" else "json"
        return os.path.join(self.blob_dir, f"{digest}.{ext}")

    def _put_arrays(self, arrays: dict) -> str:
        """Store a named array mapping once, addressed by its content.

        The digest is over the *arrays* (names, dtypes, shapes, bytes),
        not the npz container bytes, so re-serialization can never fork
        the address of identical content.
        """
        digest = state_digest(arrays)
        path = self._blob_path(digest, "arrays")
        if not os.path.exists(path):
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            atomic_write(path, buf.getvalue())
        return digest

    def _put_json(self, obj) -> str:
        digest = _json_digest(obj)
        path = self._blob_path(digest, "json")
        if not os.path.exists(path):
            atomic_write(path, _canonical_json(obj))
        return digest

    def _get_arrays(self, digest: str) -> dict:
        path = self._blob_path(digest, "arrays")
        if not os.path.exists(path):
            raise RegistryError(f"missing blob {digest[:12]} (npz)")
        with np.load(path) as npz:
            arrays = {k: npz[k] for k in npz.files}
        actual = state_digest(arrays)
        if actual != digest:
            raise RegistryError(
                f"blob {digest[:12]} content digest mismatch "
                f"(got {actual[:12]}): corrupted blob store")
        return arrays

    def _get_json(self, digest: str) -> dict:
        path = self._blob_path(digest, "json")
        if not os.path.exists(path):
            raise RegistryError(f"missing blob {digest[:12]} (json)")
        with open(path) as fh:
            text = fh.read()
        obj = json.loads(text)
        if _json_digest(obj) != digest:
            raise RegistryError(
                f"blob {digest[:12]} content digest mismatch: "
                "corrupted blob store")
        return obj

    # -- bookkeeping -------------------------------------------------------
    def _book(self, event: str, version: str, **data) -> None:
        registry = _obs_metrics()
        if registry is not None:
            if event == "transition":
                registry.counter(
                    "registry.transitions",
                    "version lifecycle transitions").inc(
                    1, src=data.get("src", ""), dst=data.get("dst", ""))
            else:
                registry.counter(
                    "registry.registrations",
                    "versions registered").inc(1)
        record_event(f"registry.{event}", subsystem="registry",
                     version=version, **data)

    # -- queries -----------------------------------------------------------
    def versions(self) -> list[str]:
        return list(self._index["versions"])

    def __contains__(self, version: str) -> bool:
        return version in self._index["versions"]

    def get(self, version: str) -> ModelVersion:
        try:
            record = self._index["versions"][version]
        except KeyError:
            raise RegistryError(f"unknown version {version!r}") from None
        return ModelVersion.from_dict(record)

    def live(self) -> str | None:
        """The single live version, if any."""
        for vid, record in self._index["versions"].items():
            if record["status"] == "live":
                return vid
        return None

    def latest(self) -> str | None:
        versions = self.versions()
        return versions[-1] if versions else None

    def lineage(self, version: str) -> list[str]:
        """Ancestry chain, newest first (``version`` included)."""
        chain = []
        cursor: str | None = version
        while cursor is not None:
            if cursor in chain:
                raise RegistryError(f"lineage cycle at {cursor!r}")
            chain.append(cursor)
            cursor = self.get(cursor).parent
        return chain

    # -- registration ------------------------------------------------------
    def _next_version(self) -> str:
        n = len(self._index["versions"]) + 1
        while f"v{n:04d}" in self._index["versions"]:
            n += 1
        return f"v{n:04d}"

    def register_state(self, state: dict, config: AerisConfig,
                       state_norm: FieldNormalizer,
                       residual_norm: FieldNormalizer,
                       forcing_norm: FieldNormalizer | None = None, *,
                       version: str | None = None, parent: str | None = None,
                       step: int = 0, seed: int = 0, source: str = "",
                       scorecard: dict | None = None) -> ModelVersion:
        """Register a raw ``state_dict`` + config + normalizers.

        Blobs are written first, the index last (atomically) — a crash in
        between leaves only unreferenced blobs, which ``gc`` reclaims.
        """
        if version is None:
            version = self._next_version()
        if not _VERSION_RE.match(version):
            raise RegistryError(f"invalid version name {version!r}")
        if version in self:
            raise RegistryError(f"version {version!r} already registered")
        if parent is not None and parent not in self:
            raise RegistryError(f"unknown parent version {parent!r}")

        weights = self._put_arrays(state)
        cfg = self._put_json(config_to_dict(config))
        artifacts = {"weights": weights, "config": cfg}
        norms = {"state": state_norm, "residual": residual_norm,
                 "forcing": forcing_norm}
        for name, norm in norms.items():
            if norm is not None:
                artifacts[f"{name}_norm"] = self._put_arrays(
                    {"mean": norm.mean, "std": norm.std})

        record = ModelVersion(
            version=version, status="registered", created_step=int(step),
            seed=int(seed), parent=parent, source=source,
            weights_digest=weights, config_digest=cfg,
            artifacts=artifacts, scorecard=scorecard)
        self._index["versions"][version] = record.to_dict()
        self._save_index()
        self._book("register", version, parent=parent or "",
                   weights=weights[:12], step=int(step))
        return record

    def register(self, model, state_norm: FieldNormalizer,
                 residual_norm: FieldNormalizer,
                 forcing_norm: FieldNormalizer | None = None,
                 **kwargs) -> ModelVersion:
        """Register a live model object (uses ``model.config`` and
        ``model.state_dict()``)."""
        return self.register_state(model.state_dict(), model.config,
                                   state_norm, residual_norm, forcing_norm,
                                   **kwargs)

    def register_from_checkpoint(self, directory: str, *,
                                 prefer_ema: bool = True,
                                 version: str | None = None,
                                 parent: str | None = None,
                                 source: str | None = None,
                                 scorecard: dict | None = None
                                 ) -> ModelVersion:
        """Register straight from a sharded checkpoint directory.

        Requires the checkpoint manifest to carry the ``lineage`` block
        that :meth:`repro.train.Trainer.save` embeds (model config +
        normalizer statistics); pre-lineage checkpoints raise a typed
        :class:`RegistryError` telling the caller to re-save or register
        the components explicitly via :meth:`register_state`.
        """
        from ..train.checkpoint import read_sharded_checkpoint
        shards, extra = read_sharded_checkpoint(directory)
        lineage = extra.get("lineage")
        if lineage is None:
            raise RegistryError(
                f"checkpoint {directory!r} predates lineage manifests; "
                "re-save it with a current Trainer or use register_state "
                "with explicit config + normalizers")
        config = config_from_dict(lineage["model_config"])
        norms: dict[str, FieldNormalizer | None] = {}
        for name in ("state", "residual", "forcing"):
            stats = lineage["normalizers"].get(name)
            if stats is None:
                norms[name] = None
                continue
            norm = FieldNormalizer(
                mean=np.asarray(stats["mean"], dtype=np.float32),
                std=np.asarray(stats["std"], dtype=np.float32))
            if normalizer_digest(norm) != stats["digest"]:
                raise RegistryError(
                    f"{name} normalizer stats in {directory!r} do not "
                    "match their recorded digest")
            norms[name] = norm
        state = shards.get("ema") if prefer_ema else None
        if state is None:
            state = shards.get("model")
        if state is None:
            raise RegistryError(
                f"checkpoint {directory!r} has no model/ema section")
        return self.register_state(
            dict(state), config, norms["state"], norms["residual"],
            norms["forcing"], version=version, parent=parent,
            step=int(extra.get("step", 0)),
            seed=int(lineage.get("seed", extra.get("seed", 0))),
            source=directory if source is None else source,
            scorecard=scorecard)

    # -- lifecycle ---------------------------------------------------------
    def set_status(self, version: str, status: str,
                   reason: str = "") -> ModelVersion:
        """Transition a version; illegal moves raise ``RegistryError``."""
        if status not in STATUSES:
            raise RegistryError(f"unknown status {status!r}")
        record = self.get(version)
        if status not in TRANSITIONS[record.status]:
            raise RegistryError(
                f"illegal transition {record.status!r} -> {status!r} "
                f"for {version!r}")
        if status == "live":
            incumbent = self.live()
            if incumbent is not None and incumbent != version:
                raise RegistryError(
                    f"cannot mark {version!r} live while {incumbent!r} "
                    "is live; retire it first")
        src = record.status
        record.status = status
        record.history.append({"src": src, "dst": status, "reason": reason})
        self._index["versions"][version] = record.to_dict()
        self._save_index()
        self._book("transition", version, src=src, dst=status,
                   reason=reason)
        return record

    def attach_scorecard(self, version: str, scorecard: dict) -> None:
        record = self.get(version)
        record.scorecard = scorecard
        self._index["versions"][version] = record.to_dict()
        self._save_index()
        self._book("scorecard", version,
                   metrics=",".join(sorted(scorecard.get("summary", {}))))

    # -- materialization ---------------------------------------------------
    def load_state(self, version: str) -> dict:
        """The version's weights as a ``state_dict`` (digest-verified)."""
        return self._get_arrays(self.get(version).weights_digest)

    def load_config(self, version: str) -> AerisConfig:
        return config_from_dict(self._get_json(
            self.get(version).config_digest))

    def load_normalizer(self, version: str,
                        name: str) -> FieldNormalizer | None:
        digest = self.get(version).artifacts.get(f"{name}_norm")
        if digest is None:
            return None
        arrays = self._get_arrays(digest)
        return FieldNormalizer(mean=arrays["mean"], std=arrays["std"])

    def load_model(self, version: str) -> Aeris:
        """Instantiate the architecture and load the version's weights."""
        model = Aeris(self.load_config(version))
        model.load_state_dict(self.load_state(version))
        model.eval()
        return model

    def forecaster(self, version: str, forcing_fn, flow=None,
                   solver_config=None):
        """Build a ready-to-serve :class:`ResidualForecaster`."""
        from ..diffusion.sampler import ResidualForecaster
        return ResidualForecaster(
            model=self.load_model(version),
            state_norm=self.load_normalizer(version, "state"),
            residual_norm=self.load_normalizer(version, "residual"),
            forcing_fn=forcing_fn,
            forcing_norm=self.load_normalizer(version, "forcing"),
            **({"flow": flow} if flow is not None else {}),
            **({"solver_config": solver_config}
               if solver_config is not None else {}))

    # -- maintenance -------------------------------------------------------
    def referenced_blobs(self) -> set:
        refs = set()
        for record in self._index["versions"].values():
            refs.update(record["artifacts"].values())
        return refs

    def gc(self, dry_run: bool = False) -> list[str]:
        """Delete unreferenced blob files; returns the digests removed.

        Safe by construction: registration writes blobs before the index
        references them, so anything on disk but not in the index is
        either an interrupted registration or content from a deleted
        index entry — never a referenced artifact.
        """
        refs = self.referenced_blobs()
        removed = []
        for fname in sorted(os.listdir(self.blob_dir)):
            digest = fname.rsplit(".", 1)[0]
            if digest not in refs:
                if not dry_run:
                    os.remove(os.path.join(self.blob_dir, fname))
                removed.append(digest)
        if removed and not dry_run:
            self._book("gc", "", removed=len(removed))
        return removed

    def verify(self) -> list[str]:
        """Re-hash every referenced blob; returns human-readable findings
        (empty means the store is clean)."""
        findings = []
        for vid, record in self._index["versions"].items():
            for name, digest in record["artifacts"].items():
                kind = "json" if name == "config" else "arrays"
                try:
                    if kind == "json":
                        self._get_json(digest)
                    else:
                        self._get_arrays(digest)
                except RegistryError as exc:
                    findings.append(f"{vid}:{name}: {exc}")
        return findings

    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for record in self._index["versions"].values():
            by_status[record["status"]] = by_status.get(
                record["status"], 0) + 1
        blob_bytes = sum(
            os.path.getsize(os.path.join(self.blob_dir, f))
            for f in os.listdir(self.blob_dir))
        return {"versions": len(self._index["versions"]),
                "by_status": by_status,
                "blobs": len(os.listdir(self.blob_dir)),
                "blob_bytes": blob_bytes}
