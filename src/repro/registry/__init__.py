"""Model lifecycle registry: content-addressed versions, skill gating.

Closes the train → eval → serve loop.  The pieces:

* :mod:`~repro.registry.store` — immutable versioned artifacts (weights,
  config, normalizer stats) under SHA-256 content digests, a lineage
  manifest per version, and a crash-safe atomic JSON index;
* :mod:`~repro.registry.scorecard` — eval-harness adapter producing the
  JSON skill record attached at registration;
* :mod:`~repro.registry.gate` — the promotion gate: a candidate becomes
  ``servable`` only if no worse than the incumbent within tolerance.

The online half — canary rollout, shadow comparison, auto-promote /
auto-rollback — lives in :mod:`repro.serve.deploy`, driving versions
registered here through ``servable → canary → live`` (or back).
"""

from .gate import GateConfig, GateDecision, evaluate_gate, gate_version
from .scorecard import ScorecardConfig, build_scorecard, scores_to_scorecard
from .store import (STATUSES, TRANSITIONS, ModelRegistry, ModelVersion,
                    RegistryError)

__all__ = [
    "ModelRegistry", "ModelVersion", "RegistryError",
    "STATUSES", "TRANSITIONS",
    "ScorecardConfig", "build_scorecard", "scores_to_scorecard",
    "GateConfig", "GateDecision", "evaluate_gate", "gate_version",
]
