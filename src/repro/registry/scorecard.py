"""Eval-harness adapter: score a forecaster into a JSON-able scorecard.

A registry scorecard is the skill evidence a version carries for the
rest of its life: per-``(variable, lead)`` ensemble-mean RMSE, fair
CRPS, and spread/skill ratio from :class:`repro.eval.MediumRangeEvaluator`
on a held-out window, plus per-metric aggregates the promotion gate
compares.  Keys are flattened to ``"VAR/dLEAD"`` strings so the card
survives the JSON round trip through the registry index unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.harness import EvalProtocol, MediumRangeEvaluator, Scores

__all__ = ["ScorecardConfig", "build_scorecard", "scores_to_scorecard"]

#: Metrics recorded per (variable, lead) cell.
_METRICS = ("rmse", "crps", "ssr")


@dataclass(frozen=True)
class ScorecardConfig:
    """How to score a candidate: eval protocol + ensemble settings.

    The defaults are sized for the toy reanalysis (short leads, few ICs)
    so gating stays cheap enough to run inside tests and examples; an
    operational deployment would widen the protocol, not change the
    schema.
    """

    protocol: EvalProtocol = EvalProtocol(
        lead_days=(1,), variables=("Z500", "T2M"),
        n_initial_conditions=2, steps_per_day=2, first_ic_offset=2)
    n_members: int = 3
    seed: int = 0


def scores_to_scorecard(scores: Scores, config: ScorecardConfig,
                        **extra) -> dict:
    """Flatten harness :class:`Scores` into the registry's JSON schema."""
    cells: dict[str, dict[str, float]] = {}
    for metric in _METRICS:
        for (var, lead), value in getattr(scores, metric).items():
            cells.setdefault(f"{var}/d{lead}", {})[metric] = float(value)
    summary = {}
    for metric in _METRICS:
        values = [c[metric] for c in cells.values()
                  if metric in c and np.isfinite(c[metric])]
        if values:
            summary[metric] = float(np.mean(values))
    return {
        "protocol": {
            "lead_days": list(config.protocol.lead_days),
            "variables": list(config.protocol.variables),
            "n_initial_conditions": config.protocol.n_initial_conditions,
            "steps_per_day": config.protocol.steps_per_day,
            "n_members": config.n_members,
            "seed": config.seed,
        },
        "cells": cells,
        "summary": summary,
        **extra,
    }


def build_scorecard(forecaster, archive,
                    config: ScorecardConfig = ScorecardConfig()) -> dict:
    """Evaluate ``forecaster`` on ``archive``'s held-out test split.

    Works for anything with the ``ensemble_rollout(state0, n_steps,
    n_members, seed, start_index)`` contract — both the diffusion
    :class:`ResidualForecaster` and the one-step consistency student.
    """
    evaluator = MediumRangeEvaluator(archive, config.protocol)

    def rollout(state0, n_steps, ic):
        return forecaster.ensemble_rollout(
            state0, n_steps, n_members=config.n_members,
            seed=config.seed, start_index=ic)

    return scores_to_scorecard(evaluator.evaluate(rollout), config)
