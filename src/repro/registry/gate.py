"""Skill-gated promotion: candidate vs incumbent, within tolerance.

The gate is the registry's first line of defense: a candidate version
only becomes ``servable`` if its scorecard is *no worse than the
incumbent's* on the gated metrics within a relative tolerance.  Both
CRPS and RMSE are lower-is-better; the spread/skill ratio (distance of
SSR from 1) can be added for calibration-sensitive deployments.  A
candidate with no incumbent to beat (first registration) passes by
definition — there is nothing live to degrade.

Gating is *offline* evidence; the canary controller
(:mod:`repro.serve.deploy`) is the online check.  A candidate must clear
both: the gate catches regressions measurable on the held-out window,
the canary catches what only shows up under live traffic (deployment
skew, corrupted weight loads, guardrail violations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.profile import metrics as _obs_metrics, record_event
from .store import ModelRegistry, RegistryError

__all__ = ["GateConfig", "GateDecision", "evaluate_gate", "gate_version"]

#: Metrics where smaller is better (skill scores).
_LOWER_IS_BETTER = ("rmse", "crps")


@dataclass(frozen=True)
class GateConfig:
    """Which scorecard aggregates to gate on, and how much slack."""

    metrics: tuple = ("crps", "rmse")
    #: Candidate may exceed the incumbent by at most this fraction.
    rel_tolerance: float = 0.02
    #: Also bound the spread/skill ratio's distance from 1.
    check_ssr: bool = False
    ssr_tolerance: float = 0.25


@dataclass
class GateDecision:
    """Outcome of one candidate-vs-incumbent comparison."""

    passed: bool
    candidate: str
    incumbent: str | None
    comparisons: list = field(default_factory=list)
    reasons: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"passed": self.passed, "candidate": self.candidate,
                "incumbent": self.incumbent,
                "comparisons": self.comparisons, "reasons": self.reasons}


def _aggregate(scorecard: dict, metric: str) -> float | None:
    value = scorecard.get("summary", {}).get(metric)
    return None if value is None else float(value)


def evaluate_gate(candidate_card: dict, incumbent_card: dict | None,
                  config: GateConfig = GateConfig(), *,
                  candidate: str = "candidate",
                  incumbent: str | None = None) -> GateDecision:
    """Pure comparison of two scorecards (no registry side effects)."""
    decision = GateDecision(passed=True, candidate=candidate,
                            incumbent=incumbent)
    if incumbent_card is None:
        decision.reasons.append("no incumbent: candidate passes by default")
        return decision
    for metric in config.metrics:
        if metric not in _LOWER_IS_BETTER:
            raise RegistryError(f"ungateable metric {metric!r}")
        cand = _aggregate(candidate_card, metric)
        inc = _aggregate(incumbent_card, metric)
        if cand is None or inc is None:
            decision.passed = False
            decision.reasons.append(
                f"{metric}: missing from "
                f"{'candidate' if cand is None else 'incumbent'} scorecard")
            continue
        bound = inc * (1.0 + config.rel_tolerance)
        ok = cand <= bound
        decision.comparisons.append(
            {"metric": metric, "candidate": cand, "incumbent": inc,
             "bound": bound, "ok": ok})
        if not ok:
            decision.passed = False
            decision.reasons.append(
                f"{metric}: {cand:.4f} exceeds incumbent "
                f"{inc:.4f} (+{config.rel_tolerance:.0%} bound "
                f"{bound:.4f})")
    if config.check_ssr:
        cand = _aggregate(candidate_card, "ssr")
        if cand is not None:
            ok = abs(cand - 1.0) <= config.ssr_tolerance
            decision.comparisons.append(
                {"metric": "ssr", "candidate": cand, "incumbent": 1.0,
                 "bound": config.ssr_tolerance, "ok": ok})
            if not ok:
                decision.passed = False
                decision.reasons.append(
                    f"ssr: {cand:.3f} further than "
                    f"{config.ssr_tolerance} from 1")
    return decision


def gate_version(registry: ModelRegistry, candidate: str,
                 incumbent: str | None = None,
                 config: GateConfig = GateConfig()) -> GateDecision:
    """Gate a registered candidate and apply the resulting transition.

    ``registered`` → ``servable`` on pass, ``registered`` → ``rejected``
    on fail; the decision is booked as ``registry.gate_decisions`` and a
    ``registry.gate`` event either way.  The incumbent defaults to the
    registry's current ``live`` version.
    """
    record = registry.get(candidate)
    if record.scorecard is None:
        raise RegistryError(
            f"candidate {candidate!r} has no scorecard; attach one "
            "before gating")
    if incumbent is None:
        incumbent = registry.live()
    incumbent_card = None
    if incumbent is not None:
        incumbent_card = registry.get(incumbent).scorecard
        if incumbent_card is None:
            raise RegistryError(
                f"incumbent {incumbent!r} has no scorecard to gate "
                "against")
    decision = evaluate_gate(record.scorecard, incumbent_card, config,
                             candidate=candidate, incumbent=incumbent)
    metrics = _obs_metrics()
    if metrics is not None:
        metrics.counter("registry.gate_decisions",
                        "promotion-gate outcomes").inc(
            1, outcome="pass" if decision.passed else "fail")
    record_event("registry.gate", subsystem="registry",
                 severity="info" if decision.passed else "warning",
                 version=candidate, incumbent=incumbent or "",
                 passed=decision.passed,
                 reasons="; ".join(decision.reasons))
    reason = "; ".join(decision.reasons) or "gate passed"
    registry.set_status(candidate,
                        "servable" if decision.passed else "rejected",
                        reason=reason)
    return decision
