"""AERIS model: pixel-level non-hierarchical Swin diffusion transformer."""

from .aeris import Aeris
from .blocks import SwinBlock, SwinLayer
from .config import (
    SMALL,
    TABLE_II,
    TINY,
    AerisConfig,
    ParallelLayout,
    count_parameters,
)
from .rope import axial_rope_table
from .windows import (
    cyclic_shift,
    window_grid_shape,
    window_index_grid,
    window_merge,
    window_partition,
)

__all__ = [
    "Aeris", "SwinBlock", "SwinLayer",
    "AerisConfig", "ParallelLayout", "TABLE_II", "TINY", "SMALL",
    "count_parameters",
    "axial_rope_table",
    "window_partition", "window_merge", "cyclic_shift",
    "window_grid_shape", "window_index_grid",
]
