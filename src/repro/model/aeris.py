"""The AERIS network ``F_theta`` (paper Figure 3).

Pixel-level input pipeline: 2D sinusoidal positional encoding added to each
channel → learned linear embedding → N Swin layers (pre-RMSNorm, SwiGLU,
axial 2D RoPE, adaLN time conditioning) → final norm → linear decode back to
pixel space.

The network estimates the TrigFlow velocity for the *residual*
``x_0 = x_i − x_{i-1}``; conditioning (previous state and forcings) is
concatenated channel-wise with the noisy sample.
"""

from __future__ import annotations

import numpy as np

from ..nn import LayerNorm, Linear, Module, ModuleList, TimestepEmbedding
from ..nn import pixel_positional_field
from ..tensor import Tensor, concat
from .blocks import SwinLayer
from .config import AerisConfig

__all__ = ["Aeris"]


class Aeris(Module):
    """AERIS backbone.

    Call signature follows the diffusion conditioning of Section VI-B:
    ``forward(x_t, t, condition, forcings)`` where

    * ``x_t``        — noisy residual, ``(B, H, W, C)``;
    * ``t``          — diffusion times, ``(B,)`` in ``[0, π/2]``;
    * ``condition``  — previous state ``x_{i-1}``, ``(B, H, W, C)``;
    * ``forcings``   — ``(B, H, W, F)`` (TOA solar, orography, land-sea mask).

    Returns the velocity estimate ``(B, H, W, C)``.
    """

    def __init__(self, config: AerisConfig, seed: int = 0):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        p2 = config.patch_size ** 2
        self.posenc = pixel_positional_field(config.height, config.width)
        self.embed = Linear(config.in_channels * p2, config.dim, rng=rng)
        self.time_embed = TimestepEmbedding(config.dim, n_freqs=config.time_freqs,
                                            rng=rng)
        self.layers = ModuleList([
            SwinLayer(config, layer_index=i, rng=rng)
            for i in range(config.swin_layers)
        ])
        self.final_norm = LayerNorm(config.dim, elementwise_affine=False)
        self.decode = Linear(config.dim, config.channels * p2, rng=rng,
                             init_std=0.02)

    # -- patching ------------------------------------------------------------
    def _patchify(self, x: Tensor) -> Tensor:
        """``(B, H, W, C)`` -> ``(B, H/p, W/p, C·p²)`` (identity at p=1)."""
        p = self.config.patch_size
        if p == 1:
            return x
        b, h, w, c = x.shape
        x = x.reshape(b, h // p, p, w // p, p, c)
        return x.transpose(0, 1, 3, 2, 4, 5).reshape(b, h // p, w // p,
                                                     p * p * c)

    def _unpatchify(self, x: Tensor) -> Tensor:
        p = self.config.patch_size
        if p == 1:
            return x
        b, gh, gw, cpp = x.shape
        c = cpp // (p * p)
        x = x.reshape(b, gh, gw, p, p, c)
        return x.transpose(0, 1, 3, 2, 4, 5).reshape(b, gh * p, gw * p, c)

    # -- pipeline-stage access (used by repro.parallel.pipeline) ------------
    def embed_stage(self, x_t: Tensor, condition: Tensor,
                    forcings: Tensor) -> Tensor:
        """First pipeline stage: concat conditioning, add posenc, patchify,
        embed."""
        x = concat([x_t, condition, forcings], axis=-1)
        pos = Tensor(self.posenc[None, :, :, None])
        x = x + pos
        return self.embed(self._patchify(x))

    def decode_stage(self, h: Tensor) -> Tensor:
        """Last pipeline stage: final norm + linear back to pixel space."""
        return self._unpatchify(self.decode(self.final_norm(h)))

    def forward(self, x_t: Tensor, t: Tensor, condition: Tensor,
                forcings: Tensor) -> Tensor:
        h = self.embed_stage(x_t, condition, forcings)
        t_emb = self.time_embed(t)
        for layer in self.layers:
            h = layer(h, t_emb)
        return self.decode_stage(h)
