"""Axial-frequency 2D rotary position embeddings (paper Section V-B,
after Heo et al., "Rotary position embedding for vision transformer").

Queries and keys are rotated before the attention dot product "in place of
relative positional biases". Axial 2D RoPE splits each head's feature pairs
in half: the first half rotates with the token's *row* within the window,
the second half with its *column*. Because RoPE enters q·k only through
coordinate differences, the same window-local table serves shifted and
unshifted windows alike.
"""

from __future__ import annotations

import numpy as np

__all__ = ["axial_rope_table"]


def axial_rope_table(window: tuple[int, int], head_dim: int,
                     base: float = 100.0) -> tuple[np.ndarray, np.ndarray]:
    """Build (cos, sin) tables of shape ``(wh*ww, head_dim // 2)``.

    Parameters
    ----------
    window:
        (wh, ww) window shape; the table covers its row-major token order.
    head_dim:
        Per-head feature count; must be divisible by 4 (two axes × pairs).
    base:
        Frequency base. Windows are small (30–60 tokens per axis), so a much
        smaller base than the LLM-conventional 10000 keeps the highest
        wavelength comparable to the window extent.
    """
    if head_dim % 4:
        raise ValueError("head_dim must be divisible by 4 for axial 2D RoPE")
    wh, ww = window
    quarter = head_dim // 4
    freqs = base ** (-np.arange(quarter) / quarter)   # (quarter,)
    rows = np.repeat(np.arange(wh), ww)               # token row, row-major
    cols = np.tile(np.arange(ww), wh)                 # token column
    row_angles = rows[:, None] * freqs[None, :]       # (T, quarter)
    col_angles = cols[:, None] * freqs[None, :]       # (T, quarter)
    angles = np.concatenate([row_angles, col_angles], axis=1)  # (T, head_dim/2)
    return (np.cos(angles).astype(np.float32),
            np.sin(angles).astype(np.float32))
