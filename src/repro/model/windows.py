"""Swin window partitioning, merging, and cyclic shifting.

These are the data movements that Window Parallelism (SWiPe) distributes:
:func:`window_partition` produces the per-window token groups that attention
operates on; shifting by half a window every other layer grows the receptive
field without global attention.

The longitude axis of the Earth grid is periodic, so the cyclic roll used by
standard Swin is physically exact zonally; meridionally it is the usual Swin
cyclic-shift trick (the paper's quadrant layout exists precisely to
"accommodate the window shift").
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["window_partition", "window_merge", "cyclic_shift",
           "window_grid_shape", "window_index_grid"]


def window_grid_shape(height: int, width: int, window: tuple[int, int]
                      ) -> tuple[int, int]:
    """Number of windows along each axis; validates divisibility."""
    wh, ww = window
    if height % wh or width % ww:
        raise ValueError(f"grid {height}x{width} not divisible by window {window}")
    return height // wh, width // ww


def window_partition(x: Tensor, window: tuple[int, int]) -> Tensor:
    """``(B, H, W, D)`` -> ``(B, n_windows, wh*ww, D)``.

    Windows are ordered row-major over the window grid; tokens within a
    window are row-major over pixels.
    """
    b, h, w, d = x.shape
    wh, ww = window
    nh, nw = window_grid_shape(h, w, window)
    x = x.reshape(b, nh, wh, nw, ww, d)
    x = x.transpose(0, 1, 3, 2, 4, 5)           # (B, nh, nw, wh, ww, D)
    return x.reshape(b, nh * nw, wh * ww, d)


def window_merge(windows: Tensor, grid: tuple[int, int],
                 window: tuple[int, int]) -> Tensor:
    """Inverse of :func:`window_partition`."""
    h, w = grid
    wh, ww = window
    nh, nw = window_grid_shape(h, w, window)
    b = windows.shape[0]
    d = windows.shape[-1]
    x = windows.reshape(b, nh, nw, wh, ww, d)
    x = x.transpose(0, 1, 3, 2, 4, 5)           # (B, nh, wh, nw, ww, D)
    return x.reshape(b, h, w, d)


def cyclic_shift(x: Tensor, shift: tuple[int, int], reverse: bool = False) -> Tensor:
    """Roll the (H, W) axes of ``(B, H, W, D)`` by ``shift`` (Swin shift)."""
    sh, sw = shift
    if reverse:
        sh, sw = -sh, -sw
    return x.roll((-sh, -sw), axis=(1, 2))


def window_index_grid(height: int, width: int, window: tuple[int, int]
                      ) -> np.ndarray:
    """Window id of every pixel, shape ``(height, width)``; for tests and for
    the WP loader's shard computation."""
    nh, nw = window_grid_shape(height, width, window)
    wh, ww = window
    rows = np.arange(height) // wh
    cols = np.arange(width) // ww
    return (rows[:, None] * nw + cols[None, :]).astype(np.int64)
