"""AERIS transformer blocks: pre-RMSNorm, shifted-window attention with
axial 2D RoPE, SwiGLU, and adaLN diffusion-time conditioning (Figure 3)."""

from __future__ import annotations

import numpy as np

from ..kernels import (
    kernels_enabled,
    plan_merge,
    plan_partition,
    rope_tables,
    window_plan,
)
from ..nn import (
    AdaLNModulation,
    Module,
    ModuleList,
    MultiHeadAttention,
    RMSNorm,
    SwiGLU,
    modulate,
)
from ..tensor import Tensor
from .config import AerisConfig
from .windows import cyclic_shift, window_merge, window_partition

__all__ = ["SwinBlock", "SwinLayer"]


def _gate(x: Tensor, gamma: Tensor) -> Tensor:
    """Broadcast the adaLN gate ``gamma`` (B, D) over token axes of ``x``."""
    extra = x.ndim - gamma.ndim
    shape = (gamma.shape[0],) + (1,) * extra + (gamma.shape[-1],)
    return x * gamma.reshape(shape)


class SwinBlock(Module):
    """One transformer block operating on the ``(B, H, W, D)`` token grid.

    ``shifted`` blocks roll the grid by half a window before partitioning
    ("shifted every other layer"), which is what gives the stack a global
    receptive field without global attention.
    """

    def __init__(self, config: AerisConfig, shifted: bool,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        self.shifted = shifted
        self.window = config.window
        self.shift = (config.window[0] // 2, config.window[1] // 2)
        self.norm_attn = RMSNorm(config.dim)
        self.norm_ffn = RMSNorm(config.dim)
        self.attn = MultiHeadAttention(config.dim, config.heads, rng=rng)
        self.ffn = SwiGLU(config.dim, config.ffn_dim, rng=rng)
        self.ada_attn = AdaLNModulation(config.dim, config.dim, rng=rng)
        self.ada_ffn = AdaLNModulation(config.dim, config.dim, rng=rng)
        # Cached process-wide: every block of every model shares one pair of
        # read-only tables per (window, head_dim).
        self.rope_cos, self.rope_sin = rope_tables(
            config.window, config.head_dim)

    def attend(self, h: Tensor) -> Tensor:
        """Shift → partition → window attention → merge → unshift.

        On the planned path the shift+partition (and merge+unshift)
        round-trips collapse to one cached-index gather each.
        """
        if kernels_enabled():
            plan = window_plan((h.shape[1], h.shape[2]), self.window,
                               self.shift if self.shifted else (0, 0))
            windows = plan_partition(h, plan)
            windows = self.attn(windows, self.rope_cos, self.rope_sin)
            return plan_merge(windows, plan)
        if self.shifted:
            h = cyclic_shift(h, self.shift)
        windows = window_partition(h, self.window)
        windows = self.attn(windows, self.rope_cos, self.rope_sin)
        h = window_merge(windows, (h.shape[1], h.shape[2]), self.window)
        if self.shifted:
            h = cyclic_shift(h, self.shift, reverse=True)
        return h

    def forward(self, x: Tensor, t_emb: Tensor) -> Tensor:
        alpha_a, beta_a, gamma_a = self.ada_attn(t_emb)
        h = modulate(self.norm_attn(x), alpha_a, beta_a)
        x = x + _gate(self.attend(h), gamma_a)

        alpha_f, beta_f, gamma_f = self.ada_ffn(t_emb)
        h = modulate(self.norm_ffn(x), alpha_f, beta_f)
        x = x + _gate(self.ffn(h), gamma_f)
        return x


class SwinLayer(Module):
    """One Swin layer: ``blocks_per_layer`` transformer blocks with the
    shift alternating across the *global* block index (so a pipeline stage
    maps to one Swin layer, as in PP = L + 2)."""

    def __init__(self, config: AerisConfig, layer_index: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.blocks = ModuleList([
            SwinBlock(config,
                      shifted=bool((layer_index * config.blocks_per_layer + b) % 2),
                      rng=rng)
            for b in range(config.blocks_per_layer)
        ])

    def forward(self, x: Tensor, t_emb: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x, t_emb)
        return x
