"""AERIS model configurations.

Carries both the *symbolic* Table II configurations (1.3B–80B; used by the
performance model, never instantiated) and tiny *trainable* presets that run
the identical architecture end-to-end on the toy reanalysis.

Parameter-count formula
-----------------------
With the paper's PP = L + 2 rule (L = number of Swin layers) and two
transformer blocks per Swin layer, per-block parameters are

    attention          4·d²          (qkv + output projections)
    SwiGLU             3·d·f
    adaLN (×2)         6·d²          (two per block: attention + FFN branch)

which lands the Table II configs close to their nominal sizes (40B -> 40.8B,
80B -> 79.3B, 1.3B -> 1.32B; 13B and 26B are within ~10–25%, the residual
coming from unpublished block multiplicities). `count_parameters` implements
the exact formula used by the live model, validated in tests against
`Module.num_parameters()`.

Table II consistency note: the paper's Nodes column obeys nodes = WP × PP
only if the 40B row uses WP=36 (6×6) and the 80B row WP=64 (8×8) — the values
the running text uses ("40B ... WP=36 and PP=20", "80B ... WP=64"). We encode
those consistent values.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["AerisConfig", "ParallelLayout", "TABLE_II", "TINY", "SMALL",
           "count_parameters", "config_to_dict", "config_from_dict"]


@dataclass(frozen=True)
class ParallelLayout:
    """SWiPe layout for one configuration (Table II columns)."""

    wp: int              # window-parallel group size (A*B)
    wp_grid: tuple[int, int]  # (A, B) node grid
    pp: int              # pipeline stages (= swin layers + 2)
    sp: int              # sequence parallel degree (GPU tiles per node)
    gas: int             # gradient accumulation steps

    def __post_init__(self):
        if self.wp_grid[0] * self.wp_grid[1] != self.wp:
            raise ValueError(f"wp_grid {self.wp_grid} inconsistent with wp={self.wp}")

    @property
    def nodes_per_instance(self) -> int:
        """Nodes for a single model instance: WP × PP (paper Section VII-A)."""
        return self.wp * self.pp

    @property
    def tiles_per_instance(self) -> int:
        return self.nodes_per_instance * self.sp


@dataclass(frozen=True)
class AerisConfig:
    """Architecture + data-shape configuration."""

    name: str
    # data shape
    height: int = 720
    width: int = 1440
    channels: int = 70          # 5 surface + 5 atmospheric x 13 levels
    forcing_channels: int = 3   # TOA solar, surface geopotential, land-sea mask
    patch_size: int = 1         # pixel-level
    # architecture
    dim: int = 1536
    heads: int = 12
    ffn_dim: int = 9216
    swin_layers: int = 10       # L; PP = L + 2
    blocks_per_layer: int = 2
    window: tuple[int, int] = (60, 60)
    time_freqs: int = 32
    # parallel layout (symbolic for Table II configs)
    layout: ParallelLayout | None = None

    def __post_init__(self):
        if self.height % self.patch_size or self.width % self.patch_size:
            raise ValueError(
                f"{self.name}: image {self.height}x{self.width} not divisible "
                f"by patch size {self.patch_size}")
        grid_h = self.height // self.patch_size
        grid_w = self.width // self.patch_size
        if grid_h % self.window[0] or grid_w % self.window[1]:
            raise ValueError(
                f"{self.name}: token grid {grid_h}x{grid_w} not divisible "
                f"by window {self.window}")
        if self.dim % self.heads:
            raise ValueError(f"{self.name}: dim not divisible by heads")
        if (self.dim // self.heads) % 4:
            raise ValueError(f"{self.name}: head_dim must be divisible by 4 "
                             "for axial 2D RoPE")

    # -- derived quantities -------------------------------------------------
    @property
    def head_dim(self) -> int:
        return self.dim // self.heads

    @property
    def n_blocks(self) -> int:
        return self.swin_layers * self.blocks_per_layer

    @property
    def grid(self) -> tuple[int, int]:
        """Token grid after patching (patch 1 -> pixel grid)."""
        return (self.height // self.patch_size, self.width // self.patch_size)

    @property
    def seq_len(self) -> int:
        h, w = self.grid
        return h * w

    @property
    def tokens_per_window(self) -> int:
        return self.window[0] * self.window[1]

    @property
    def n_windows(self) -> int:
        h, w = self.grid
        return (h // self.window[0]) * (w // self.window[1])

    @property
    def in_channels(self) -> int:
        """Noisy-residual + initial-condition + forcings, concatenated
        channel-wise (paper: x_hat_t = [x_t, x_{i-1}, x_f])."""
        return 2 * self.channels + self.forcing_channels

    @property
    def pp_stages(self) -> int:
        """PP = L + 2: I/O + embedding isolated in first/last stages."""
        return self.swin_layers + 2


def config_to_dict(config: AerisConfig) -> dict:
    """JSON-safe dict for manifests / the model registry.

    Tuples become lists (JSON has no tuples); :func:`config_from_dict`
    restores them, so the pair round-trips exactly.
    """
    d = dataclasses.asdict(config)
    d["window"] = list(config.window)
    if config.layout is not None:
        d["layout"]["wp_grid"] = list(config.layout.wp_grid)
    return d


def config_from_dict(d: dict) -> AerisConfig:
    """Inverse of :func:`config_to_dict` (re-runs ``__post_init__``
    validation, so a manifest edited into inconsistency is rejected)."""
    d = dict(d)
    d["window"] = tuple(d["window"])
    layout = d.get("layout")
    if layout is not None:
        layout = dict(layout)
        layout["wp_grid"] = tuple(layout["wp_grid"])
        d["layout"] = ParallelLayout(**layout)
    return AerisConfig(**d)


def count_parameters(config: AerisConfig) -> int:
    """Analytical parameter count, mirroring the live model exactly."""
    d, f = config.dim, config.ffn_dim
    per_block = (
        3 * d * d + d * d          # qkv + out projections (no bias)
        + 3 * d * f                # SwiGLU gate/up/down (no bias)
        + 2 * (d * 3 * d + 3 * d)  # two adaLN modulations (weight + bias)
        + 2 * d                    # two RMSNorm gains
    )
    p2 = config.patch_size ** 2
    embed = config.in_channels * p2 * d + d
    decode = d * config.channels * p2 + config.channels * p2  # no final affine
    time_embed = config.time_freqs * d + d
    return config.n_blocks * per_block + embed + decode + time_embed


def _table_config(name, dim, heads, ffn, pp, wp, wp_grid, gas, sp=12) -> AerisConfig:
    return AerisConfig(
        name=name, dim=dim, heads=heads, ffn_dim=ffn, swin_layers=pp - 2,
        layout=ParallelLayout(wp=wp, wp_grid=wp_grid, pp=pp, sp=sp, gas=gas))


#: Table II configurations (Aurora SP=12 tiles/node; LUMI SP=8).
TABLE_II: dict[str, AerisConfig] = {
    "1.3B": _table_config("1.3B", 1536, 12, 9216, pp=12, wp=4, wp_grid=(2, 2), gas=60),
    "13B": _table_config("13B", 4608, 36, 25600, pp=16, wp=16, wp_grid=(4, 4), gas=48),
    "40B": _table_config("40B", 6144, 48, 40960, pp=20, wp=36, wp_grid=(6, 6), gas=140),
    "80B": _table_config("80B", 7680, 60, 46080, pp=26, wp=64, wp_grid=(8, 8), gas=52),
    "26B(L)": _table_config("26B(L)", 6144, 48, 32768, pp=14, wp=36, wp_grid=(6, 6),
                            gas=70, sp=8),
}

#: Nominal parameter counts as named in the paper, for reporting.
NOMINAL_PARAMS = {"1.3B": 1.3e9, "13B": 13e9, "40B": 40e9, "80B": 80e9,
                  "26B(L)": 26e9}

#: Trainable preset exercising every architectural feature at toy scale.
TINY = AerisConfig(
    name="tiny", height=16, width=32, channels=9, forcing_channels=3,
    dim=32, heads=4, ffn_dim=64, swin_layers=2, blocks_per_layer=2,
    window=(4, 4), time_freqs=8,
    layout=ParallelLayout(wp=4, wp_grid=(2, 2), pp=4, sp=2, gas=2))

#: Slightly larger trainable preset for the skill benchmarks.
SMALL = AerisConfig(
    name="small", height=24, width=48, channels=9, forcing_channels=3,
    dim=64, heads=4, ffn_dim=128, swin_layers=2, blocks_per_layer=2,
    window=(8, 8), time_freqs=16,
    layout=ParallelLayout(wp=4, wp_grid=(2, 2), pp=4, sp=2, gas=2))
