"""Structured medium-range evaluation harness (the WeatherBench2-style
protocol of the paper's Figure 5a, as a reusable API).

Feeds any ensemble system — a callable ``(state0, n_steps, ic_index) ->
(members, n_steps + 1, H, W, C)`` — through a common set of initial
conditions and scores it with latitude-weighted ensemble-mean RMSE, fair
CRPS, and the spread/skill ratio at the requested lead times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..obs.profile import get_tracer, metrics as _obs_metrics
from ..obs.profile import span as _span
from .probabilistic import crps_ensemble, ensemble_mean_rmse, spread_skill_ratio

__all__ = ["EvalProtocol", "Scores", "MediumRangeEvaluator"]

RolloutFn = Callable[[np.ndarray, int, int], np.ndarray]


def _timed_metric(metric: str, fn, *args) -> float:
    """Compute one score; while observability is on, time it as an
    ``eval.metric`` span and feed an ``eval.metric_s`` histogram."""
    tracer = get_tracer()
    if tracer is None:
        return float(fn(*args))
    with tracer.span("eval.metric", category="eval", metric=metric):
        value = float(fn(*args))
    registry = _obs_metrics()
    if registry is not None:
        registry.histogram("eval.metric_s",
                           "per-metric scoring time").observe(
            tracer.spans[-1].duration, metric=metric)
    return value


@dataclass(frozen=True)
class EvalProtocol:
    """What to evaluate: leads (days), variables, ICs."""

    lead_days: tuple[int, ...] = (1, 3, 5, 7, 10, 14)
    variables: tuple[str, ...] = ("Z500", "T2M", "Q700")
    n_initial_conditions: int = 4
    steps_per_day: int = 4
    first_ic_offset: int = 8  # skip the very start of the test split

    @property
    def n_steps(self) -> int:
        return max(self.lead_days) * self.steps_per_day


@dataclass
class Scores:
    """Scores keyed by ``(variable, lead_day)``."""

    rmse: dict = field(default_factory=dict)
    crps: dict = field(default_factory=dict)
    ssr: dict = field(default_factory=dict)

    def row(self, variable: str) -> str:
        cells = []
        for (var, lead) in sorted(self.rmse, key=lambda k: k[1]):
            if var != variable:
                continue
            cells.append(f"d{lead}: {self.rmse[(var, lead)]:7.2f}/"
                         f"{self.crps[(var, lead)]:7.2f}/"
                         f"{self.ssr[(var, lead)]:4.2f}")
        return "  ".join(cells)


class MediumRangeEvaluator:
    """Scores ensemble systems over a common IC set."""

    def __init__(self, archive: SyntheticReanalysis,
                 protocol: EvalProtocol = EvalProtocol()):
        self.archive = archive
        self.protocol = protocol
        self.ics = self._initial_conditions()

    def _initial_conditions(self) -> list[int]:
        p = self.protocol
        idx = self.archive.split_indices("test")
        last_valid = len(idx) - p.n_steps - 2
        if last_valid <= p.first_ic_offset:
            raise ValueError("test split too short for the requested leads")
        picks = np.linspace(p.first_ic_offset, last_valid,
                            p.n_initial_conditions).astype(int)
        return [int(idx[i]) for i in picks]

    def evaluate(self, rollout_fn: RolloutFn) -> Scores:
        """Run and score one system over all ICs."""
        p = self.protocol
        grid = self.archive.grid
        per_ic: dict[tuple[str, int], list[tuple[float, float, float]]] = {}
        for ic in self.ics:
            with _span("eval.rollout", category="eval", ic=ic,
                       n_steps=p.n_steps):
                ens = rollout_fn(self.archive.fields[ic], p.n_steps, ic)
            truth = self.archive.fields[ic:ic + p.n_steps + 1]
            for var in p.variables:
                c = TOY_SET.index(var)
                for lead in p.lead_days:
                    k = lead * p.steps_per_day
                    e = ens[:, k, ..., c]
                    t = truth[k, ..., c]
                    entry = (
                        _timed_metric("rmse", ensemble_mean_rmse, e, t,
                                      grid),
                        _timed_metric("crps", crps_ensemble, e, t, grid),
                        _timed_metric("ssr", spread_skill_ratio, e, t, grid)
                        if ens.shape[0] > 1 else float("nan"))
                    per_ic.setdefault((var, lead), []).append(entry)
        scores = Scores()
        for key, entries in per_ic.items():
            arr = np.asarray(entries)
            scores.rmse[key] = float(arr[:, 0].mean())
            scores.crps[key] = float(arr[:, 1].mean())
            scores.ssr[key] = float(np.nanmean(arr[:, 2])) \
                if not np.isnan(arr[:, 2]).all() else float("nan")
        return scores

    def evaluate_systems(self, systems: dict[str, RolloutFn]
                         ) -> dict[str, Scores]:
        out = {}
        for name, fn in systems.items():
            with _span("eval.system", category="eval", system=name):
                out[name] = self.evaluate(fn)
        return out

    def format_table(self, results: dict[str, Scores]) -> str:
        lines = []
        for var in self.protocol.variables:
            lines.append(f"{var} (lead: RMSE/CRPS/SSR):")
            for name, scores in results.items():
                lines.append(f"  {name:14s} {scores.row(var)}")
        return "\n".join(lines)
