"""ENSO diagnostics: the Niño 3.4 index (Figure 7a)."""

from __future__ import annotations

import numpy as np

from ..data import LatLonGrid, TOY_SET

__all__ = ["NINO34_BOX", "nino34_index"]

#: Niño 3.4 region: 5°S–5°N, 170°W–120°W (= 190°E–240°E).
NINO34_BOX = (-5.0, 5.0, 190.0, 240.0)


def nino34_index(fields: np.ndarray, grid: LatLonGrid,
                 climatology: np.ndarray | None = None,
                 sst_channel: int | None = None) -> np.ndarray:
    """Area-mean SST (anomaly) over the Niño 3.4 box.

    ``fields``: ``(..., H, W, C)``; returns the index with the trailing three
    axes reduced. If ``climatology`` (same trailing shape) is given, the
    anomaly w.r.t. it is computed — the standard index definition.
    """
    c = sst_channel if sst_channel is not None else TOY_SET.index("SST")
    sst = fields[..., c]
    if climatology is not None:
        sst = sst - climatology[..., c]
    mask = grid.box_mask(*NINO34_BOX)
    return grid.area_mean(sst, mask=mask)
