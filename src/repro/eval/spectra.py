"""Zonal power spectra and spectral sharpness.

The paper reports "correct power-spectra even at the smallest scales" for
90-day rollouts — the signature that the diffusion model does not blur,
unlike deterministic models whose spectra collapse at high wavenumber.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zonal_power_spectrum", "sharpness_ratio"]


def zonal_power_spectrum(field: np.ndarray) -> np.ndarray:
    """Mean power per zonal wavenumber.

    ``field``: ``(..., H, W)``; returns ``(..., W//2 + 1)`` power averaged
    over latitude rows (and any leading axes are preserved).
    """
    spec = np.abs(np.fft.rfft(field, axis=-1)) ** 2
    return spec.mean(axis=-2)


def sharpness_ratio(forecast: np.ndarray, reference: np.ndarray,
                    k_min_frac: float = 0.5) -> float:
    """Power ratio forecast/reference in the top (smallest-scale) band.

    1.0 = spectrally faithful; << 1 = blurred (the deterministic-model
    failure mode); >> 1 = noisy.
    """
    ps_f = zonal_power_spectrum(forecast)
    ps_r = zonal_power_spectrum(reference)
    # Flatten leading axes and average spectra before the band ratio.
    ps_f = ps_f.reshape(-1, ps_f.shape[-1]).mean(axis=0)
    ps_r = ps_r.reshape(-1, ps_r.shape[-1]).mean(axis=0)
    k0 = int(len(ps_f) * k_min_frac)
    band_f = ps_f[k0:].sum()
    band_r = ps_r[k0:].sum()
    return float(band_f / max(band_r, 1e-30))
