"""Verification suite: deterministic + probabilistic metrics and the
domain-specific diagnostics of the paper's evaluation."""

from .enso import NINO34_BOX, nino34_index
from .harness import EvalProtocol, MediumRangeEvaluator, Scores
from .extremes import heatwave_detected, heatwave_hit_rate, point_series
from .hovmoller import hovmoller, propagation_speed
from .metrics import acc, bias, mae, rmse
from .probabilistic import (
    crps_ensemble,
    ensemble_mean_rmse,
    rank_histogram,
    spread,
    spread_skill_ratio,
)
from .spectra import sharpness_ratio, zonal_power_spectrum
from .tracking import TrackPoint, track_cyclone, track_error_km

__all__ = [
    "rmse", "mae", "bias", "acc",
    "crps_ensemble", "spread", "ensemble_mean_rmse", "spread_skill_ratio",
    "rank_histogram",
    "zonal_power_spectrum", "sharpness_ratio",
    "nino34_index", "NINO34_BOX",
    "hovmoller", "propagation_speed",
    "TrackPoint", "track_cyclone", "track_error_km",
    "point_series", "heatwave_detected", "heatwave_hit_rate",
    "EvalProtocol", "MediumRangeEvaluator", "Scores",
]
