"""Heatwave diagnostics (Figure 5b): point time series of T2M against
climatology and exceedance detection."""

from __future__ import annotations

import numpy as np

from ..data import LatLonGrid, TOY_SET

__all__ = ["point_series", "heatwave_detected", "heatwave_hit_rate"]


def point_series(fields: np.ndarray, grid: LatLonGrid, lat: float, lon: float,
                 channel: int | None = None) -> np.ndarray:
    """Time series at the grid cell nearest (lat, lon): ``(T,)``."""
    c = channel if channel is not None else TOY_SET.index("T2M")
    return fields[:, grid.lat_index(lat), grid.lon_index(lon), c]


def heatwave_detected(series: np.ndarray, climatology: np.ndarray,
                      threshold: float = 3.0, min_steps: int = 4) -> bool:
    """True if the anomaly exceeds ``threshold`` K for at least
    ``min_steps`` consecutive 6h steps (>= 1 day by default)."""
    hot = (series - climatology) > threshold
    run = 0
    for flag in hot:
        run = run + 1 if flag else 0
        if run >= min_steps:
            return True
    return False


def heatwave_hit_rate(ensemble_series: np.ndarray, climatology: np.ndarray,
                      threshold: float = 3.0, min_steps: int = 4) -> float:
    """Fraction of ensemble members that forecast the heatwave."""
    hits = [heatwave_detected(member, climatology, threshold, min_steps)
            for member in ensemble_series]
    return float(np.mean(hits))
