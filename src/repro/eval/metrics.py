"""Deterministic verification metrics (latitude-weighted, WB2 conventions)."""

from __future__ import annotations

import numpy as np

from ..data import LatLonGrid

__all__ = ["rmse", "mae", "bias", "acc"]


def _weights(grid: LatLonGrid) -> np.ndarray:
    return grid.cell_area_weights()


def rmse(forecast: np.ndarray, truth: np.ndarray, grid: LatLonGrid
         ) -> np.ndarray:
    """Latitude-weighted RMSE over the trailing (H, W) axes.

    Leading axes (lead time, channel stacked in front, …) are preserved.
    """
    w = _weights(grid)
    err2 = (forecast - truth) ** 2
    return np.sqrt((err2 * w).sum(axis=(-2, -1)) / w.sum())


def mae(forecast: np.ndarray, truth: np.ndarray, grid: LatLonGrid
        ) -> np.ndarray:
    w = _weights(grid)
    return (np.abs(forecast - truth) * w).sum(axis=(-2, -1)) / w.sum()


def bias(forecast: np.ndarray, truth: np.ndarray, grid: LatLonGrid
         ) -> np.ndarray:
    w = _weights(grid)
    return ((forecast - truth) * w).sum(axis=(-2, -1)) / w.sum()


def acc(forecast: np.ndarray, truth: np.ndarray, climatology: np.ndarray,
        grid: LatLonGrid) -> np.ndarray:
    """Anomaly correlation coefficient w.r.t. a climatology field."""
    w = _weights(grid)
    fa = forecast - climatology
    ta = truth - climatology
    num = (fa * ta * w).sum(axis=(-2, -1))
    den = np.sqrt((fa ** 2 * w).sum(axis=(-2, -1))
                  * (ta ** 2 * w).sum(axis=(-2, -1)))
    return num / np.maximum(den, 1e-12)
