"""Probabilistic verification: CRPS, spread/skill ratio, rank histograms
(the Figure 5a diagnostics)."""

from __future__ import annotations

import numpy as np

from ..data import LatLonGrid

__all__ = ["crps_ensemble", "spread", "ensemble_mean_rmse",
           "spread_skill_ratio", "rank_histogram"]


def crps_ensemble(ensemble: np.ndarray, truth: np.ndarray,
                  grid: LatLonGrid | None = None) -> float | np.ndarray:
    """Fair (unbiased) ensemble CRPS.

    ``CRPS = mean_m |x_m − y| − 1/(2 M (M−1)) sum_{m,n} |x_m − x_n|``
    (the M−1 normalization makes the estimator fair). ``ensemble`` has shape
    ``(M, ...)`` with truth ``(...)``; if a grid is given the trailing two
    axes are latitude-weight averaged, otherwise all axes are averaged
    uniformly.
    """
    ensemble = np.asarray(ensemble, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    m = ensemble.shape[0]
    skill_term = np.abs(ensemble - truth[None]).mean(axis=0)
    if m > 1:
        # Pairwise term via sorted representation: for sorted samples,
        # sum_{i<j} (x_j − x_i) = sum_k (2k − M + 1) x_(k).
        srt = np.sort(ensemble, axis=0)
        coef = (2 * np.arange(m) - m + 1).reshape((m,) + (1,) * truth.ndim)
        pairwise = (coef * srt).sum(axis=0) * 2.0 / (m * (m - 1))
        crps_field = skill_term - 0.5 * pairwise
    else:
        crps_field = skill_term
    if grid is None:
        return float(crps_field.mean())
    return grid.area_mean(crps_field)


def spread(ensemble: np.ndarray, grid: LatLonGrid | None = None):
    """RMS ensemble standard deviation (unbiased), averaged over space."""
    var = ensemble.var(axis=0, ddof=1)
    if grid is None:
        return float(np.sqrt(var.mean()))
    return np.sqrt(grid.area_mean(var))


def ensemble_mean_rmse(ensemble: np.ndarray, truth: np.ndarray,
                       grid: LatLonGrid | None = None):
    err2 = (ensemble.mean(axis=0) - truth) ** 2
    if grid is None:
        return float(np.sqrt(err2.mean()))
    return np.sqrt(grid.area_mean(err2))


def spread_skill_ratio(ensemble: np.ndarray, truth: np.ndarray,
                       grid: LatLonGrid | None = None):
    """SSR with the finite-ensemble correction ``sqrt((M+1)/M)``.

    SSR = 1 indicates a perfectly calibrated ensemble; < 1 under-dispersive
    (the paper reports AERIS is under-dispersive, like GenCast).
    """
    m = ensemble.shape[0]
    correction = np.sqrt((m + 1) / m)
    return correction * spread(ensemble, grid) / np.maximum(
        ensemble_mean_rmse(ensemble, truth, grid), 1e-12)


def rank_histogram(ensemble: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Counts of the truth's rank within the ensemble (M+1 bins).

    A flat histogram indicates calibration; a U-shape indicates
    under-dispersion.
    """
    m = ensemble.shape[0]
    ranks = (ensemble < truth[None]).sum(axis=0)
    return np.bincount(ranks.ravel(), minlength=m + 1)
