"""Hovmöller diagrams (Figure 7c): longitude–time sections of equatorial
U850 anomalies, the standard view of convectively coupled wave propagation."""

from __future__ import annotations

import numpy as np

from ..data import LatLonGrid, TOY_SET

__all__ = ["hovmoller", "propagation_speed"]


def hovmoller(fields: np.ndarray, grid: LatLonGrid,
              lat_band: tuple[float, float] = (-10.0, 10.0),
              channel: int | None = None,
              climatology: np.ndarray | None = None) -> np.ndarray:
    """``(T, H, W, C)`` -> ``(T, W)``: anomaly averaged over a latitude band.

    Band averaging is cosine-latitude weighted, matching the paper's
    "averaged between 10°N and 10°S".
    """
    c = channel if channel is not None else TOY_SET.index("U850")
    data = fields[..., c]
    if climatology is not None:
        data = data - climatology[..., c]
    rows = np.nonzero(grid.band_mask(*lat_band).any(axis=1))[0]
    w = grid.latitude_weights()[rows]
    return (data[:, rows, :] * w[None, :, None]).sum(axis=1) / w.sum()


def propagation_speed(diagram: np.ndarray, dt_hours: float,
                      dlon_deg: float) -> float:
    """Dominant zonal phase speed (deg/day) from the 2D spectrum of a
    Hovmöller diagram; sign > 0 means eastward propagation."""
    t, w = diagram.shape
    spec = np.abs(np.fft.fft2(diagram - diagram.mean())) ** 2
    freqs = np.fft.fftfreq(t, d=dt_hours / 24.0)   # cycles/day
    ks = np.fft.fftfreq(w, d=dlon_deg)             # cycles/deg
    # Ignore the mean row/column.
    spec[0, :] = 0.0
    spec[:, 0] = 0.0
    i, j = np.unravel_index(np.argmax(spec), spec.shape)
    if ks[j] == 0:
        return 0.0
    # A mode exp(i(k x − ω t)) in our FFT convention propagates at ω/k with
    # opposite signs of the raw indices.
    return float(-freqs[i] / ks[j])
