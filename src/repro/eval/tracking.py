"""Tropical-cyclone tracking (Figure 6): follow the MSLP minimum of a storm
through a forecast and report track + intensity."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import LatLonGrid, TOY_SET

__all__ = ["TrackPoint", "track_cyclone", "track_error_km"]

_EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class TrackPoint:
    step: int
    lat: float
    lon: float
    min_mslp: float
    max_wind: float


def _local_wind_speed(fields: np.ndarray) -> np.ndarray:
    u = fields[..., TOY_SET.index("U10")]
    v = fields[..., TOY_SET.index("V10")]
    return np.sqrt(u ** 2 + v ** 2)


def track_cyclone(fields: np.ndarray, grid: LatLonGrid,
                  start_lat: float, start_lon: float,
                  search_radius_deg: float = 15.0) -> list[TrackPoint]:
    """Track the storm nearest (start_lat, start_lon) through ``(T, H, W, C)``.

    At each step the tracker searches a disc around the previous position
    for the minimum MSLP; tracking stops when the disc leaves the tropics/
    midlatitudes or the low fills above the background.
    """
    mslp_c = TOY_SET.index("MSLP")
    lat, lon = start_lat, start_lon
    track: list[TrackPoint] = []
    wind = _local_wind_speed(fields)
    for step in range(fields.shape[0]):
        mslp = fields[step, ..., mslp_c]
        dlat = grid.lats[:, None] - lat
        dlon = np.abs(grid.lons[None, :] - lon)
        dlon = np.minimum(dlon, 360.0 - dlon) * np.cos(np.deg2rad(lat))
        dist = np.sqrt(dlat ** 2 + dlon ** 2)
        disc = dist <= search_radius_deg
        if not disc.any():
            break
        masked = np.where(disc, mslp, np.inf)
        i, j = np.unravel_index(np.argmin(masked), masked.shape)
        lat, lon = float(grid.lats[i]), float(grid.lons[j])
        near = dist <= search_radius_deg
        track.append(TrackPoint(step=step, lat=lat, lon=lon,
                                min_mslp=float(mslp[i, j]),
                                max_wind=float(wind[step][near].max())))
        if abs(lat) > 60.0:
            break
    return track


def track_error_km(track_a: list[TrackPoint], track_b: list[TrackPoint]
                   ) -> np.ndarray:
    """Great-circle distance between two tracks at matching steps."""
    n = min(len(track_a), len(track_b))
    out = np.empty(n)
    for k in range(n):
        a, b = track_a[k], track_b[k]
        la, lb = np.deg2rad(a.lat), np.deg2rad(b.lat)
        dlon = np.deg2rad(a.lon - b.lon)
        cos_d = np.clip(np.sin(la) * np.sin(lb)
                        + np.cos(la) * np.cos(lb) * np.cos(dlon), -1.0, 1.0)
        out[k] = _EARTH_RADIUS_KM * np.arccos(cos_d)
    return out
