"""Communication-time model (paper Section V-A, "Communication overhead").

Message sizes follow the paper's formula ``M = b·s·h / SP / WP`` (bytes: ×2
for BF16 activations).  Three flows matter:

* **alltoall** (SP/WP, intra-node): before and after every attention —
  rides the scale-up fabric;
* **send/recv** (PP, inter-node): stage-boundary activations — overlappable
  with compute;
* **allreduce** (DP, inter-node): FP32 gradients once per step.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import AerisConfig
from ..parallel.topology import RankTopology
from .machine import Machine

__all__ = ["CommModel"]

_BF16 = 2
_FP32 = 4


@dataclass(frozen=True)
class CommModel:
    config: AerisConfig
    machine: Machine
    topology: RankTopology

    # -- message sizes -----------------------------------------------------
    def alltoall_message_bytes(self, micro_batch: int) -> int:
        """M = b·s·h/SP/WP in BF16 — the per-rank activation shard."""
        cfg, topo = self.config, self.topology
        return (micro_batch * cfg.seq_len * cfg.dim * _BF16
                // (topo.sp * topo.wp))

    def pp_message_bytes(self, micro_batch: int) -> int:
        """Stage-boundary activation: same M (each rank sends 1/SP of its
        windows to the next stage)."""
        return self.alltoall_message_bytes(micro_batch)

    def grad_allreduce_bytes(self) -> int:
        """FP32 gradient volume per rank: independent of WP (paper claim).

        Ring allreduce moves ~2x the shard; each rank owns 1/(PP) of the
        parameters (layer stages) — WP/SP replicate parameters.
        """
        from ..model import count_parameters
        params = count_parameters(self.config)
        per_rank = params // self.topology.pp
        return int(2 * per_rank * _FP32 * (self.topology.dp - 1)
                   / max(self.topology.dp, 1))

    # -- times per microbatch ----------------------------------------------
    def alltoall_time_per_block(self, micro_batch: int) -> float:
        """Two all-to-alls (qkv in ~3M, out ~M) per attention, forward;
        backward doubles it. Intra-node bandwidth."""
        m = self.alltoall_message_bytes(micro_batch)
        bw = self.machine.scaleup_bw_gbs * 1e9
        return 3 * (4 * m) / bw  # fwd (4M) + bwd (8M) = 12M total

    def pp_time_per_boundary(self, micro_batch: int) -> float:
        """One activation send (forward) + one gradient send (backward),
        across the inter-node network; overlappable in practice."""
        m = self.pp_message_bytes(micro_batch)
        bw = self.machine.network_bw_gbs * 1e9
        return 2 * m / bw

    def grad_allreduce_time(self) -> float:
        if self.topology.dp <= 1:
            return 0.0
        bw = self.machine.network_bw_gbs * 1e9
        latency = 2e-4 * self.topology.dp  # ring hop latencies
        return self.grad_allreduce_bytes() / bw + latency
