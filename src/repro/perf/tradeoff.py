"""Time-to-solution and checkpointing trade-offs.

Two paper claims live here:

* "At this pace [50 samples/s], it would take approximately 15 hours to
  complete training for 3M samples" — :func:`time_to_train`;
* WP "lowers activation memory usage, potentially eliminating the need for
  activation checkpointing" (which costs ~1/3 recomputation) —
  :func:`checkpointing_plan` decides, for a layout, whether checkpointing
  is required on the machine and what throughput factor that implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import AerisConfig
from ..parallel.topology import RankTopology
from .machine import Machine
from .memory import CHECKPOINT_RECOMPUTE_OVERHEAD, MemoryModel

__all__ = ["time_to_train", "checkpointing_plan", "CheckpointingPlan"]


def time_to_train(images_per_sec: float, total_images: float = 3_000_000
                  ) -> float:
    """Wall-clock hours to see ``total_images`` at a sustained rate."""
    if images_per_sec <= 0:
        raise ValueError("throughput must be positive")
    return total_images / images_per_sec / 3600.0


@dataclass(frozen=True)
class CheckpointingPlan:
    """Whether activation checkpointing is needed, and its cost."""

    required: bool
    activation_gb: float
    budget_gb: float
    throughput_factor: float   # multiply images/s by this

    @property
    def recompute_overhead(self) -> float:
        return CHECKPOINT_RECOMPUTE_OVERHEAD if self.required else 0.0


def checkpointing_plan(config: AerisConfig, topology: RankTopology,
                       machine: Machine, micro_batch: int = 1
                       ) -> CheckpointingPlan:
    """Decide checkpointing from the memory model.

    If the un-checkpointed footprint exceeds the tile's memory (with 10%
    headroom), full activation checkpointing is assumed, costing
    ~1/3 extra recomputation (paper Section V-A citing Korthikanti et al.).
    """
    mem = MemoryModel(config, topology)
    budget = machine.tile_memory_gb
    fits_plain = mem.fits(micro_batch, budget, checkpointing=False)
    if fits_plain:
        return CheckpointingPlan(
            required=False,
            activation_gb=mem.activation_bytes_per_rank(micro_batch) / 1e9,
            budget_gb=budget, throughput_factor=1.0)
    if not mem.fits(micro_batch, budget, checkpointing=True):
        raise ValueError(
            f"{config.name} does not fit {machine.name} even with "
            "checkpointing; increase WP/PP")
    return CheckpointingPlan(
        required=True,
        activation_gb=mem.activation_bytes_per_rank(
            micro_batch, checkpointing=True) / 1e9,
        budget_gb=budget,
        throughput_factor=1.0 / (1.0 + CHECKPOINT_RECOMPUTE_OVERHEAD))
