"""Analytical FLOPs model (paper Section VI-D: "We develop an analytical
model to estimate floating point operations, which takes into account
various AERIS model parameters").

The model counts matmul FLOPs only — exactly what the runtime
:class:`~repro.tensor.flops.FlopCounter` instruments — so the two are
directly comparable; a test validates the formula against a live tiny model
to the last FLOP.
"""

from __future__ import annotations

from ..model import AerisConfig

__all__ = ["forward_flops_per_sample", "training_flops_per_sample",
           "forward_flops_per_block_token", "stage_forward_flops"]


def forward_flops_per_block_token(config: AerisConfig) -> int:
    """Forward matmul FLOPs per token per transformer block.

    qkv (6 d^2) + output projection (2 d^2) + attention scores/values
    (4 T d, T = tokens per window) + SwiGLU (6 d f).
    """
    d, f = config.dim, config.ffn_dim
    t_win = config.tokens_per_window
    return 8 * d * d + 6 * d * f + 4 * t_win * d


def forward_flops_per_sample(config: AerisConfig) -> int:
    """Forward matmul FLOPs for one sample (image)."""
    d = config.dim
    s = config.seq_len
    per_block_tokens = config.n_blocks * s * forward_flops_per_block_token(config)
    # Per-sample (not per-token) projections:
    adaln = config.n_blocks * 2 * (2 * d * 3 * d)          # two adaLN / block
    time_embed = 2 * config.time_freqs * d
    p2 = config.patch_size ** 2
    embed = 2 * s * config.in_channels * p2 * d
    decode = 2 * s * d * config.channels * p2
    return per_block_tokens + adaln + time_embed + embed + decode


def training_flops_per_sample(config: AerisConfig) -> int:
    """Forward + backward: backward of a matmul costs 2x its forward."""
    return 3 * forward_flops_per_sample(config)


def stage_forward_flops(config: AerisConfig, stage: int) -> int:
    """Forward FLOPs of one pipeline stage (PP = L + 2) for one sample.

    Stage 0 = I/O + embedding (+ time embedding); interior stages = one Swin
    layer each; last stage = decode.
    """
    d = config.dim
    s = config.seq_len
    p2 = config.patch_size ** 2
    if stage == 0:
        return 2 * s * config.in_channels * p2 * d + 2 * config.time_freqs * d
    if stage == config.pp_stages - 1:
        return 2 * s * d * config.channels * p2
    per_layer = config.blocks_per_layer * (
        s * forward_flops_per_block_token(config) + 2 * (2 * d * 3 * d))
    return per_layer
