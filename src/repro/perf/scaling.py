"""End-to-end performance estimation: throughput, MFU, ExaFLOPS, and the
weak/strong scaling series of Figure 4 and Table III.

Composition::

    t_fwd(stage)  = stage FLOPs / (WP·SP·tile_peak·kernel_eff) + alltoall
    t_bwd         = 2 · t_fwd(compute) + 2 · alltoall
    phase time    = (GAS + PP − 1) · (t_fwd + t_bwd)          # 1F1B
    sustained     = phase + optimizer + gradient allreduce
    peak          = phase                                     # paper's defn

Two constants are calibrated once against the paper's WP strong-scaling
points (Section VII-A) and then used everywhere:

* ``KERNEL_EFF_MAX`` — achievable fraction of peak for large matmuls;
* ``SATURATION_TOKENS`` — tokens/tile at which kernels reach half of that
  (fitted to the WP=36→64 efficiency drop of 100%→87%; the third point,
  WP=144 → 64%, is *predicted* and validated in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import AerisConfig
from ..parallel.topology import RankTopology
from .comm_model import CommModel
from .flops import stage_forward_flops, training_flops_per_sample
from .machine import Machine
from .pipeline_model import bubble_fraction

__all__ = ["PerfEstimate", "kernel_efficiency", "estimate_performance",
           "weak_scaling_series", "strong_scaling_gas", "strong_scaling_wp",
           "KERNEL_EFF_MAX", "SATURATION_TOKENS"]

KERNEL_EFF_MAX = 0.62
SATURATION_TOKENS = 350.0

#: Seconds per 10^9 parameters for the (unsharded-in-time) FP32 optimizer +
#: EMA update on one pipeline stage. Calibrated to the 40B sustained/peak
#: gap of Table III; DP-independent, so it also shapes weak scaling.
OPT_SECONDS_PER_GPARAM = 1.1

#: Effective fraction of the NIC bandwidth realized by the bucketed FP32
#: gradient ring-allreduce (latency/bucketing-dominated). Calibrated
#: together with the constant above; the weak-scaling efficiency (95.5% in
#: the paper) is then a *prediction*.
ALLREDUCE_EFFICIENCY = 0.0375


def kernel_efficiency(tokens_per_tile: float) -> float:
    """Saturating kernel efficiency vs per-tile work."""
    return KERNEL_EFF_MAX * tokens_per_tile / (tokens_per_tile
                                               + SATURATION_TOKENS)


@dataclass(frozen=True)
class PerfEstimate:
    config_name: str
    machine_name: str
    nodes: int
    dp: int
    gbs: int
    step_time_s: float
    images_per_sec: float
    tflops_per_tile: float
    mfu: float
    ef_sustained: float
    ef_peak: float


def estimate_performance(config: AerisConfig, machine: Machine,
                         topology: RankTopology, gbs: int,
                         schedule: str = "1f1b",
                         micro_batch: int = 1) -> PerfEstimate:
    """Model one training step at the given layout and global batch size."""
    if gbs % (topology.dp * micro_batch):
        raise ValueError("gbs must be divisible by dp * micro_batch")
    gas = gbs // (topology.dp * micro_batch)
    comm = CommModel(config, machine, topology)

    tokens_per_tile = config.seq_len / (topology.sp * topology.wp)
    eff_k = kernel_efficiency(tokens_per_tile)
    tile_peak = machine.peak_tflops_tile_bf16 * 1e12

    # Interior stage dominates (uniform-stage approximation).
    interior = max(stage_forward_flops(config, s)
                   for s in range(1, config.pp_stages - 1)) * micro_batch
    tiles_per_stage = topology.wp * topology.sp
    t_fwd_compute = interior / (tiles_per_stage * tile_peak * eff_k)
    t_a2a = comm.alltoall_time_per_block(micro_batch) \
        * config.blocks_per_layer / 3.0  # model's fwd share of the 12M total
    t_fwd = t_fwd_compute + t_a2a
    t_bwd = 2.0 * t_fwd_compute + 2.0 * t_a2a

    slot = t_fwd + t_bwd
    bubble = bubble_fraction(topology.pp, gas, schedule)
    phase_time = gas * slot / (1.0 - bubble)

    # Outside the pipelined phase: optimizer step + gradient reduction.
    from ..model import count_parameters
    params_per_rank = count_parameters(config) / topology.pp
    t_opt = OPT_SECONDS_PER_GPARAM * params_per_rank / 1e9
    t_ar = (comm.grad_allreduce_bytes()
            / (machine.network_bw_gbs * 1e9 * ALLREDUCE_EFFICIENCY)
            + 2e-4 * topology.dp if topology.dp > 1 else 0.0)
    sustained_time = phase_time + t_opt + t_ar
    peak_time = phase_time

    flops_step = training_flops_per_sample(config) * gbs
    tiles = topology.nodes * machine.tiles_per_node
    ef_sustained = flops_step / sustained_time / 1e18
    ef_peak = flops_step / peak_time / 1e18
    tflops_per_tile = ef_sustained * 1e6 / tiles
    mfu = tflops_per_tile / machine.peak_tflops_tile_bf16
    return PerfEstimate(
        config_name=config.name, machine_name=machine.name,
        nodes=topology.nodes, dp=topology.dp, gbs=gbs,
        step_time_s=sustained_time,
        images_per_sec=gbs / sustained_time,
        tflops_per_tile=tflops_per_tile, mfu=mfu,
        ef_sustained=ef_sustained, ef_peak=ef_peak)


def _topology_for(config: AerisConfig, dp: int,
                  sp: int | None = None) -> RankTopology:
    layout = config.layout
    return RankTopology(dp=dp, pp=layout.pp, wp_grid=layout.wp_grid,
                        sp=sp if sp is not None else layout.sp)


def weak_scaling_series(config: AerisConfig, machine: Machine,
                        dp_values: list[int],
                        gas: int | None = None) -> list[PerfEstimate]:
    """Increase DP (and GBS with it) at fixed model-parallel layout —
    Figure 4's weak scaling."""
    gas = gas if gas is not None else config.layout.gas
    out = []
    for dp in dp_values:
        topo = _topology_for(config, dp)
        out.append(estimate_performance(config, machine, topo, gbs=gas * dp))
    return out


def strong_scaling_gas(config: AerisConfig, machine: Machine, gbs: int,
                       dp_values: list[int]) -> list[PerfEstimate]:
    """Fixed GBS; more DP replicas mean fewer accumulation steps each —
    bubble grows (Figure 4 top, 'GAS' series)."""
    out = []
    for dp in dp_values:
        if gbs % dp:
            raise ValueError(f"gbs {gbs} not divisible by dp {dp}")
        topo = _topology_for(config, dp)
        out.append(estimate_performance(config, machine, topo, gbs=gbs))
    return out


def strong_scaling_wp(config: AerisConfig, machine: Machine, gbs: int,
                      wp_grids: list[tuple[int, int]]) -> list[PerfEstimate]:
    """Fixed GBS without data parallelism; more window parallelism —
    efficiency falls as per-tile work shrinks (Figure 4 top, 'WP' series)."""
    out = []
    for grid in wp_grids:
        layout = config.layout
        topo = RankTopology(dp=1, pp=layout.pp, wp_grid=grid, sp=layout.sp)
        out.append(estimate_performance(config, machine, topo, gbs=gbs))
    return out


def scaling_efficiency(series: list[PerfEstimate],
                       resource=lambda e: e.nodes) -> list[float]:
    """Throughput efficiency of each point relative to perfect scaling from
    the first point."""
    base = series[0]
    out = []
    for e in series:
        ideal = base.images_per_sec * resource(e) / resource(base)
        out.append(e.images_per_sec / ideal)
    return out
