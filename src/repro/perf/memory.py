"""Memory model: model states and activations per GPU tile.

Reproduces the paper's activation-memory claim: enabling WP on top of SP and
PP divides activation memory by WP, "reducing the need for activation
checkpointing" (which would otherwise cost ~1/3 extra recomputation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import AerisConfig, count_parameters
from ..parallel.topology import RankTopology
from .pipeline_model import max_in_flight, schedule_1f1b

__all__ = ["MemoryModel", "CHECKPOINT_RECOMPUTE_OVERHEAD"]

_BF16 = 2
_FP32 = 4

#: Fraction of extra compute incurred by full activation checkpointing.
CHECKPOINT_RECOMPUTE_OVERHEAD = 1.0 / 3.0


@dataclass(frozen=True)
class MemoryModel:
    config: AerisConfig
    topology: RankTopology

    # -- model states ------------------------------------------------------
    def parameter_bytes_per_rank(self) -> int:
        """BF16 working weights; parameters are sharded by PP stage only
        (WP/SP shard data, not weights)."""
        return count_parameters(self.config) * _BF16 // self.topology.pp

    def optimizer_state_bytes_per_rank(self) -> int:
        """FP32 master weights + two Adam moments, ZeRO-1 sharded over DP."""
        per_stage = count_parameters(self.config) // self.topology.pp
        return 3 * per_stage * _FP32 // max(self.topology.dp, 1)

    def gradient_bytes_per_rank(self) -> int:
        per_stage = count_parameters(self.config) // self.topology.pp
        return per_stage * _FP32

    # -- activations ---------------------------------------------------------
    def activation_bytes_per_layer_per_sample(self) -> int:
        """Stored tensors per transformer block per sample on one rank.

        Roughly: block input + qkv + attention output + SwiGLU hidden (x2)
        ~ (4·d + 2·f) per token, BF16, sharded by SP·WP.
        """
        cfg, topo = self.config, self.topology
        per_token = (4 * cfg.dim + 2 * cfg.ffn_dim) * _BF16
        tokens_per_rank = cfg.seq_len // (topo.sp * topo.wp)
        return cfg.blocks_per_layer * per_token * tokens_per_rank

    def activation_bytes_per_rank(self, micro_batch: int,
                                  checkpointing: bool = False) -> int:
        """Peak activation footprint of the busiest (first interior) stage
        under 1F1B: ``in_flight`` microbatches resident at once."""
        sched = schedule_1f1b(self.topology.pp,
                              max(self.topology.pp, 2))
        in_flight = max_in_flight(sched)
        per_mb = self.activation_bytes_per_layer_per_sample() * micro_batch
        if checkpointing:
            # Only boundary activations retained.
            cfg, topo = self.config, self.topology
            per_mb = (cfg.dim * _BF16
                      * cfg.seq_len // (topo.sp * topo.wp) * micro_batch)
        return per_mb * in_flight

    def total_bytes_per_rank(self, micro_batch: int,
                             checkpointing: bool = False) -> int:
        return (self.parameter_bytes_per_rank()
                + self.optimizer_state_bytes_per_rank()
                + self.gradient_bytes_per_rank()
                + self.activation_bytes_per_rank(micro_batch, checkpointing))

    def fits(self, micro_batch: int, tile_memory_gb: float,
             checkpointing: bool = False) -> bool:
        return (self.total_bytes_per_rank(micro_batch, checkpointing)
                < tile_memory_gb * 1e9 * 0.9)  # 10% headroom
