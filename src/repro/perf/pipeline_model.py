"""Pipeline schedules and bubble model.

Numerics of pipelined training live in :mod:`repro.parallel.pipeline`
(execution order is irrelevant to gradients); this module models *time*:
schedule event lists, an explicit timeline simulator, and the closed-form
bubble fractions the scaling analysis uses.

Schedules
---------
* **GPipe** — all forwards, then all backwards; bubble (PP−1)/(M+PP−1) in
  the uniform-stage, t_bwd = 2 t_fwd approximation.
* **1F1B** — same bubble, much lower activation footprint (≤ PP in-flight
  microbatches instead of M); what AERIS uses.
* **Zero-bubble (ZB-H1)** — the paper's future-work item: splitting the
  backward into input- and weight-gradient parts fills the bubble; modeled
  with the ZB-H1 bound of ~1/3 of the 1F1B bubble.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["bubble_fraction", "Event", "schedule_gpipe", "schedule_1f1b",
           "schedule_zb_h1", "simulate_timeline", "max_in_flight"]


def bubble_fraction(pp: int, microbatches: int, schedule: str = "1f1b"
                    ) -> float:
    """Idle fraction of the pipelined forward/backward phase."""
    if pp < 1 or microbatches < 1:
        raise ValueError("pp and microbatches must be positive")
    base = (pp - 1) / (microbatches + pp - 1)
    if schedule in ("1f1b", "gpipe"):
        return base
    if schedule == "zero-bubble":
        return base / 3.0
    raise ValueError(f"unknown schedule {schedule!r}")


@dataclass(frozen=True)
class Event:
    stage: int
    microbatch: int
    phase: str   # "F" or "B"


def schedule_gpipe(pp: int, microbatches: int) -> list[list[Event]]:
    """Per-stage event order: all forwards then all backwards."""
    return [[Event(s, m, "F") for m in range(microbatches)]
            + [Event(s, m, "B") for m in range(microbatches)]
            for s in range(pp)]


def schedule_1f1b(pp: int, microbatches: int) -> list[list[Event]]:
    """Per-stage event order under 1F1B: warmup forwards, steady-state
    alternating F/B, cooldown backwards."""
    out = []
    for s in range(pp):
        warmup = min(pp - s, microbatches)
        events = [Event(s, m, "F") for m in range(warmup)]
        fwd_next, bwd_next = warmup, 0
        while bwd_next < microbatches:
            events.append(Event(s, bwd_next, "B"))
            bwd_next += 1
            if fwd_next < microbatches:
                events.append(Event(s, fwd_next, "F"))
                fwd_next += 1
        out.append(events)
    return out


def schedule_zb_h1(pp: int, microbatches: int) -> list[list[Event]]:
    """A ZB-H1-style schedule: the backward is split into input-gradient
    ("B") and weight-gradient ("W") parts; W has no cross-stage dependency,
    so deferring it fills what would otherwise be cooldown bubble.

    This simplified generator issues the 1F1B order for F/B and appends all
    W passes at the end of each stage's list; the dependency-driven timeline
    then schedules W into the idle cooldown slots.
    """
    base = schedule_1f1b(pp, microbatches)
    out = []
    for s, events in enumerate(base):
        out.append(events + [Event(s, m, "W") for m in range(microbatches)])
    return out


def simulate_timeline(schedule: list[list[Event]], t_fwd: float,
                      t_bwd: float, t_w: float | None = None) -> dict:
    """Dependency-driven timeline of a pipeline schedule.

    Dependencies: F(s, m) needs F(s−1, m); B(s, m) needs B(s+1, m) and the
    local F(s, m); W(s, m) needs only the local B(s, m). Stages process
    their own event lists in order, except that W passes may be overtaken
    by later-queued F/B work (they are fill-in work by construction).
    Returns the makespan, per-stage busy time, the bubble fraction, and the
    resolved per-event times (``events``: one ``(phase, stage, microbatch,
    start, finish)`` tuple per scheduled pass) — the observability layer
    replays these onto per-rank trace tracks so the bubble is visible in
    ``chrome://tracing``.
    """
    pp = len(schedule)
    t_w = t_bwd / 2.0 if t_w is None else t_w
    durations = {"F": t_fwd, "B": t_bwd, "W": t_w}
    done: dict[tuple[str, int, int], float] = {}
    events: list[tuple[str, int, int, float, float]] = []
    ready_time = [0.0] * pp
    queues = [list(ev) for ev in schedule]
    remaining = sum(len(q) for q in queues)

    def dependency(ev: Event, s: int):
        """Finish time of ev's dependency, or None if not yet runnable."""
        if ev.phase == "F":
            if s == 0:
                return 0.0
            return done.get(("F", s - 1, ev.microbatch))
        if ev.phase == "B":
            dep_f = done.get(("F", s, ev.microbatch))
            if dep_f is None:
                return None
            if s == pp - 1:
                return dep_f
            dep_b = done.get(("B", s + 1, ev.microbatch))
            return None if dep_b is None else max(dep_f, dep_b)
        # W: local input-gradient pass must be complete.
        return done.get(("B", s, ev.microbatch))

    while remaining:
        progressed = False
        for s in range(pp):
            if not queues[s]:
                continue
            # Head-of-line event; if it is blocked and a W is available,
            # run the W instead (fill-in semantics).
            chosen = None
            head = queues[s][0]
            dep = dependency(head, s)
            if dep is not None:
                chosen = (0, head, dep)
            else:
                for i, ev in enumerate(queues[s]):
                    if ev.phase != "W":
                        continue
                    dep_w = dependency(ev, s)
                    if dep_w is not None:
                        chosen = (i, ev, dep_w)
                        break
            if chosen is None:
                continue
            i, ev, dep = chosen
            start = max(ready_time[s], dep)
            finish = start + durations[ev.phase]
            done[(ev.phase, s, ev.microbatch)] = finish
            events.append((ev.phase, s, ev.microbatch, start, finish))
            ready_time[s] = finish
            queues[s].pop(i)
            remaining -= 1
            progressed = True
        if not progressed:
            raise RuntimeError("schedule deadlocked")
    makespan = max(done.values())
    busy = [sum(durations[ev.phase] for ev in stage_events)
            for stage_events in schedule]
    bubble = 1.0 - sum(busy) / (pp * makespan)
    return {"makespan": makespan, "busy_per_stage": busy[0],
            "bubble": bubble, "events": events}


def max_in_flight(schedule: list[list[Event]]) -> int:
    """Peak number of microbatches whose activations stage 0 must hold
    (forwards issued minus backwards completed) — the memory advantage of
    1F1B over GPipe."""
    peak = 0
    outstanding = 0
    for ev in schedule[0]:
        if ev.phase == "F":
            outstanding += 1
        else:
            outstanding -= 1
        peak = max(peak, outstanding)
    return peak
