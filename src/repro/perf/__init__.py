"""Analytical performance model (paper Section VI-D) for Tables II/III and
Figure 4."""

from .comm_model import CommModel
from .flops import (
    forward_flops_per_block_token,
    forward_flops_per_sample,
    stage_forward_flops,
    training_flops_per_sample,
)
from .machine import AURORA, LUMI, Machine
from .memory import CHECKPOINT_RECOMPUTE_OVERHEAD, MemoryModel
from .pipeline_model import (
    Event,
    bubble_fraction,
    max_in_flight,
    schedule_1f1b,
    schedule_gpipe,
    schedule_zb_h1,
    simulate_timeline,
)
from .tradeoff import CheckpointingPlan, checkpointing_plan, time_to_train
from .scaling import (
    KERNEL_EFF_MAX,
    SATURATION_TOKENS,
    PerfEstimate,
    estimate_performance,
    kernel_efficiency,
    scaling_efficiency,
    strong_scaling_gas,
    strong_scaling_wp,
    weak_scaling_series,
)

__all__ = [
    "Machine", "AURORA", "LUMI",
    "forward_flops_per_sample", "training_flops_per_sample",
    "forward_flops_per_block_token", "stage_forward_flops",
    "CommModel", "MemoryModel", "CHECKPOINT_RECOMPUTE_OVERHEAD",
    "bubble_fraction", "schedule_gpipe", "schedule_1f1b", "schedule_zb_h1",
    "simulate_timeline", "max_in_flight", "Event",
    "PerfEstimate", "estimate_performance", "kernel_efficiency",
    "weak_scaling_series", "strong_scaling_gas", "strong_scaling_wp",
    "scaling_efficiency", "KERNEL_EFF_MAX", "SATURATION_TOKENS",
    "time_to_train", "checkpointing_plan", "CheckpointingPlan",
]
