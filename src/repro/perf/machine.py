"""Machine descriptions (paper Table I)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Machine", "AURORA", "LUMI"]


@dataclass(frozen=True)
class Machine:
    """System configuration for performance evaluation (Table I)."""

    name: str
    gpus_per_node: int
    tiles_per_node: int            # compute tiles (Aurora) / GCDs (LUMI)
    gpu_memory_gb: float
    gpu_memory_bw_tbs: float
    nics_per_node: int
    network_bw_gbs: float          # per direction, per node
    scaleup_bw_gbs: float          # per direction, intra-node
    peak_tflops_gpu_bf16: float

    @property
    def peak_tflops_tile_bf16(self) -> float:
        tiles_per_gpu = self.tiles_per_node // self.gpus_per_node
        return self.peak_tflops_gpu_bf16 / tiles_per_gpu

    @property
    def tile_memory_gb(self) -> float:
        tiles_per_gpu = self.tiles_per_node // self.gpus_per_node
        return self.gpu_memory_gb / tiles_per_gpu


#: Aurora: Intel Max 1550, 6 GPUs (12 tiles)/node, Slingshot 11.
AURORA = Machine(
    name="Aurora", gpus_per_node=6, tiles_per_node=12, gpu_memory_gb=128.0,
    gpu_memory_bw_tbs=2.0, nics_per_node=8, network_bw_gbs=200.0,
    scaleup_bw_gbs=28.0, peak_tflops_gpu_bf16=458.0)

#: LUMI: AMD MI250X, 4 GPUs (8 GCDs)/node, Slingshot 11.
LUMI = Machine(
    name="LUMI", gpus_per_node=4, tiles_per_node=8, gpu_memory_gb=128.0,
    gpu_memory_bw_tbs=3.2, nics_per_node=4, network_bw_gbs=100.0,
    scaleup_bw_gbs=50.0, peak_tflops_gpu_bf16=383.0)
