"""Background CRC scrubbing over retained sharded checkpoints.

At-rest state rots: storage firmware bugs, torn writes behind a crashed
node, and plain bit rot all corrupt checkpoint shards *after* a clean
save.  Waiting until a resume to discover that is the worst time — the
newest generation is exactly the one a recovering run reaches for.  The
scrubber walks every retained generation, re-verifies each array against
the per-array CRC32s in the checkpoint manifest, and reports findings
without raising, so one rotten generation never hides the health of the
others (contrast :func:`repro.train.read_sharded_checkpoint`, which
fail-stops on the first mismatch because its caller is about to *use*
the arrays).

Paired with N-replica retention (``TrainerConfig.keep_checkpoints`` /
:func:`repro.train.prune_checkpoints`) and fall-back resume
(:meth:`repro.train.Trainer.load_latest`), this closes the state-domain
corruption loop: scrub finds rot early, retention guarantees an older
intact generation exists, resume skips past the rotten one bit-exactly.

``tools/scrub_checkpoints.py`` is the operational CLI over this module.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..train.checkpoint import (MANIFEST_NAME, CheckpointCorruption,
                                CheckpointError, list_checkpoints,
                                read_sharded_checkpoint)
from .checksum import payload_checksum

__all__ = ["ScrubFinding", "ScrubReport", "scrub_checkpoint",
           "scrub_checkpoints", "latest_valid_checkpoint"]


@dataclass(frozen=True)
class ScrubFinding:
    """One corrupted array (or unreadable shard) in one generation."""

    shard: str
    array: str
    reason: str


@dataclass
class ScrubReport:
    """Verification result for one checkpoint generation."""

    directory: str
    n_arrays: int = 0
    nbytes: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        status = "OK" if self.ok else f"CORRUPT ({len(self.findings)})"
        lines = [f"{self.directory}: {status}  "
                 f"[{self.n_arrays} arrays, {self.nbytes:,} bytes]"]
        for f in self.findings:
            lines.append(f"  {f.shard}:{f.array}: {f.reason}")
        return "\n".join(lines)


def scrub_checkpoint(directory: str) -> ScrubReport:
    """Verify every array of one generation against its manifest CRCs.

    Collects *all* findings instead of raising on the first, so an
    operator sees the full blast radius of a rotten generation.
    """
    report = ScrubReport(directory=directory)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        report.findings.append(
            ScrubFinding(MANIFEST_NAME, "-", f"manifest unreadable: {exc}"))
        return report
    for fname, entry in manifest.get("shards", {}).items():
        fpath = os.path.join(directory, fname)
        try:
            with np.load(fpath) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            report.findings.append(
                ScrubFinding(fname, "-", f"shard unreadable: {exc}"))
            continue
        for name, expected in entry.get("arrays", {}).items():
            if name not in arrays:
                report.findings.append(
                    ScrubFinding(fname, name, "array missing from shard"))
                continue
            array = arrays[name]
            report.n_arrays += 1
            report.nbytes += int(array.nbytes)
            observed = payload_checksum(array)
            if observed != expected:
                report.findings.append(ScrubFinding(
                    fname, name,
                    f"crc mismatch (manifest {expected}, shard {observed})"))
    return report


def scrub_checkpoints(root: str) -> list[ScrubReport]:
    """Scrub every retained generation under ``root`` (oldest first),
    booking telemetry per generation and alert-grade events per corrupt
    one."""
    reports = []
    for directory in list_checkpoints(root):
        report = scrub_checkpoint(directory)
        reports.append(report)
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.checkpoints_scrubbed",
                             "checkpoint generations CRC-verified").inc()
            if not report.ok:
                registry.counter(
                    "resilience.scrub_corruptions",
                    "corrupted arrays found by the scrubber").inc(
                    len(report.findings))
        if not report.ok:
            _record_event("checkpoint.scrub_corrupt", subsystem="resilience",
                          severity="critical", path=directory,
                          findings=len(report.findings))
    return reports


def latest_valid_checkpoint(root: str) -> str | None:
    """The newest generation under ``root`` that fully reads back and
    verifies (the one :meth:`repro.train.Trainer.load_latest` would
    restore), or ``None`` when every generation is rotten."""
    for directory in reversed(list_checkpoints(root)):
        try:
            read_sharded_checkpoint(directory, verify=True)
        except (CheckpointError, CheckpointCorruption):
            continue
        return directory
    return None
