"""Seeded fault injection: the fault taxonomy, the schedule, the injector.

The fault model covers the failure classes a 10,080-node AERIS run (and
ORBIT's Frontier runs before it) actually meets:

* **fail-stop** — a rank dies at a scheduled step and never comes back;
  every collective touching it raises :class:`RankFailure` (permanent —
  the supervisor must re-grid, see :mod:`repro.resilience.supervisor`);
* **bit flip** — a message payload is corrupted in flight; the per-message
  checksum (:mod:`repro.resilience.checksum`) detects it and the cluster
  re-sends (transient — healed by retry, surfaces as
  :class:`MessageCorruption` only when retries are exhausted);
* **drop** — a message never arrives; the simulated timeout fires and the
  cluster re-sends (transient — :class:`CommTimeout` when exhausted);
* **straggler** — a link delivers late; no data is lost, but the delay is
  metered so chaos runs expose tail-latency behaviour.

Faults come from a :class:`FaultPlan`: an explicit list of scheduled
events (deterministic — "the first allreduce transfer of step 3 is
corrupted") plus optional seeded background rates (statistical chaos).
Both are driven by one :class:`numpy` generator seeded from the plan, so
a chaos run is exactly reproducible from ``(plan, workload)``.

The injector addresses ranks in the *current* grid.  After an elastic
recovery the surviving ranks are renumbered, so the supervisor calls
:meth:`FaultInjector.reset_grid` to retire consumed fail-stop events and
clear the dead set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event

__all__ = [
    "ResilienceError", "RankFailure", "MessageCorruption", "CommTimeout",
    "ClusterFailure",
    "FailStop", "BitFlip", "Drop", "Straggle",
    "FaultPlan", "FaultInjector",
]


# -- taxonomy of typed failures ------------------------------------------------
class ResilienceError(RuntimeError):
    """Base class for all injected-fault escalations."""


class RankFailure(ResilienceError):
    """A collective touched a dead rank (fail-stop; permanent)."""

    def __init__(self, rank: int, primitive: str | None = None):
        self.rank = rank
        self.primitive = primitive
        detail = f" (detected in {primitive})" if primitive else ""
        super().__init__(f"rank {rank} is dead{detail}")


class MessageCorruption(ResilienceError):
    """A payload kept failing checksum verification after all retries."""


class CommTimeout(ResilienceError):
    """A message kept getting dropped after all retries."""


class ClusterFailure(ResilienceError):
    """No viable degraded topology / restart budget exhausted."""


# -- scheduled fault events ----------------------------------------------------
@dataclass(frozen=True)
class FailStop:
    """Rank ``rank`` dies permanently at the start of step ``step``."""

    rank: int
    step: int = 0


@dataclass(frozen=True)
class BitFlip:
    """Corrupt the ``nth`` transfer of ``primitive`` ("*" = any) at
    ``step`` — detected by checksum, healed by retry."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0


@dataclass(frozen=True)
class Drop:
    """Drop the ``nth`` transfer of ``primitive`` at ``step`` — the
    simulated timeout fires and the message is re-sent."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0


@dataclass(frozen=True)
class Straggle:
    """Deliver the ``nth`` transfer of ``primitive`` at ``step`` late by
    ``delay_s`` simulated seconds (no data loss)."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0
    delay_s: float = 0.05


@dataclass(frozen=True)
class FaultPlan:
    """Scheduled events plus seeded background fault rates.

    ``p_bitflip`` / ``p_drop`` / ``p_straggle`` are per-transfer-attempt
    probabilities drawn from one generator seeded with ``seed`` — the
    statistical half of a chaos run, deterministic per plan.
    """

    events: tuple = ()
    seed: int = 0
    p_bitflip: float = 0.0
    p_drop: float = 0.0
    p_straggle: float = 0.0
    straggle_delay_s: float = 0.02

    @classmethod
    def chaos(cls, seed: int, p_bitflip: float = 0.01, p_drop: float = 0.01,
              p_straggle: float = 0.02, events: tuple = ()) -> "FaultPlan":
        """A background-noise chaos plan (optionally with scheduled events)."""
        return cls(events=tuple(events), seed=seed, p_bitflip=p_bitflip,
                   p_drop=p_drop, p_straggle=p_straggle)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a stream of simulated transfers.

    The cluster asks two questions:

    * :meth:`raise_if_dead` — before any collective: is a participant dead?
    * :meth:`transfer_fault` — per delivery attempt: does this transfer
      drop, flip, or straggle?

    ``injected`` tallies every fault dealt (per kind), which
    :meth:`repro.obs.TraceReport.resilience_check` reconciles against the
    detections the comm layer booked — no fault may go unobserved.
    """

    def __init__(self, plan: FaultPlan = FaultPlan()):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.step = 0
        self.dead: set[int] = set()
        self.injected: dict = defaultdict(int)
        self._spent_failstops: set = set()
        self._n: dict = defaultdict(int)  # per-step transfer index by primitive
        self.advance(0)

    # -- schedule position -------------------------------------------------
    def advance(self, step: int) -> None:
        """Move to training step ``step``: reset per-step transfer indices
        and mark any fail-stops that have come due."""
        self.step = step
        self._n.clear()
        for ev in self.plan.events:
            if (isinstance(ev, FailStop) and ev not in self._spent_failstops
                    and ev.step <= step and ev.rank not in self.dead):
                self.kill(ev.rank)

    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead (fail-stop) from now on."""
        if rank not in self.dead:
            self.dead.add(rank)
            self._record_injected("failstop")

    def reset_grid(self) -> None:
        """The supervisor rebuilt the rank grid: survivors are renumbered,
        so the dead set is cleared and due fail-stop events are retired
        (future events address the *new* grid)."""
        for ev in self.plan.events:
            if isinstance(ev, FailStop) and ev.step <= self.step:
                self._spent_failstops.add(ev)
        self.dead.clear()

    # -- cluster-facing queries --------------------------------------------
    def raise_if_dead(self, ranks, primitive: str | None = None) -> None:
        for rank in ranks:
            if rank in self.dead:
                raise RankFailure(rank, primitive)

    def transfer_fault(self, primitive: str, src: int, dst: int,
                       attempt: int) -> tuple[str | None, float]:
        """Fault decision for one delivery attempt.

        Returns ``(fault, straggle_delay_s)`` where ``fault`` is ``None``
        (clean delivery), ``"flip"`` or ``"drop"``.  Scheduled events only
        hit the first attempt (so retries heal them); background rates
        apply to every attempt independently.
        """
        fault: str | None = None
        delay = 0.0
        plan = self.plan
        if attempt == 0:
            idx = {primitive: self._n[primitive], "*": self._n["*"]}
            self._n[primitive] += 1
            self._n["*"] += 1
            for ev in plan.events:
                if isinstance(ev, FailStop):
                    continue
                if ev.step != self.step or ev.primitive not in idx \
                        or ev.nth != idx[ev.primitive]:
                    continue
                if isinstance(ev, Straggle):
                    delay = max(delay, ev.delay_s)
                elif fault is None:
                    fault = "flip" if isinstance(ev, BitFlip) else "drop"
        if fault is None and plan.p_bitflip \
                and self.rng.random() < plan.p_bitflip:
            fault = "flip"
        if fault is None and plan.p_drop and self.rng.random() < plan.p_drop:
            fault = "drop"
        if not delay and plan.p_straggle \
                and self.rng.random() < plan.p_straggle:
            delay = plan.straggle_delay_s
        if fault is not None:
            self._record_injected(fault)
        if delay:
            self._record_injected("straggler")
        return fault, delay

    def corrupt(self, array: np.ndarray) -> np.ndarray:
        """A copy of ``array`` with one seeded bit flipped — what the
        receiver 'gets' when a bit-flip fault fires."""
        a = np.ascontiguousarray(array)
        raw = bytearray(a.tobytes())
        if raw:
            pos = int(self.rng.integers(len(raw)))
            raw[pos] ^= 1 << int(self.rng.integers(8))
        return np.frombuffer(bytes(raw), dtype=a.dtype).reshape(a.shape)

    # -- bookkeeping -------------------------------------------------------
    def _record_injected(self, kind: str) -> None:
        self.injected[kind] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.faults_injected",
                             "faults dealt by the injector").inc(1, kind=kind)
        _record_event("fault.injected", subsystem="resilience",
                      severity="warning", fault=kind, step=self.step)
