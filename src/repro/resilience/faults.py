"""Seeded fault injection: the fault taxonomy, the schedule, the injector.

The fault model covers the failure classes a 10,080-node AERIS run (and
ORBIT's Frontier runs before it) actually meets:

* **fail-stop** — a rank dies at a scheduled step and never comes back;
  every collective touching it raises :class:`RankFailure` (permanent —
  the supervisor must re-grid, see :mod:`repro.resilience.supervisor`);
* **bit flip** — a message payload is corrupted in flight; the per-message
  checksum (:mod:`repro.resilience.checksum`) detects it and the cluster
  re-sends (transient — healed by retry, surfaces as
  :class:`MessageCorruption` only when retries are exhausted);
* **drop** — a message never arrives; the simulated timeout fires and the
  cluster re-sends (transient — :class:`CommTimeout` when exhausted);
* **straggler** — a link delivers late; no data is lost, but the delay is
  metered so chaos runs expose tail-latency behaviour;
* **compute-domain SDC** — a bit flips *at rest or in flight through the
  ALU*, not on the wire: a GEMM output element (:class:`ComputeFault`
  site ``"gemm"``, detected by the ABFT checksums in
  :mod:`repro.kernels.abft`), a weight or optimizer shard (sites
  ``"weight"`` / ``"optimizer"``, detected by the guarded trainer's state
  audit), or a served forecast (site ``"forecast"``, caught by the
  physical guardrails in :mod:`repro.serve.guardrails`).  All surface as
  :class:`ComputeCorruption` and are healed by step rollback / re-serve.

Faults come from a :class:`FaultPlan`: an explicit list of scheduled
events (deterministic — "the first allreduce transfer of step 3 is
corrupted") plus optional seeded background rates (statistical chaos).
Both are driven by one :class:`numpy` generator seeded from the plan, so
a chaos run is exactly reproducible from ``(plan, workload)``.

The injector addresses ranks in the *current* grid.  After an elastic
recovery the surviving ranks are renumbered, so the supervisor calls
:meth:`FaultInjector.reset_grid` to retire consumed fail-stop events and
clear the dead set.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event

__all__ = [
    "ResilienceError", "RankFailure", "MessageCorruption", "CommTimeout",
    "ClusterFailure", "ComputeCorruption",
    "FailStop", "BitFlip", "Drop", "Straggle", "ComputeFault",
    "FaultPlan", "FaultInjector",
    "inject_compute", "compute_injector",
    "SDC_SITE_KINDS",
]

#: Injection/reconciliation kind per compute-fault site: the injector
#: tallies these in ``injected`` and ``TraceReport.sdc_check`` matches
#: them against the detections each defense layer booked.
SDC_SITE_KINDS = {
    "gemm": "sdc_gemm",
    "weight": "sdc_weight",
    "optimizer": "sdc_opt",
    "forecast": "sdc_forecast",
}


# -- taxonomy of typed failures ------------------------------------------------
class ResilienceError(RuntimeError):
    """Base class for all injected-fault escalations."""


class RankFailure(ResilienceError):
    """A collective touched a dead rank (fail-stop; permanent)."""

    def __init__(self, rank: int, primitive: str | None = None):
        self.rank = rank
        self.primitive = primitive
        detail = f" (detected in {primitive})" if primitive else ""
        super().__init__(f"rank {rank} is dead{detail}")


class MessageCorruption(ResilienceError):
    """A payload kept failing checksum verification after all retries."""


class CommTimeout(ResilienceError):
    """A message kept getting dropped after all retries."""


class ClusterFailure(ResilienceError):
    """No viable degraded topology / restart budget exhausted."""


class ComputeCorruption(ResilienceError):
    """Silent data corruption detected in the compute domain.

    Raised by the ABFT-guarded kernels (a GEMM output failed its
    row/column checksum), by the guarded trainer's state audit (a weight
    or optimizer shard changed outside an optimizer step), or by the
    guarded trainer when bounded step retries are exhausted.  ``site``
    names where the corruption was localized (``"gemm"``, ``"weight"``,
    ``"optimizer"``, ``"forecast"``) and ``detail`` carries the
    localization (kernel label, column index, parameter section, ...).
    """

    def __init__(self, site: str, detail: str = "", sites=None):
        self.site = site
        #: Every site implicated in this detection; a single state audit
        #: can catch weight *and* optimizer corruption at once, and the
        #: one rollback that follows closes all of them.
        self.sites = tuple(sites) if sites else (site,)
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(f"compute corruption in {site}{suffix}")


# -- scheduled fault events ----------------------------------------------------
@dataclass(frozen=True)
class FailStop:
    """Rank ``rank`` dies permanently at the start of step ``step``."""

    rank: int
    step: int = 0


@dataclass(frozen=True)
class BitFlip:
    """Corrupt the ``nth`` transfer of ``primitive`` ("*" = any) at
    ``step`` — detected by checksum, healed by retry."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0


@dataclass(frozen=True)
class Drop:
    """Drop the ``nth`` transfer of ``primitive`` at ``step`` — the
    simulated timeout fires and the message is re-sent."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0


@dataclass(frozen=True)
class Straggle:
    """Deliver the ``nth`` transfer of ``primitive`` at ``step`` late by
    ``delay_s`` simulated seconds (no data loss)."""

    step: int = 0
    primitive: str = "*"
    nth: int = 0
    delay_s: float = 0.05


@dataclass(frozen=True)
class ComputeFault:
    """Flip a bit in the compute domain at ``step``.

    ``site`` selects the corruption target: ``"gemm"`` corrupts the
    output of the ``nth`` ABFT-guarded GEMM executed that step,
    ``"weight"`` / ``"optimizer"`` flip one bit in the live model /
    optimizer state before the step runs, and ``"forecast"`` poisons one
    served forecast on the ``step``-th dispatch (``nth`` selects which
    guarded call within the dispatch).
    """

    step: int = 0
    site: str = "gemm"
    nth: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """Scheduled events plus seeded background fault rates.

    ``p_bitflip`` / ``p_drop`` / ``p_straggle`` are per-transfer-attempt
    probabilities drawn from one generator seeded with ``seed`` — the
    statistical half of a chaos run, deterministic per plan.
    """

    events: tuple = ()
    seed: int = 0
    p_bitflip: float = 0.0
    p_drop: float = 0.0
    p_straggle: float = 0.0
    straggle_delay_s: float = 0.02
    p_compute: float = 0.0

    @classmethod
    def chaos(cls, seed: int, p_bitflip: float = 0.01, p_drop: float = 0.01,
              p_straggle: float = 0.02, events: tuple = (),
              p_compute: float = 0.0) -> "FaultPlan":
        """A background-noise chaos plan (optionally with scheduled events)."""
        return cls(events=tuple(events), seed=seed, p_bitflip=p_bitflip,
                   p_drop=p_drop, p_straggle=p_straggle, p_compute=p_compute)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a stream of simulated transfers.

    The cluster asks two questions:

    * :meth:`raise_if_dead` — before any collective: is a participant dead?
    * :meth:`transfer_fault` — per delivery attempt: does this transfer
      drop, flip, or straggle?

    ``injected`` tallies every fault dealt (per kind), which
    :meth:`repro.obs.TraceReport.resilience_check` reconciles against the
    detections the comm layer booked — no fault may go unobserved.
    """

    def __init__(self, plan: FaultPlan = FaultPlan()):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.step = 0
        self.dead: set[int] = set()
        self.injected: dict = defaultdict(int)
        self._spent_failstops: set = set()
        self._spent_state: set = set()
        self._n: dict = defaultdict(int)  # per-step transfer index by primitive
        self.advance(0)

    # -- schedule position -------------------------------------------------
    def advance(self, step: int) -> None:
        """Move to training step ``step``: reset per-step transfer indices
        and mark any fail-stops that have come due."""
        self.step = step
        self._n.clear()
        for ev in self.plan.events:
            if (isinstance(ev, FailStop) and ev not in self._spent_failstops
                    and ev.step <= step and ev.rank not in self.dead):
                self.kill(ev.rank)

    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead (fail-stop) from now on."""
        if rank not in self.dead:
            self.dead.add(rank)
            self._record_injected("failstop")

    def reset_grid(self) -> None:
        """The supervisor rebuilt the rank grid: survivors are renumbered,
        so the dead set is cleared and due fail-stop events are retired
        (future events address the *new* grid)."""
        for ev in self.plan.events:
            if isinstance(ev, FailStop) and ev.step <= self.step:
                self._spent_failstops.add(ev)
        self.dead.clear()

    # -- cluster-facing queries --------------------------------------------
    def raise_if_dead(self, ranks, primitive: str | None = None) -> None:
        for rank in ranks:
            if rank in self.dead:
                raise RankFailure(rank, primitive)

    def transfer_fault(self, primitive: str, src: int, dst: int,
                       attempt: int) -> tuple[str | None, float]:
        """Fault decision for one delivery attempt.

        Returns ``(fault, straggle_delay_s)`` where ``fault`` is ``None``
        (clean delivery), ``"flip"`` or ``"drop"``.  Scheduled events only
        hit the first attempt (so retries heal them); background rates
        apply to every attempt independently.
        """
        fault: str | None = None
        delay = 0.0
        plan = self.plan
        if attempt == 0:
            idx = {primitive: self._n[primitive], "*": self._n["*"]}
            self._n[primitive] += 1
            self._n["*"] += 1
            for ev in plan.events:
                # Only comm-domain events carry a primitive; fail-stops
                # are handled by advance()/raise_if_dead and compute
                # faults by compute_fault().
                if not isinstance(ev, (BitFlip, Drop, Straggle)):
                    continue
                if ev.step != self.step or ev.primitive not in idx \
                        or ev.nth != idx[ev.primitive]:
                    continue
                if isinstance(ev, Straggle):
                    delay = max(delay, ev.delay_s)
                elif fault is None:
                    fault = "flip" if isinstance(ev, BitFlip) else "drop"
        if fault is None and plan.p_bitflip \
                and self.rng.random() < plan.p_bitflip:
            fault = "flip"
        if fault is None and plan.p_drop and self.rng.random() < plan.p_drop:
            fault = "drop"
        if not delay and plan.p_straggle \
                and self.rng.random() < plan.p_straggle:
            delay = plan.straggle_delay_s
        if fault is not None:
            self._record_injected(fault)
        if delay:
            self._record_injected("straggler")
        return fault, delay

    def corrupt(self, array: np.ndarray) -> np.ndarray:
        """A copy of ``array`` with one seeded bit flipped — what the
        receiver 'gets' when a bit-flip fault fires."""
        a = np.ascontiguousarray(array)
        raw = bytearray(a.tobytes())
        if raw:
            pos = int(self.rng.integers(len(raw)))
            raw[pos] ^= 1 << int(self.rng.integers(8))
        return np.frombuffer(bytes(raw), dtype=a.dtype).reshape(a.shape)

    # -- compute-domain faults ---------------------------------------------
    def compute_fault(self, site: str = "gemm") -> bool:
        """Fault decision for one guarded compute operation at ``site``.

        Scheduled :class:`ComputeFault` events hit the ``nth`` guarded
        call of their site within the current step; the background
        ``p_compute`` rate applies to every call independently.  Returns
        ``True`` when the caller must corrupt its output (and the fault
        is booked as injected).  A rolled-back retry re-runs *clean*
        because the per-step call index has moved past the scheduled
        ``nth`` — mirroring how a transient hardware flip does not recur
        deterministically.
        """
        key = f"sdc:{site}"
        idx = self._n[key]
        self._n[key] += 1
        fired = False
        for ev in self.plan.events:
            if (isinstance(ev, ComputeFault) and ev.site == site
                    and ev.step == self.step and ev.nth == idx):
                fired = True
        if not fired and self.plan.p_compute \
                and self.rng.random() < self.plan.p_compute:
            fired = True
        if fired:
            self._record_injected(SDC_SITE_KINDS.get(site, f"sdc_{site}"))
        return fired

    def state_faults(self) -> list[str]:
        """Scheduled state-corruption sites (``"weight"`` /
        ``"optimizer"``) due at the current step, each consumed exactly
        once — the guarded trainer applies them via
        :meth:`corrupt_state` before running the step.

        Duplicate events for the same site at the same step collapse to
        one: a CRC section audit detects "this section is corrupt", not
        how many bits flipped, so booking a second injection that no
        detector could ever count separately would make
        detected-vs-injected reconciliation fail by construction."""
        sites: list[str] = []
        for ev in self.plan.events:
            if (isinstance(ev, ComputeFault)
                    and ev.site in ("weight", "optimizer")
                    and ev.step == self.step and ev not in self._spent_state):
                self._spent_state.add(ev)
                if ev.site not in sites:
                    sites.append(ev.site)
        return sites

    def corrupt_state(self, arrays, site: str) -> None:
        """Flip one seeded bit *in place* across ``arrays`` — persistent
        state corruption (any bit: the CRC audit catches them all)."""
        arrays = [np.asarray(a) for a in arrays if np.asarray(a).size]
        if not arrays:
            return
        arr = arrays[int(self.rng.integers(len(arrays)))]
        raw = np.ascontiguousarray(arr).view(np.uint8).reshape(-1)
        pos = int(self.rng.integers(raw.size))
        raw[pos] ^= np.uint8(1 << int(self.rng.integers(8)))
        self._record_injected(SDC_SITE_KINDS.get(site, f"sdc_{site}"))

    def corrupt_compute(self, array: np.ndarray) -> None:
        """Flip the high exponent bit of one seeded element *in place* —
        the detectable class of GEMM corruption (a transient that lands
        below the checksum noise floor is numerically indistinguishable
        from rounding and is out of the threat model)."""
        flat = array.reshape(-1)
        if not flat.size:
            return
        idx = int(self.rng.integers(flat.size))
        if array.dtype == np.float64:
            flat.view(np.uint64)[idx] ^= np.uint64(1) << np.uint64(62)
        elif array.dtype == np.float32:
            flat.view(np.uint32)[idx] ^= np.uint32(1) << np.uint32(30)
        else:  # fall back to a sign flip for other real dtypes
            flat[idx] = -flat[idx] if flat[idx] != 0 else flat.dtype.type(1)

    def poison_forecast(self, arrays) -> None:
        """Poison one seeded element of one forecast array *in place*
        with a physically absurd value (NaN or ±huge) — the class of
        output corruption the serve guardrails are specified to catch."""
        arrays = [a for a in arrays if a.size]
        if not arrays:
            return
        arr = arrays[int(self.rng.integers(len(arrays)))]
        flat = arr.reshape(-1)
        idx = int(self.rng.integers(flat.size))
        poison = (np.nan, 1e30, -1e30)[int(self.rng.integers(3))]
        flat[idx] = poison

    # -- bookkeeping -------------------------------------------------------
    def _record_injected(self, kind: str) -> None:
        self.injected[kind] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.faults_injected",
                             "faults dealt by the injector").inc(1, kind=kind)
        _record_event("fault.injected", subsystem="resilience",
                      severity="warning", fault=kind, step=self.step)


# -- global compute-fault scope ------------------------------------------------
# The ABFT-guarded kernels sit far below the trainer and take raw arrays,
# so the active injector travels through module state rather than every
# call signature — same pattern as the obs hooks in repro.obs.profile.
_COMPUTE_INJECTOR: FaultInjector | None = None


def compute_injector() -> FaultInjector | None:
    """The injector whose compute faults guarded kernels must consult
    (``None`` outside an :func:`inject_compute` scope)."""
    return _COMPUTE_INJECTOR


@contextmanager
def inject_compute(injector: FaultInjector | None):
    """Install ``injector`` as the compute-fault source for the dynamic
    extent of the block (``None`` is a no-op scope)."""
    global _COMPUTE_INJECTOR
    previous = _COMPUTE_INJECTOR
    _COMPUTE_INJECTOR = injector
    try:
        yield injector
    finally:
        _COMPUTE_INJECTOR = previous
