"""``repro.resilience`` — fault injection, self-healing, elastic recovery.

The reliability layer the paper's scale implies (10,080 Aurora nodes /
120,960 tiles — rank failures, stragglers, and corrupted messages are
routine there, as ORBIT's Frontier runs document):

* :mod:`~repro.resilience.faults` — the fault taxonomy (typed
  exceptions), :class:`FaultPlan` (seeded schedule of fail-stops, bit
  flips, drops, stragglers) and :class:`FaultInjector` (applies the plan
  to the simulated cluster's transfers);
* :mod:`~repro.resilience.atomic` — crash-safe file writes (temp +
  fsync + rename), shared by checkpoints and every
  :mod:`repro.obs` exporter;
* :mod:`~repro.resilience.checksum` — per-message / per-array CRC32
  binding dtype + shape, used by the self-healing collectives and the
  checkpoint manifest;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: exponential
  backoff for transient faults (metered, not slept);
* :mod:`~repro.resilience.supervisor` — :class:`ElasticSupervisor`: runs
  SWiPe training under a fault plan, autosaves atomic sharded
  checkpoints, and on :class:`RankFailure` re-grids onto the surviving
  ranks and resumes from the last valid checkpoint.

Every injected fault, detection, retry, and recovery is booked through
:mod:`repro.obs`, and :meth:`repro.obs.TraceReport.resilience_check`
reconciles the injector's tally against the observations.

The supervisor is imported lazily (PEP 562): the low-level comm layer
imports this package for the taxonomy/checksums, while the supervisor
sits *above* :mod:`repro.parallel` — lazy loading keeps that layering
acyclic.
"""

from .atomic import atomic_open, atomic_write
from .checksum import (content_digest, payload_checksum, state_digest,
                       verify_payload)
from .faults import (BitFlip, ClusterFailure, CommTimeout, ComputeCorruption,
                     ComputeFault, Drop, FailStop, FaultInjector, FaultPlan,
                     MessageCorruption, RankFailure, ResilienceError,
                     Straggle, compute_injector, inject_compute)
from .retry import RetryBudget, RetryPolicy

_SUPERVISOR_EXPORTS = ("ElasticSupervisor", "SupervisorConfig")
#: Checkpoint-scrub exports live above repro.train, so they are lazy too.
_SCRUB_EXPORTS = ("ScrubFinding", "ScrubReport", "latest_valid_checkpoint",
                  "scrub_checkpoint", "scrub_checkpoints")

__all__ = [
    "atomic_open", "atomic_write",
    "payload_checksum", "verify_payload", "content_digest", "state_digest",
    "ResilienceError", "RankFailure", "MessageCorruption", "CommTimeout",
    "ClusterFailure", "ComputeCorruption",
    "FailStop", "BitFlip", "Drop", "Straggle", "ComputeFault",
    "FaultPlan", "FaultInjector",
    "inject_compute", "compute_injector",
    "RetryPolicy", "RetryBudget",
    *_SUPERVISOR_EXPORTS,
    *_SCRUB_EXPORTS,
]


def __getattr__(name: str):
    if name in _SUPERVISOR_EXPORTS or name == "supervisor":
        import importlib
        module = importlib.import_module(".supervisor", __name__)
        return module if name == "supervisor" else getattr(module, name)
    if name in _SCRUB_EXPORTS or name == "scrub":
        import importlib
        module = importlib.import_module(".scrub", __name__)
        return module if name == "scrub" else getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
