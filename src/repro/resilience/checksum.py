"""Content checksums for in-flight messages and checkpointed arrays.

At AERIS scale (120,960 Aurora tiles) silent data corruption — a flipped
bit on a link, a torn write on a burst buffer — is a *when*, not an *if*.
Every simulated collective payload and every checkpoint shard therefore
carries a CRC32 over its raw bytes plus a header binding the dtype and
shape, so a corrupted message is detected at delivery (and retried, see
:mod:`repro.parallel.comm`) and a corrupted checkpoint is rejected at load
(and an older one used, see :mod:`repro.resilience.supervisor`).

CRC32 is deliberate: it is stdlib, fast enough to run on every simulated
message, and detects the single/low-multiplicity bit flips the fault
model injects.  It is *not* cryptographic — the threat model is hardware
corruption, not an adversary.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["payload_checksum", "verify_payload"]


def payload_checksum(array: np.ndarray) -> int:
    """CRC32 over an array's bytes, seeded with its dtype + shape.

    Binding the header means a payload that was truncated or reinterpreted
    (same bytes, different shape) also fails verification, not only one
    with flipped bits.
    """
    a = np.ascontiguousarray(array)
    header = f"{a.dtype.str}:{a.shape}".encode()
    return zlib.crc32(a.tobytes(), zlib.crc32(header))


def verify_payload(array: np.ndarray, expected: int) -> bool:
    """True iff ``array`` hashes to ``expected``."""
    return payload_checksum(array) == int(expected)
