"""Content checksums for in-flight messages and checkpointed arrays.

At AERIS scale (120,960 Aurora tiles) silent data corruption — a flipped
bit on a link, a torn write on a burst buffer — is a *when*, not an *if*.
Every simulated collective payload and every checkpoint shard therefore
carries a CRC32 over its raw bytes plus a header binding the dtype and
shape, so a corrupted message is detected at delivery (and retried, see
:mod:`repro.parallel.comm`) and a corrupted checkpoint is rejected at load
(and an older one used, see :mod:`repro.resilience.supervisor`).

CRC32 is deliberate: it is stdlib, fast enough to run on every simulated
message, and detects the single/low-multiplicity bit flips the fault
model injects.  It is *not* cryptographic — the threat model is hardware
corruption, not an adversary.

Alongside the fast CRCs live the SHA-256 *content digests* used wherever
an artifact needs a collision-resistant address rather than a corruption
check: the forecast cache keys entries by them, the model registry stores
blobs under them, and checkpoint manifests embed them so lineage survives
the round trip.  They live here (not in :mod:`repro.serve`) because both
the training and serving stacks need the exact same byte-level hash — a
registry weights digest must equal the digest the forecast cache computes
for the same ``state_dict``, or version isolation silently breaks.
"""

from __future__ import annotations

import hashlib
import zlib

import numpy as np

__all__ = ["payload_checksum", "verify_payload",
           "content_digest", "state_digest"]


def payload_checksum(array: np.ndarray) -> int:
    """CRC32 over an array's bytes, seeded with its dtype + shape.

    Binding the header means a payload that was truncated or reinterpreted
    (same bytes, different shape) also fails verification, not only one
    with flipped bits.
    """
    a = np.ascontiguousarray(array)
    header = f"{a.dtype.str}:{a.shape}".encode()
    return zlib.crc32(a.tobytes(), zlib.crc32(header))


def verify_payload(array: np.ndarray, expected: int) -> bool:
    """True iff ``array`` hashes to ``expected``."""
    return payload_checksum(array) == int(expected)


def content_digest(array: np.ndarray) -> str:
    """SHA-256 over dtype, shape, and raw bytes (content address).

    This is the canonical single-array digest: the forecast cache keys
    initial states with it and the registry addresses blobs by it, so the
    byte layout (dtype string, shape tuple repr, then raw bytes) must not
    change — doing so would orphan every stored blob and cache entry.
    """
    h = hashlib.sha256()
    a = np.ascontiguousarray(array)
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def state_digest(state: dict) -> str:
    """SHA-256 over a named mapping of arrays (sorted by name).

    The canonical multi-array digest: ``serve.cache.weights_digest`` is
    this applied to a model's ``state_dict``, and the registry uses the
    same hash for its weight blobs — which is what makes a registry
    version and a live serving binding comparable by digest alone.
    """
    h = hashlib.sha256()
    for name, array in sorted(state.items()):
        h.update(name.encode())
        a = np.ascontiguousarray(array)
        h.update(str(a.dtype).encode())
        h.update(str(a.shape).encode())
        h.update(a.tobytes())
    return h.hexdigest()
