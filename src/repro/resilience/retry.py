"""Retry policy for transient communication faults.

Transient faults (dropped or corrupted messages) are healed by
re-transmission with exponential backoff; the backoff waits are *virtual*
in the simulation — no wall-clock sleeping — but they are metered
(``comm.backoff_s`` histogram) so chaos runs report the latency a real
fabric would have paid, mirroring how oneCCL/RCCL surface retransmit
costs in their counters.

Two refinements keep retries safe at scale:

* **full-jitter backoff** (``jitter=1.0``): each wait is drawn uniformly
  from ``[ (1-jitter)·cap, cap ]`` so ten thousand ranks hit by the same
  fabric hiccup do not retry in lockstep (the classic thundering-herd
  fix).  The draw comes from a caller-provided generator, so simulated
  runs stay bit-reproducible;
* a per-operation **retry budget** (:class:`RetryBudget`): a cap on the
  total simulated seconds and re-sent bytes one logical transfer may
  burn across retries.  A fault that keeps recurring escalates as soon
  as the budget is spent instead of grinding through ``max_retries``
  maximal backoffs — bounding the tail a single sick link can add to a
  collective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "RetryBudget"]


@dataclass
class RetryBudget:
    """Mutable per-operation spend ledger for one retried transfer.

    ``charge`` books the cost of one more retry and reports whether the
    budget still has room; ``None`` caps mean unlimited (the default
    policy — existing behaviour).
    """

    max_retry_s: float | None = None
    max_retry_bytes: int | None = None
    spent_s: float = field(default=0.0)
    spent_bytes: int = field(default=0)

    @property
    def exhausted(self) -> bool:
        if self.max_retry_s is not None and self.spent_s > self.max_retry_s:
            return True
        return (self.max_retry_bytes is not None
                and self.spent_bytes > self.max_retry_bytes)

    def charge(self, seconds: float = 0.0, nbytes: int = 0) -> bool:
        """Book one retry's backoff + re-sent payload; ``False`` means
        the budget is now exhausted and the caller must escalate."""
        self.spent_s += seconds
        self.spent_bytes += nbytes
        return not self.exhausted


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-send a faulted message, and how long to wait.

    ``backoff_s(attempt)`` is the simulated wait before retry ``attempt``
    (1-based): ``base * factor**(attempt-1)``, capped at ``max_backoff_s``.
    With ``jitter`` > 0 and a generator supplied, the wait is drawn
    uniformly from ``[(1-jitter)·cap, cap]`` — ``jitter=1.0`` is full
    jitter.  ``max_retry_s`` / ``max_retry_bytes`` seed the per-operation
    :class:`RetryBudget` (``None`` = unlimited).
    """

    max_retries: int = 3
    base_backoff_s: float = 0.004
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.0
    max_retry_s: float | None = None
    max_retry_bytes: int | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, attempt: int, rng=None) -> float:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        cap = min(self.base_backoff_s * self.backoff_factor ** (attempt - 1),
                  self.max_backoff_s)
        if self.jitter and rng is not None:
            return cap * (1.0 - self.jitter * float(rng.random()))
        return cap

    def schedule(self) -> list[float]:
        """All backoff waits a fully-retried message would pay, in order
        (jitter-free caps — the deterministic upper envelope)."""
        return [self.backoff_s(a) for a in range(1, self.max_retries + 1)]

    def budget(self) -> RetryBudget:
        """A fresh per-operation budget for one logical transfer."""
        return RetryBudget(max_retry_s=self.max_retry_s,
                           max_retry_bytes=self.max_retry_bytes)
