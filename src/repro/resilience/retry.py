"""Retry policy for transient communication faults.

Transient faults (dropped or corrupted messages) are healed by
re-transmission with exponential backoff; the backoff waits are *virtual*
in the simulation — no wall-clock sleeping — but they are metered
(``comm.backoff_s`` histogram) so chaos runs report the latency a real
fabric would have paid, mirroring how oneCCL/RCCL surface retransmit
costs in their counters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-send a faulted message, and how long to wait.

    ``backoff_s(attempt)`` is the simulated wait before retry ``attempt``
    (1-based): ``base * factor**(attempt-1)``, capped at ``max_backoff_s``.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.004
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-shrinking")

    def backoff_s(self, attempt: int) -> float:
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_backoff_s * self.backoff_factor ** (attempt - 1),
                   self.max_backoff_s)

    def schedule(self) -> list[float]:
        """All backoff waits a fully-retried message would pay, in order."""
        return [self.backoff_s(a) for a in range(1, self.max_retries + 1)]
