"""Elastic supervision: SWiPe training that survives injected faults.

The :class:`ElasticSupervisor` is the simulated analogue of the job-level
restart logic a 10,080-node AERIS run needs: it drives the
:class:`~repro.parallel.swipe.SwipeEngine` step by step under a
:class:`~repro.resilience.faults.FaultInjector`, and when a fail-stop
surfaces as :class:`~repro.resilience.faults.RankFailure` it

1. **re-grids** — :meth:`RankTopology.degrade` drops the DP replicas that
   contained dead ranks (falling back to shrinking SP, then WP),
2. **rebuilds** the engine on the surviving-rank topology (the injector's
   grid is reset: survivors are renumbered),
3. **reloads** the newest checkpoint that passes integrity verification
   (:class:`~repro.train.checkpoint.CheckpointCorruption` falls back to
   the previous one), restoring weights, flat optimizer moments, and the
   surviving replicas' rng streams,
4. and **continues** from the checkpointed step.

Transient faults (bit flips, drops, stragglers) never reach the
supervisor — the comm layer's checksum-verify-retry heals them
bit-exactly — so a transient-only chaos run reproduces the fault-free
trajectory exactly.  After an elastic re-grid the batch splits across a
different DP degree, so the trajectory is close but not bit-identical
(see DESIGN.md for the tolerance discussion).

Batches are sampled per *step* from ``default_rng([seed, 7777, step])``,
not from one evolving stream, so a replay after recovery resamples the
very same batches it would have seen without the failure.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis
from ..model import AerisConfig
from ..obs.profile import health as _obs_health
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..parallel.swipe import SwipeEngine
from ..parallel.topology import RankTopology
from ..train.checkpoint import (CheckpointCorruption, list_checkpoints,
                                read_sharded_checkpoint,
                                write_sharded_checkpoint)
from ..train.trainer import evaluate_validation_loss
from .faults import ClusterFailure, FaultInjector, FaultPlan, RankFailure

__all__ = ["SupervisorConfig", "ElasticSupervisor"]

#: Spawn-key constant separating the batch-sampling stream from every
#: other seeded stream in the run.
_BATCH_STREAM = 7777


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for one supervised chaos run."""

    seed: int = 0
    lr: float = 1e-3
    global_batch: int = 8
    gas: int = 2
    save_every: int = 1
    checkpoint_root: str = "checkpoints"
    max_restarts: int = 4


class ElasticSupervisor:
    """Run SWiPe training to completion across injected failures."""

    def __init__(self, model_config: AerisConfig,
                 archive: SyntheticReanalysis,
                 topology: RankTopology | None = None,
                 config: SupervisorConfig = SupervisorConfig(),
                 fault_plan: FaultPlan | None = None,
                 injector: FaultInjector | None = None,
                 plan=None, machine=None, world_size: int | None = None):
        self.model_config = model_config
        self.archive = archive
        self.cfg = config
        self.machine = machine
        self.plan = None
        self.gas = config.gas
        if plan is not None:
            from ..parallel import autotune as _autotune
            if self.machine is None:
                self.machine = _autotune.MACHINES["aurora"]
            if world_size is None:
                if topology is None and not isinstance(
                        plan, _autotune.TunedPlan):
                    raise ValueError(
                        "plan='auto' needs a rank budget: pass world_size "
                        "(or a topology to take it from)")
                world_size = (plan.world_size
                              if isinstance(plan, _autotune.TunedPlan)
                              else topology.world_size)
            self.plan = _autotune.resolve_plan(
                plan, model_config, self.machine, world_size,
                config.global_batch)
            topology = self.plan.chosen_topology
            self.gas = self.plan.chosen.gas
        elif topology is None:
            raise ValueError("pass a topology or plan='auto'")
        self.topology = topology
        if injector is None:
            injector = FaultInjector(fault_plan if fault_plan is not None
                                     else FaultPlan())
        self.injector = injector
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.train_indices = archive.split_indices("train")
        self.history: list[float] = []
        self.recoveries: list[dict] = []
        self.restarts = 0
        self._build_engine()

    # -- engine lifecycle --------------------------------------------------
    def _build_engine(self) -> None:
        if self.cfg.global_batch % self.topology.dp:
            raise ValueError(
                f"global batch {self.cfg.global_batch} not divisible by "
                f"DP={self.topology.dp}")
        self.engine = SwipeEngine(self.model_config, self.archive,
                                  self.topology, lr=self.cfg.lr,
                                  seed=self.cfg.seed, injector=self.injector)
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("resilience.world_size",
                           "ranks in the current grid").set(
                self.topology.world_size)
            if self.plan is not None:
                registry.gauge(
                    "autotune.predicted_step_s",
                    "chosen layout's predicted step time").set(
                    self.plan.chosen.predicted_step_s)

    # -- main loop ---------------------------------------------------------
    def run(self, n_steps: int) -> dict:
        """Train for ``n_steps`` completed steps; recover as needed.

        Returns ``{"history", "recoveries", "restarts", "final_step"}``.
        """
        while len(self.history) < n_steps:
            step = len(self.history)
            self.injector.advance(step)
            try:
                loss = self._train_one(step)
            except RankFailure as failure:
                self._recover(step, failure)
                continue
            self.history.append(loss)
            monitor = _obs_health()
            if monitor is not None:
                monitor.observe_step(step, loss)
            _record_event("train.step", subsystem="resilience", step=step,
                          loss=loss)
            done = len(self.history)
            if self.cfg.save_every and (done % self.cfg.save_every == 0
                                        or done == n_steps):
                self._save()
        return {"history": list(self.history),
                "recoveries": list(self.recoveries),
                "restarts": self.restarts,
                "final_step": len(self.history)}

    def _train_one(self, step: int) -> float:
        # Per-step generator: a replay after recovery resamples the exact
        # batch this step would have seen in the fault-free run.
        rng = np.random.default_rng([self.cfg.seed, _BATCH_STREAM, step])
        indices = rng.choice(self.train_indices,
                             size=self.cfg.global_batch, replace=False)
        cond, residual, forc = self.archive.training_batch(
            indices, self.state_norm, self.residual_norm, self.forcing_norm)
        x_t, t, v = self.engine.make_training_pairs(residual)
        t0 = time.perf_counter() if self.plan is not None else 0.0
        loss = self.engine.train_step(x_t, t, v, cond, forc, gas=self.gas)
        if self.plan is not None:
            registry = _obs_metrics()
            if registry is not None:
                registry.gauge(
                    "autotune.observed_step_s",
                    "last measured training step wall time").set(
                    time.perf_counter() - t0)
        return loss

    # -- checkpointing -----------------------------------------------------
    def _checkpoint_dir(self, step: int) -> str:
        return os.path.join(self.cfg.checkpoint_root, f"step-{step:08d}")

    def _save(self) -> str:
        shards, engine_extra = self.engine.state_payload()
        extra = {"step": len(self.history),
                 "history": list(self.history),
                 "engine": engine_extra}
        path = write_sharded_checkpoint(
            self._checkpoint_dir(len(self.history)), shards, extra=extra)
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.checkpoints",
                             "sharded checkpoints written").inc()
        _record_event("checkpoint.save", subsystem="resilience", path=path,
                      step=len(self.history))
        return path

    def _restore_latest(self) -> str | None:
        """Load the newest checkpoint that verifies; corrupt ones fall
        back to the previous.  Returns the directory used (``None`` means
        restart from scratch)."""
        registry = _obs_metrics()
        for directory in reversed(list_checkpoints(self.cfg.checkpoint_root)):
            try:
                shards, extra = read_sharded_checkpoint(directory)
            except CheckpointCorruption:
                if registry is not None:
                    registry.counter(
                        "resilience.checkpoints_rejected",
                        "checkpoints failing integrity checks").inc()
                continue
            self.engine.restore(shards, extra.get("engine"))
            self.history = [float(x) for x in extra.get("history", [])]
            return directory
        self.history = []  # no valid checkpoint: from-scratch restart
        return None

    # -- recovery ----------------------------------------------------------
    def _recover(self, step: int, failure: RankFailure) -> None:
        self.restarts += 1
        if self.restarts > self.cfg.max_restarts:
            raise ClusterFailure(
                f"restart budget exhausted ({self.cfg.max_restarts}) at "
                f"step {step}") from failure
        dead = sorted(self.injector.dead)
        old = self.topology
        with _span("resilience.recovery", category="resilience", step=step,
                   dead_ranks=str(dead), old_world=old.world_size):
            self.topology = old.degrade(dead)
            if self.plan is not None:
                self._replan(step)
            self.injector.reset_grid()
            self._build_engine()
            restored_from = self._restore_latest()
        record = {"step": step, "dead_ranks": dead,
                  "world_size": [old.world_size, self.topology.world_size],
                  "dp": [old.dp, self.topology.dp],
                  "layout": (f"dp{self.topology.dp}.pp{self.topology.pp}"
                             f".wp{self.topology.wp_grid[0]}x"
                             f"{self.topology.wp_grid[1]}"
                             f".sp{self.topology.sp}"),
                  "replanned": self.plan is not None,
                  "resumed_at_step": len(self.history),
                  "restored_from": restored_from}
        self.recoveries.append(record)
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.recoveries",
                             "elastic re-grid recoveries").inc()
            registry.counter("resilience.dead_ranks",
                             "fail-stopped ranks handled").inc(len(dead))
        _record_event("resilience.recovery", subsystem="resilience",
                      severity="critical", step=step, dead_ranks=dead,
                      world_size=self.topology.world_size,
                      restored_from=restored_from)

    def _replan(self, step: int) -> None:
        """Re-tune the layout for the surviving ranks.

        :meth:`RankTopology.degrade` picks a *safe* survivor layout; a
        tuned run then asks the planner whether a different carve-up of
        the same surviving ranks would be faster and adopts the plan's
        choice (the engine is rebuilt from the checkpoint either way).
        """
        from ..parallel import autotune as _autotune
        old_plan = self.plan
        try:
            self.plan = _autotune.plan_for(
                self.model_config, self.machine,
                self.topology.world_size, self.cfg.global_batch,
                pipeline=old_plan.pipeline,
                micro_batches=old_plan.micro_batches,
                schedule=old_plan.schedule)
        except _autotune.NoFeasibleLayout as exc:
            raise ClusterFailure(
                f"no feasible tuned layout on the "
                f"{self.topology.world_size} surviving rank(s) at step "
                f"{step}") from exc
        self.topology = self.plan.chosen_topology
        self.gas = self.plan.chosen.gas
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("autotune.replans",
                             "layout re-tunes after elastic re-grids"
                             ).inc()
        _record_event("autotune.replan", subsystem="autotune", step=step,
                      world_size=self.topology.world_size,
                      layout=self.plan.chosen.layout_key,
                      predicted_step_s=self.plan.chosen.predicted_step_s)

    # -- evaluation --------------------------------------------------------
    def validation_loss(self, batch_size: int = 8, n_batches: int = 2,
                        seed: int = 1234) -> float:
        """Fixed-seed held-out loss — directly comparable across faulted
        and fault-free runs (same evaluator as the reference trainer)."""
        engine = self.engine
        return evaluate_validation_loss(
            engine.replicas[0], self.archive, engine.flow,
            engine.lat_weights, engine.var_weights, self.state_norm,
            self.residual_norm, self.forcing_norm, batch_size=batch_size,
            n_batches=n_batches, seed=seed)
