"""Crash-safe file writes: temp file + fsync + atomic rename.

One helper, shared by every durable artifact the repo produces —
checkpoint ``.npz`` archives (:mod:`repro.train.checkpoint`), Chrome
traces (:meth:`repro.obs.Tracer.write_chrome`), Prometheus text and
flight-recorder JSONL exports (:mod:`repro.obs.export`).  The contract is
the one the checkpoint layer has always honoured: a crash at any point
leaves either the complete old file or the complete new file, never a
truncated hybrid, because the data is staged under a temp name in the
*same directory* (so the rename cannot cross filesystems), fsynced, and
then moved into place with ``os.replace`` (atomic on POSIX).

This module is intentionally stdlib-only and import-free within the
repo, so :mod:`repro.obs` can use it without creating an import cycle
(``repro.resilience.faults`` imports the obs hooks).
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["atomic_write", "atomic_open"]


@contextlib.contextmanager
def atomic_open(path: str, mode: str = "wb"):
    """Context manager yielding a temp-file handle that replaces ``path``
    only if the block completes; on any exception the temp file is
    removed and the destination is left untouched.

    ``mode`` must be a write mode (``"wb"`` or ``"w"``).  The handle is
    flushed and fsynced before the rename.
    """
    if "w" not in mode:
        raise ValueError(f"atomic_open needs a write mode, got {mode!r}")
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def atomic_write(path: str, data: bytes | str) -> str:
    """Write ``data`` to ``path`` atomically; returns ``path``."""
    mode = "wb" if isinstance(data, bytes) else "w"
    with atomic_open(path, mode) as fh:
        fh.write(data)
    return path
