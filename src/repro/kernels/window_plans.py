"""Memoized window partition/merge plans with the cyclic shift folded in.

The reference data path for one (shifted) Swin attention is four separate
array movements per direction::

    roll -> reshape -> transpose -> reshape       (partition)
    reshape -> transpose -> reshape -> roll       (merge)

Each is a full copy of the activation grid.  But the composition is just a
fixed permutation of the ``H*W`` token axis, so it collapses to a single
gather whose index vector depends only on ``(grid, window, shift)``.
:func:`window_plan` builds that gather (and its inverse) once per key and
caches it; :func:`plan_partition` / :func:`plan_merge` apply it as one
``np.take`` per direction, with an autograd backward that is the inverse
gather (no ``np.add.at`` scatter — the map is a bijection).

Bit-exactness: a permutation moves values without touching them, so the
planned path produces byte-identical outputs and gradients to the reference
``cyclic_shift`` + ``window_partition`` + ``window_merge`` chain (golden
tests in ``tests/kernels/test_golden.py`` hold this to ``np.array_equal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..tensor import Tensor
from .plan_cache import LRUCache

__all__ = ["WindowPlan", "window_plan", "plan_partition", "plan_merge"]

_WINDOW_PLANS = LRUCache("window_plans", maxsize=64)


@dataclass(frozen=True)
class WindowPlan:
    """A cached shift+partition permutation over one token grid.

    ``gather[t]`` is the flat pixel index (row-major over the *unshifted*
    grid) feeding window-major token slot ``t``; ``scatter`` is its inverse.
    """

    grid: tuple[int, int]
    window: tuple[int, int]
    shift: tuple[int, int]
    n_windows: int
    tokens: int
    gather: np.ndarray = field(repr=False)
    scatter: np.ndarray = field(repr=False)


def _build_plan(grid: tuple[int, int], window: tuple[int, int],
                shift: tuple[int, int]) -> WindowPlan:
    h, w = grid
    wh, ww = window
    if h % wh or w % ww:
        raise ValueError(f"grid {h}x{w} not divisible by window {window}")
    nh, nw = h // wh, w // ww
    idx = np.arange(h * w, dtype=np.intp).reshape(h, w)
    sh, sw = shift
    if sh or sw:
        # Matches cyclic_shift: the data is rolled by (-sh, -sw), i.e. the
        # pixel landing at p comes from np.roll(idx, (-sh, -sw))[p].
        idx = np.roll(idx, (-sh, -sw), axis=(0, 1))
    gather = (idx.reshape(nh, wh, nw, ww)
                 .transpose(0, 2, 1, 3)
                 .reshape(-1))
    scatter = np.empty_like(gather)
    scatter[gather] = np.arange(h * w, dtype=np.intp)
    gather.setflags(write=False)
    scatter.setflags(write=False)
    return WindowPlan(grid=grid, window=window, shift=shift,
                      n_windows=nh * nw, tokens=wh * ww,
                      gather=gather, scatter=scatter)


def window_plan(grid: tuple[int, int], window: tuple[int, int],
                shift: tuple[int, int] = (0, 0)) -> WindowPlan:
    """The memoized plan for ``(grid, window, shift)``."""
    grid = (int(grid[0]), int(grid[1]))
    window = (int(window[0]), int(window[1]))
    shift = (int(shift[0]), int(shift[1]))
    key = (grid, window, shift)
    return _WINDOW_PLANS.get_or_build(
        key, lambda: _build_plan(grid, window, shift))


def _partition_axes(a: np.ndarray, window: tuple[int, int]) -> np.ndarray:
    """Window-major reorder of ``(B, H, W, D)`` by reshape/transpose (the
    fast path when no shift is folded in — NumPy fuses it into one copy)."""
    b, h, w, d = a.shape
    wh, ww = window
    return (a.reshape(b, h // wh, wh, w // ww, ww, d)
             .transpose(0, 1, 3, 2, 4, 5)
             .reshape(b, (h // wh) * (w // ww), wh * ww, d))


def _merge_axes(a: np.ndarray, grid: tuple[int, int],
                window: tuple[int, int]) -> np.ndarray:
    b = a.shape[0]
    d = a.shape[-1]
    h, w = grid
    wh, ww = window
    return (a.reshape(b, h // wh, w // ww, wh, ww, d)
             .transpose(0, 1, 3, 2, 4, 5)
             .reshape(b, h, w, d))


def plan_partition(x: Tensor, plan: WindowPlan) -> Tensor:
    """``(B, H, W, D)`` -> ``(B, n_windows, wh*ww, D)`` as one graph node.

    Shifted plans apply shift+partition as a single cached-index gather;
    unshifted plans take the plain reshape/transpose copy (faster than a
    gather when there is no roll to fold in).  Both are permutations, so
    outputs and gradients are bit-identical to the reference chain.
    """
    b, h, w, d = x.shape
    if (h, w) != plan.grid:
        raise ValueError(f"input grid {(h, w)} != plan grid {plan.grid}")
    shifted = plan.shift != (0, 0)
    if shifted:
        flat = x.data.reshape(b, h * w, d)
        data = np.take(flat, plan.gather, axis=1).reshape(
            b, plan.n_windows, plan.tokens, d)
    else:
        data = _partition_axes(x.data, plan.window)

    def backward(g):
        if shifted:
            gf = g.reshape(b, h * w, d)
            return (np.take(gf, plan.scatter, axis=1).reshape(b, h, w, d),)
        return (_merge_axes(g, plan.grid, plan.window),)

    return Tensor._make(data, (x,), backward)


def plan_merge(windows: Tensor, plan: WindowPlan) -> Tensor:
    """Inverse of :func:`plan_partition` (merge + un-shift in one node)."""
    b = windows.shape[0]
    d = windows.shape[-1]
    h, w = plan.grid
    if windows.shape[1] * windows.shape[2] != h * w:
        raise ValueError(f"window stack {windows.shape} does not cover "
                         f"grid {plan.grid}")
    shifted = plan.shift != (0, 0)
    if shifted:
        flat = windows.data.reshape(b, h * w, d)
        data = np.take(flat, plan.scatter, axis=1).reshape(b, h, w, d)
    else:
        data = _merge_axes(windows.data, plan.grid, plan.window)

    def backward(g):
        if shifted:
            gf = g.reshape(b, h * w, d)
            return (np.take(gf, plan.gather, axis=1).reshape(
                b, plan.n_windows, plan.tokens, d),)
        return (_partition_axes(g, plan.window),)

    return Tensor._make(data, (windows,), backward)
