"""Bounded LRU caches for execution plans.

The Swin hot paths (window partition/merge, cyclic shift, RoPE) are pure
functions of a handful of small integers — shape, window, shift, head_dim.
Recomputing their index maps and rotation tables on every forward is pure
waste, but an unbounded memo dict is a slow leak in a long-lived serving
process that sees many shapes.  :class:`LRUCache` is the middle ground:
plans are built once per key, reused until evicted, and the total number of
retained plans is bounded.

Every cache self-registers in a module-level registry so
:func:`plan_cache_stats` can expose hit/miss/eviction counts to benchmarks
and :func:`clear_plan_caches` can reset the world between tests.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, TypeVar

__all__ = ["LRUCache", "plan_cache_stats", "clear_plan_caches"]

V = TypeVar("V")

#: name -> cache; populated by LRUCache.__init__.
_REGISTRY: dict[str, "LRUCache"] = {}


class LRUCache:
    """A small bounded least-recently-used cache with hit/miss counters.

    Parameters
    ----------
    name:
        Registry key; also used in :func:`plan_cache_stats` output.  A second
        cache created under an existing name replaces the registry entry
        (useful in tests) but does not affect the first cache's contents.
    maxsize:
        Maximum number of retained entries; least-recently-used entries are
        evicted first.  Must be positive.
    """

    def __init__(self, name: str, maxsize: int = 64):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_build(self, key: Hashable, builder: Callable[[], V]) -> V:
        """Return the cached value for ``key``, building (and caching) it on
        a miss.  Builds happen at most once per resident key."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            value = builder()
            self._entries[key] = value
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def clear(self) -> None:
        self._entries.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict[str, int]:
        return {"size": len(self._entries), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


def plan_cache_stats() -> dict[str, dict[str, int]]:
    """Per-cache ``{size, maxsize, hits, misses, evictions}`` counters."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}


def clear_plan_caches(reset_stats: bool = True) -> None:
    """Drop every cached plan (and, by default, zero the counters)."""
    for cache in _REGISTRY.values():
        cache.clear()
        if reset_stats:
            cache.reset_stats()
