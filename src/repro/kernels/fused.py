"""Fused hot-path kernels: rotary embedding and softmax(QKᵀ)·V.

The reference implementations in :mod:`repro.nn.attention` build one autograd
node per primitive — for the attention core that is six graph nodes and as
many fresh full-size temporaries per call.  The kernels here compute the same
mathematics as a single node each, with in-place NumPy updates on
arena-pooled scratch where the value cannot escape.

Bit-exactness is a hard contract, enforced by golden tests: every ufunc is
applied to the same operands in the same order as the reference graph, BF16
emulation rounds exactly the matmul operands the reference rounds (including
in backward, which reuses the *rounded* forward operands, as
``Tensor.__matmul__`` does), FLOP accounting mirrors the reference node for
node, and float32 accumulation semantics are unchanged (NumPy matmul/BLAS,
same layouts — no layout "optimizations" that could change the reduction
order).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, is_grad_enabled
from ..tensor.bf16 import bf16_matmul_enabled, round_bf16
from ..tensor.flops import add_flops, flops_enabled
from ..tensor.tensor import _unbroadcast
from ..tensor.workspace import arena
from .abft import guard_gemm

__all__ = ["fused_apply_rotary", "fused_dot_product_attention",
           "fused_swiglu_forward"]


def fused_apply_rotary(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate feature pairs of ``x`` by per-token angles, as one graph node.

    Same contract as :func:`repro.nn.attention.apply_rotary`:
    ``x`` is ``(..., tokens, head_dim)``, ``cos``/``sin`` are
    ``(tokens, head_dim // 2)``.
    """
    xa = x.data
    half = xa.shape[-1] // 2
    pair_shape = xa.shape[:-1] + (half, 2)
    pairs = xa.reshape(pair_shape)
    x0 = pairs[..., 0]
    x1 = pairs[..., 1]
    out = np.empty(pair_shape, dtype=np.result_type(xa, cos))
    o0 = out[..., 0]
    o1 = out[..., 1]
    # r0 = x0*c - x1*s ; r1 = x0*s + x1*c  (identical ufunc order to the
    # reference mul/sub/add chain; in-place only on freshly written slots).
    np.multiply(x0, cos, out=o0)
    o0 -= x1 * sin
    np.multiply(x0, sin, out=o1)
    o1 += x1 * cos
    x_shape = xa.shape

    def backward(g):
        gp = g.reshape(pair_shape)
        g0 = gp[..., 0]
        g1 = gp[..., 1]
        gx = np.empty(pair_shape, dtype=g.dtype)
        b0 = gx[..., 0]
        b1 = gx[..., 1]
        # d/dx0 = g0*c + g1*s ; d/dx1 = g1*c - g0*s (addition order differs
        # from the reference only by commutations, which are exact).
        np.multiply(g0, cos, out=b0)
        b0 += g1 * sin
        np.multiply(g1, cos, out=b1)
        b1 -= g0 * sin
        return (gx.reshape(x_shape),)

    return Tensor._make(out.reshape(x_shape), (x,), backward)


def fused_dot_product_attention(q: Tensor, k: Tensor, v: Tensor) -> Tensor:
    """Softmax attention ``softmax(q·kᵀ/√d)·v`` as one graph node.

    Same contract as :func:`repro.nn.attention.dot_product_attention`:
    shapes ``(..., tokens, head_dim)`` in and out, float32 accumulation via
    the same NumPy matmuls, max-subtracted softmax.
    """
    qa, ka, va = q.data, k.data, v.data
    bf16 = bf16_matmul_enabled()
    if bf16:
        qa_, ka_, va_ = round_bf16(qa), round_bf16(ka), round_bf16(va)
    else:
        qa_, ka_, va_ = qa, ka, va
    kT = np.swapaxes(ka_, -1, -2)
    # Matches the reference's `1.0 / np.sqrt(hd)` python-float -> fp32 coerce.
    scale = np.float32(1.0 / np.sqrt(qa.shape[-1]))

    grad_needed = is_grad_enabled() and (
        q.requires_grad or k.requires_grad or v.requires_grad)
    scores_shape = np.broadcast_shapes(qa_.shape[:-2], kT.shape[:-2]) \
        + (qa_.shape[-2], kT.shape[-1])
    scores_dtype = np.result_type(qa_, kT)
    ws = arena() if not grad_needed else None
    if ws is not None:
        scores = ws.get(scores_shape, scores_dtype)
        np.matmul(qa_, kT, out=scores)
    else:
        scores = np.matmul(qa_, kT)
    guard_gemm(qa_, kT, scores, "attention.scores")
    if flops_enabled():
        add_flops(2 * scores.size * qa_.shape[-1])
    scores *= scale
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    probs = scores
    probs_ = round_bf16(probs) if bf16 else probs
    out = probs_ @ va_
    guard_gemm(probs_, va_, out, "attention.out")
    if flops_enabled():
        add_flops(2 * out.size * probs_.shape[-1])
    if ws is not None:
        ws.release(scores)
        return Tensor._make(out, (q, k, v), lambda g: (None, None, None))

    q_shape, k_shape, v_shape = qa.shape, ka.shape, va.shape
    kT_shape = kT.shape

    def backward(g):
        tokens = probs_.shape[-1]
        head_dim = qa_.shape[-1]
        g_ = round_bf16(g) if bf16 else g
        # out = probs_ @ va_  (backward reuses the rounded forward operands,
        # exactly as Tensor.__matmul__ captures them).
        if flops_enabled():
            add_flops(4 * g.size * tokens)
        g_probs = _unbroadcast(g_ @ np.swapaxes(va_, -1, -2), probs.shape)
        g_v = _unbroadcast(np.swapaxes(probs_, -1, -2) @ g_, v_shape)
        # softmax backward (on the unrounded probabilities).
        dot = (g_probs * probs).sum(axis=-1, keepdims=True)
        g_scores = (g_probs - dot) * probs
        g_scores *= scale
        g_scores_ = round_bf16(g_scores) if bf16 else g_scores
        # scores = qa_ @ kT  backward.
        if flops_enabled():
            add_flops(4 * g_scores.size * head_dim)
        g_q = _unbroadcast(g_scores_ @ ka_, q_shape)
        g_kT = _unbroadcast(np.swapaxes(qa_, -1, -2) @ g_scores_, kT_shape)
        g_k = np.swapaxes(g_kT, -1, -2)
        return (g_q, g_k, g_v)

    return Tensor._make(out, (q, k, v), backward)


def fused_swiglu_forward(x: Tensor, w_gate: np.ndarray, w_up: np.ndarray,
                         w_down: np.ndarray) -> np.ndarray:
    """Inference-only SwiGLU ``(silu(x·Wg) * (x·Wu)) · Wd`` on raw arrays.

    All three hidden-width intermediates live in arena scratch; only the
    (narrow) output is freshly allocated.  Caller guarantees no-grad.
    """
    xa = x.data
    bf16 = bf16_matmul_enabled()
    xa_ = round_bf16(xa) if bf16 else xa
    wg = round_bf16(w_gate) if bf16 else w_gate
    wu = round_bf16(w_up) if bf16 else w_up
    ws = arena()
    hidden_shape = xa.shape[:-1] + (w_gate.shape[-1],)
    hidden_dtype = np.result_type(xa_, wg)
    gate = ws.get(hidden_shape, hidden_dtype)
    np.matmul(xa_, wg, out=gate)
    guard_gemm(xa_, wg, gate, "swiglu.gate")
    if flops_enabled():
        add_flops(2 * gate.size * xa_.shape[-1])
    # silu: sig = 1 / (1 + exp(-h)); h *= sig  (same ufunc chain as
    # Tensor.silu, with the scratch pooled).
    sig = ws.get(hidden_shape, hidden_dtype)
    np.negative(gate, out=sig)
    np.exp(sig, out=sig)
    sig += 1.0
    np.divide(1.0, sig, out=sig)
    gate *= sig
    up = ws.get(hidden_shape, hidden_dtype)
    np.matmul(xa_, wu, out=up)
    guard_gemm(xa_, wu, up, "swiglu.up")
    if flops_enabled():
        add_flops(2 * up.size * xa_.shape[-1])
    gate *= up
    gate_ = round_bf16(gate) if bf16 else gate
    wd = round_bf16(w_down) if bf16 else w_down
    out = gate_ @ wd
    guard_gemm(gate_, wd, out, "swiglu.down")
    if flops_enabled():
        add_flops(2 * out.size * gate_.shape[-1])
    ws.release(up)
    ws.release(sig)
    ws.release(gate)
    return out
