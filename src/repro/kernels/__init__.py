"""Hot-path kernel plans and fused ops (the "make it fast, keep it exact"
layer).

``repro.kernels`` sits between the layer library and the autograd engine:

* :mod:`~repro.kernels.plan_cache` — bounded LRU caches with hit/miss
  counters, shared by every plan type;
* :mod:`~repro.kernels.window_plans` — window partition/merge gather plans
  with the Swin cyclic shift folded in, keyed by ``(grid, window, shift)``;
* :mod:`~repro.kernels.rope_cache` — memoized axial 2D RoPE tables keyed by
  ``(window, head_dim, base, dtype)``;
* :mod:`~repro.kernels.fused` — single-node rotary and softmax(QKᵀ)·V
  kernels (and an inference SwiGLU) that reuse
  :mod:`repro.tensor.workspace` scratch.

Every kernel is bit-exact against the reference implementation it replaces
(golden tests); :func:`disable_kernels` flips the consumers
(:class:`repro.nn.MultiHeadAttention`, :class:`repro.nn.SwiGLU`,
:class:`repro.model.SwinBlock`) back to the reference paths, which is how
the golden tests and the before/after benchmarks get both behaviors from
one build.
"""

from __future__ import annotations

from contextlib import contextmanager

from .abft import abft_enabled, abft_guard, abft_matmul, guard_gemm
from .fused import (
    fused_apply_rotary,
    fused_dot_product_attention,
    fused_swiglu_forward,
)
from .plan_cache import LRUCache, clear_plan_caches, plan_cache_stats
from .rope_cache import rope_tables
from .window_plans import WindowPlan, plan_merge, plan_partition, window_plan

__all__ = [
    "kernels_enabled", "disable_kernels",
    "abft_enabled", "abft_guard", "abft_matmul", "guard_gemm",
    "LRUCache", "plan_cache_stats", "clear_plan_caches",
    "WindowPlan", "window_plan", "plan_partition", "plan_merge",
    "rope_tables",
    "fused_apply_rotary", "fused_dot_product_attention",
    "fused_swiglu_forward",
]

_ENABLED = True


def kernels_enabled() -> bool:
    """Whether consumers should take the planned/fused paths."""
    return _ENABLED


@contextmanager
def disable_kernels():
    """Run the block on the reference (unfused, plan-free) paths."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
