"""Memoized axial 2D RoPE rotation tables.

Every Swin block (and every SWiPe sharded attention call) needs the same
``(cos, sin)`` tables for a given ``(window, head_dim, base, dtype)`` —
the tables depend only on within-window token coordinates, so shifted and
unshifted windows, all blocks of a model, and all models of a process can
share one pair of read-only arrays.  The builder delegates to the canonical
:func:`repro.model.rope.axial_rope_table`, so cached tables are bitwise
identical to freshly built ones.
"""

from __future__ import annotations

import numpy as np

from .plan_cache import LRUCache

__all__ = ["rope_tables"]

_ROPE_TABLES = LRUCache("rope_tables", maxsize=32)


def rope_tables(window: tuple[int, int], head_dim: int, base: float = 100.0,
                dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
    """Cached, read-only ``(cos, sin)`` tables of shape
    ``(wh*ww, head_dim // 2)``; keyed by ``(window, head_dim, base, dtype)``."""
    window = (int(window[0]), int(window[1]))
    dtype = np.dtype(dtype)
    key = (window, int(head_dim), float(base), dtype.str)

    def build() -> tuple[np.ndarray, np.ndarray]:
        # Imported lazily: repro.nn (our importer's package) is itself
        # imported by repro.model, so a top-level import would be circular.
        from ..model.rope import axial_rope_table
        cos, sin = axial_rope_table(window, head_dim, base)
        cos = cos.astype(dtype, copy=False)
        sin = sin.astype(dtype, copy=False)
        cos.setflags(write=False)
        sin.setflags(write=False)
        return cos, sin

    return _ROPE_TABLES.get_or_build(key, build)
