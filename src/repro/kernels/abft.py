"""ABFT (algorithm-based fault tolerance) checksums for hot GEMMs.

For ``C = A·B`` the row sums of the output must satisfy
``C·1 = A·(B·1)`` — a skinny GEMV costing ``~1/N`` of the original
product.  :func:`guard_gemm` verifies that identity on the *actual
operands* of an already-computed product: a bit flipped in any output
element (or in the accumulator that produced it) shifts exactly one row
sum and is detected and localized to its row, raising
:class:`~repro.resilience.ComputeCorruption`.  This is the classical
Huang–Abraham checksum scheme, the standard SDC defense for exascale
GEMMs.

Numerical contract:

* **bit-exact when clean** — verification only *reads* ``C``; the
  guarded kernels return the identical array, so enabling ABFT cannot
  perturb training numerics;
* **no false positives** — the checksum residual of a clean product is
  rounding noise, bounded by ``eps·(K+N)·Σ|A||B|`` per row; the
  tolerance scales with a Cauchy–Schwarz relaxation of that magnitude
  bound (``‖A_row‖·sqrt(N)·‖B‖_F``, computed from the operands, so
  catastrophic cancellation in ``C`` cannot shrink it);
* **detection floor** — corruptions below the rounding-noise floor are
  numerically indistinguishable from a different summation order and are
  out of the threat model; the injector's
  :meth:`~repro.resilience.FaultInjector.corrupt_compute` flips the high
  exponent bit precisely so injected faults always clear the floor.

The guard is off by default (``abft_enabled()`` is ``False``) and costs
one module-global check per GEMM; :func:`abft_guard` arms it for a scope.
Fault *injection* (via :func:`repro.resilience.inject_compute`) is
consulted independently of the guard, so an undefended run can
demonstrate silent corruption.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience.faults import ComputeCorruption, compute_injector

__all__ = ["abft_enabled", "abft_guard", "guard_gemm", "abft_matmul"]

#: Safety factor on the per-row rounding-noise bound.  The clean
#: residual is ``<= ~(K+N)·eps·Σ|A||B|``; 8x keeps seeds of golden tests
#: comfortably clear while an exponent-bit flip overshoots by >1e3x.
_SAFETY = 8.0

_ENABLED = False


def abft_enabled() -> bool:
    """Whether guarded GEMMs verify their checksums."""
    return _ENABLED


@contextmanager
def abft_guard(enabled: bool = True):
    """Arm (or explicitly disarm) ABFT verification for the block."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    try:
        yield
    finally:
        _ENABLED = previous


def _record_detected(label: str, detail: str) -> None:
    registry = _obs_metrics()
    if registry is not None:
        registry.counter("resilience.sdc_detected",
                         "compute-domain corruptions caught").inc(
            1, kind="sdc_gemm")
    _record_event("compute.sdc_detected", subsystem="kernels",
                  severity="critical", site="gemm", label=label,
                  detail=detail)
    with _span("resilience.sdc", category="resilience", site="gemm",
               label=label):
        pass


def _verify_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 label: str) -> None:
    """Row-checksum verification of ``c = a @ b`` (read-only).

    Checks ``C·1 = A·(B·1)``: both reductions run along the contiguous
    last axis and the reference product is a skinny ``(M,K)@(K,1)`` GEMV,
    which is what keeps the clean-path overhead inside the perf budget
    (bench_sdc.py).  A flipped output element shifts exactly one row sum.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        # Both checksums reduce via batched GEMV against a ones vector —
        # BLAS beats np.sum by ~10x on small batched operands, and any
        # summation-order difference is rounding noise the tolerance
        # already covers.
        ones = np.ones((b.shape[-1], 1), dtype=c.dtype)
        row_obs = np.matmul(c, ones)[..., 0]
        row_ref = np.matmul(a, np.matmul(b, ones))[..., 0]
        # Magnitude bound per row, immune to cancellation in c (so the
        # tolerance can't collapse under it): sum_{k,n} |a_mk||b_kn| <=
        # ||A_m,:||_2·sqrt(N)·||B||_F by Cauchy–Schwarz.  The squared
        # norms come from einsum reductions — one pass over each operand,
        # no |A|/|B| temporaries, no second full GEMM — and only their
        # (tiny) product is promoted to float64, so the hot path stays
        # allocation-light (the per-step budget bench_sdc.py gates).
        a_row_sq = np.einsum("...mk,...mk->...m", a, a)
        b_fro_sq = np.einsum("...kn,...kn->...", b, b)[..., None]
        k = a.shape[-1]
        n = b.shape[-1]
        eps = float(np.finfo(c.dtype).eps) if np.issubdtype(
            c.dtype, np.floating) else float(np.finfo(np.float32).eps)
        tol = (_SAFETY * eps * (k + n) * np.sqrt(n)) \
            * np.sqrt(np.multiply(a_row_sq, b_fro_sq, dtype=np.float64)) \
            + np.finfo(np.float64).tiny
        err = np.abs(np.subtract(row_ref, row_obs, dtype=np.float64))
        ok = err <= tol  # NaN/Inf residuals compare False => detected
    if ok.all():
        return
    bad = np.argwhere(~ok)
    rows = sorted({int(idx[-1]) for idx in bad})
    detail = (f"{label}: row checksum mismatch at "
              f"row(s) {rows[:4]} ({bad.shape[0]} of {ok.size} checks)")
    _record_detected(label, detail)
    raise ComputeCorruption("gemm", detail)


def guard_gemm(a: np.ndarray, b: np.ndarray, c: np.ndarray,
               label: str = "gemm") -> np.ndarray:
    """Fault-injection + ABFT hook around an already-computed ``c = a@b``.

    Consults the active compute injector (corrupting ``c`` in place when
    a fault fires — modeling the hardware flipping an output bit), then
    verifies the column checksums when ABFT is armed.  Returns ``c``
    unchanged on the clean path; the double-global check keeps the
    unguarded hot path at two attribute loads.
    """
    inj = compute_injector()
    if inj is not None and inj.compute_fault("gemm"):
        inj.corrupt_compute(c)
    if _ENABLED:
        _verify_gemm(a, b, c, label)
    return c


def abft_matmul(a: np.ndarray, b: np.ndarray,
                label: str = "matmul") -> np.ndarray:
    """Checksum-guarded ``a @ b`` on raw arrays (always verifies)."""
    c = np.matmul(a, b)
    inj = compute_injector()
    if inj is not None and inj.compute_fault("gemm"):
        inj.corrupt_compute(c)
    _verify_gemm(a, b, c, label)
    return c
