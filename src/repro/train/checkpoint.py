"""Checkpointing: model weights, optimizer state, and EMA shadow weights."""

from __future__ import annotations

import numpy as np

from ..nn import EMA, AdamW, Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(path: str, model: Module, optimizer: AdamW | None = None,
                    ema: EMA | None = None, images_seen: float = 0.0) -> None:
    """Serialize training state to a single ``.npz`` file."""
    payload: dict[str, np.ndarray] = {"meta/images_seen": np.asarray(images_seen)}
    for name, array in model.state_dict().items():
        payload[f"model/{name}"] = array
    if optimizer is not None:
        payload["opt/step_count"] = np.asarray(optimizer.step_count)
        for i, m in enumerate(optimizer.exp_avg):
            payload[f"opt/m/{i}"] = m
        for i, v in enumerate(optimizer.exp_avg_sq):
            payload[f"opt/v/{i}"] = v
    if ema is not None:
        for name, array in ema.state_dict().items():
            payload[f"ema/{name}"] = array
    np.savez(path, **payload)


def load_checkpoint(path: str, model: Module, optimizer: AdamW | None = None,
                    ema: EMA | None = None) -> float:
    """Restore training state; returns ``images_seen``."""
    with np.load(path) as data:
        model.load_state_dict({
            name[len("model/"):]: data[name]
            for name in data.files if name.startswith("model/")})
        if optimizer is not None:
            optimizer.step_count = int(data["opt/step_count"])
            for i in range(len(optimizer.exp_avg)):
                optimizer.exp_avg[i][...] = data[f"opt/m/{i}"]
                optimizer.exp_avg_sq[i][...] = data[f"opt/v/{i}"]
        if ema is not None:
            for name in list(ema.shadow):
                ema.shadow[name][...] = data[f"ema/{name}"]
        return float(data["meta/images_seen"])
