"""Checkpointing: model weights, optimizer state, and EMA shadow weights.

Two formats, both crash-safe:

* **single-file** (:func:`save_checkpoint` / :func:`load_checkpoint`) —
  one ``.npz`` archive, written atomically (temp file + fsync +
  ``os.replace``) so a crash mid-save can never leave a torn file where a
  good checkpoint used to be;
* **sharded** (:func:`save_sharded_checkpoint` /
  :func:`load_sharded_checkpoint`, or the lower-level
  :func:`write_sharded_checkpoint` / :func:`read_sharded_checkpoint`) — a
  directory of per-group ``.npz`` shards plus a ``manifest.json``
  carrying a CRC32 per array.  The directory is staged under a temp name
  and atomically renamed into place; loads verify every array against the
  manifest and raise :class:`CheckpointCorruption` on any mismatch, which
  the elastic supervisor treats as "fall back to the previous
  checkpoint".

Typed errors: :class:`CheckpointError` for structural problems (missing
file, a model-only checkpoint loaded with ``optimizer=``/``ema=``),
:class:`CheckpointCorruption` (a subclass) for integrity failures.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np

from ..nn import EMA, AdamW, Module
from ..resilience.atomic import atomic_open
from ..resilience.checksum import payload_checksum, state_digest

__all__ = [
    "CheckpointError", "CheckpointCorruption", "MANIFEST_NAME",
    "save_checkpoint", "load_checkpoint", "checkpoint_lineage",
    "write_sharded_checkpoint", "read_sharded_checkpoint",
    "save_sharded_checkpoint", "load_sharded_checkpoint",
    "list_checkpoints", "prune_checkpoints",
]

MANIFEST_NAME = "manifest.json"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, incomplete, or structurally wrong."""


class CheckpointCorruption(CheckpointError):
    """A checkpoint failed integrity verification (checksum / unreadable)."""


def _normalize_npz(path: str) -> str:
    """``np.savez`` appends ``.npz`` implicitly; normalize explicitly so
    ``save_checkpoint(p)`` / ``load_checkpoint(p)`` round-trip for any
    spelling of ``p``."""
    return path if path.endswith(".npz") else path + ".npz"


def _write_npz_atomic(path: str, payload: dict) -> None:
    """Write ``payload`` to ``path`` crash-safely (temp + fsync +
    ``os.replace``, via the shared :func:`repro.resilience.atomic_open`)."""
    with atomic_open(path, "wb") as fh:
        np.savez(fh, **payload)


def _training_payload(model: Module, optimizer: AdamW | None,
                      ema: EMA | None, images_seen: float
                      ) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "meta/images_seen": np.asarray(images_seen)}
    for name, array in model.state_dict().items():
        payload[f"model/{name}"] = array
    if optimizer is not None:
        payload["opt/step_count"] = np.asarray(optimizer.step_count)
        for i, m in enumerate(optimizer.exp_avg):
            payload[f"opt/m/{i}"] = m
        for i, v in enumerate(optimizer.exp_avg_sq):
            payload[f"opt/v/{i}"] = v
    if ema is not None:
        for name, array in ema.state_dict().items():
            payload[f"ema/{name}"] = array
    return payload


def _restore_training_state(data, where: str, model: Module,
                            optimizer: AdamW | None, ema: EMA | None
                            ) -> float:
    """Shared restore logic for both formats; ``data`` is any mapping of
    flat ``section/name`` keys to arrays with a ``files``-like key view."""
    keys = set(data)
    model.load_state_dict({
        name[len("model/"):]: data[name]
        for name in keys if name.startswith("model/")})
    if optimizer is not None:
        if "opt/step_count" not in keys:
            raise CheckpointError(
                f"checkpoint {where} has no optimizer state (it was saved "
                "model-only, or with an older format) — pass optimizer=None "
                "or re-save with the optimizer included")
        optimizer.step_count = int(data["opt/step_count"])
        for i in range(len(optimizer.exp_avg)):
            if f"opt/m/{i}" not in keys or f"opt/v/{i}" not in keys:
                raise CheckpointError(
                    f"checkpoint {where} optimizer state is incomplete "
                    f"(missing moments for parameter {i})")
            optimizer.exp_avg[i][...] = data[f"opt/m/{i}"]
            optimizer.exp_avg_sq[i][...] = data[f"opt/v/{i}"]
    if ema is not None:
        missing = [name for name in ema.shadow
                   if f"ema/{name}" not in keys]
        if missing:
            raise CheckpointError(
                f"checkpoint {where} has no EMA state for "
                f"{missing[0]!r}{' (and others)' if len(missing) > 1 else ''}"
                " — pass ema=None or re-save with the EMA included")
        for name in list(ema.shadow):
            ema.shadow[name][...] = data[f"ema/{name}"]
    return float(data["meta/images_seen"])


# -- single-file format --------------------------------------------------------
def save_checkpoint(path: str, model: Module, optimizer: AdamW | None = None,
                    ema: EMA | None = None, images_seen: float = 0.0) -> str:
    """Serialize training state to a single ``.npz`` file, atomically.

    Returns the (suffix-normalized) path actually written.
    """
    path = _normalize_npz(path)
    _write_npz_atomic(path,
                      _training_payload(model, optimizer, ema, images_seen))
    return path


def load_checkpoint(path: str, model: Module, optimizer: AdamW | None = None,
                    ema: EMA | None = None) -> float:
    """Restore training state; returns ``images_seen``."""
    path = _normalize_npz(path)
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path) as data:
        return _restore_training_state(
            {name: data[name] for name in data.files}, path, model,
            optimizer, ema)


# -- sharded format (manifest + per-array checksums) ---------------------------
def write_sharded_checkpoint(directory: str,
                             shards: dict[str, dict[str, np.ndarray]],
                             extra: dict | None = None) -> str:
    """Write shard groups (``{shard_name: {array_name: array}}``) plus a
    manifest with per-array CRC32s; the whole directory appears
    atomically (staged as ``<directory>.tmp.<pid>``, then renamed).

    ``extra`` must be JSON-serializable; it rides in the manifest (used
    for rng states, step counters, topology descriptors).
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{directory}.tmp.{os.getpid()}"
    manifest = {"format": 1, "extra": extra or {}, "shards": {}}
    try:
        os.makedirs(tmp)
        for shard_name, arrays in shards.items():
            fname = f"{shard_name}.npz"
            with open(os.path.join(tmp, fname), "wb") as fh:
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            manifest["shards"][fname] = {
                "arrays": {name: payload_checksum(array)
                           for name, array in arrays.items()}}
        with open(os.path.join(tmp, MANIFEST_NAME), "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        if os.path.isdir(directory):
            shutil.rmtree(directory)
        os.replace(tmp, directory)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return directory


def read_sharded_checkpoint(directory: str, verify: bool = True
                            ) -> tuple[dict[str, dict[str, np.ndarray]],
                                       dict]:
    """Load every shard, verifying each array against the manifest.

    Returns ``(shards, extra)``.  Raises :class:`CheckpointError` if the
    directory/manifest is absent and :class:`CheckpointCorruption` if a
    shard is unreadable, an array is missing, or a checksum mismatches.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise CheckpointError(f"no sharded checkpoint at {directory} "
                              f"(missing {MANIFEST_NAME})")
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    shards: dict[str, dict[str, np.ndarray]] = {}
    for fname, entry in manifest["shards"].items():
        fpath = os.path.join(directory, fname)
        try:
            with np.load(fpath) as data:
                arrays = {name: data[name] for name in data.files}
        except Exception as exc:
            raise CheckpointCorruption(
                f"{directory}: shard {fname} unreadable: {exc}") from exc
        if verify:
            for name, expected in entry["arrays"].items():
                if name not in arrays:
                    raise CheckpointCorruption(
                        f"{directory}: shard {fname} lost array {name!r}")
                if payload_checksum(arrays[name]) != expected:
                    raise CheckpointCorruption(
                        f"{directory}: checksum mismatch for "
                        f"{fname}:{name}")
        shards[fname[:-len(".npz")]] = arrays
    return shards, manifest.get("extra", {})


def list_checkpoints(root: str) -> list[str]:
    """Sharded checkpoint directories under ``root``, oldest first (by
    name — the supervisor names them ``step-<n>``, zero-padded)."""
    if not os.path.isdir(root):
        return []
    return [os.path.join(root, name) for name in sorted(os.listdir(root))
            if os.path.isfile(os.path.join(root, name, MANIFEST_NAME))]


def prune_checkpoints(root: str, keep: int) -> list[str]:
    """N-replica retention: delete all but the newest ``keep`` checkpoint
    generations under ``root``; returns the directories removed.

    Retaining several generations is what makes scrub-and-fall-back
    resume possible — a corrupted newest generation is only survivable
    while an older intact one still exists.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    removed = []
    for directory in list_checkpoints(root)[:-keep]:
        shutil.rmtree(directory)
        removed.append(directory)
    return removed


def checkpoint_lineage(config, state_norm, residual_norm,
                       forcing_norm=None, seed: int = 0) -> dict:
    """Lineage block for a checkpoint manifest's ``extra`` dict.

    Embeds the model config plus each normalizer's statistics *and* its
    SHA-256 content digest, so a registry
    (:meth:`repro.registry.ModelRegistry.register_from_checkpoint`) can
    reconstruct a servable version from the checkpoint alone and prove
    the stats were not altered in transit.  Manifests written before
    this field existed simply lack the ``lineage`` key — readers must
    treat its absence as "pre-lineage checkpoint", not an error.
    """
    from ..model.config import config_to_dict
    normalizers = {}
    for name, norm in (("state", state_norm), ("residual", residual_norm),
                       ("forcing", forcing_norm)):
        if norm is None:
            continue
        normalizers[name] = {
            "mean": [float(v) for v in norm.mean],
            "std": [float(v) for v in norm.std],
            "digest": state_digest({"mean": norm.mean, "std": norm.std}),
        }
    return {"model_config": config_to_dict(config),
            "normalizers": normalizers, "seed": int(seed)}


def save_sharded_checkpoint(directory: str, model: Module,
                            optimizer: AdamW | None = None,
                            ema: EMA | None = None,
                            images_seen: float = 0.0,
                            extra: dict | None = None) -> str:
    """High-level sharded save mirroring :func:`save_checkpoint`'s API."""
    flat = _training_payload(model, optimizer, ema, images_seen)
    shards: dict[str, dict[str, np.ndarray]] = {}
    for key, array in flat.items():
        section, _, rest = key.partition("/")
        shards.setdefault(section, {})[rest] = array
    return write_sharded_checkpoint(directory, shards, extra=extra)


def load_sharded_checkpoint(directory: str, model: Module,
                            optimizer: AdamW | None = None,
                            ema: EMA | None = None, verify: bool = True
                            ) -> tuple[float, dict]:
    """High-level sharded load; returns ``(images_seen, extra)``."""
    shards, extra = read_sharded_checkpoint(directory, verify=verify)
    flat = {f"{section}/{name}": array
            for section, arrays in shards.items()
            for name, array in arrays.items()}
    if optimizer is not None and "opt" not in shards:
        raise CheckpointError(
            f"checkpoint {directory} has no optimizer shard — pass "
            "optimizer=None or re-save with the optimizer included")
    if ema is not None and "ema" not in shards:
        raise CheckpointError(
            f"checkpoint {directory} has no EMA shard — pass ema=None or "
            "re-save with the EMA included")
    images = _restore_training_state(flat, directory, model, optimizer, ema)
    return images, extra
