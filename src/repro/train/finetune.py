"""Multi-step (autoregressive rollout) finetuning.

Paper Section VII-C: "As a consistency model, AERIS could benefit from
multi-step finetuning [87], which may yield measurable improvements to
forecast skill."  The idea (SWiFT / design-space papers the text cites):
after single-step training, finetune by unrolling the model its *own*
forecasts for K steps and applying the loss at every intermediate state, so
the network learns to correct its own accumulated errors.

Here the unroll uses the deterministic one-shot residual estimate (the mean
of the learned residual distribution, i.e. the ``t -> 0`` consistency jump
with shared noise), which keeps the computational graph differentiable
through all K steps in our autograd engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import TrigFlow, weighted_velocity_loss
from ..model import Aeris
from ..nn import AdamW
from ..tensor import Tensor

__all__ = ["MultistepConfig", "MultistepFinetuner"]


@dataclass(frozen=True)
class MultistepConfig:
    rollout_steps: int = 2     # K: autoregressive depth during finetuning
    batch_size: int = 4
    lr: float = 5e-4
    t_eval: float = 0.3        # low-noise time at which velocity is learned
    seed: int = 0


class MultistepFinetuner:
    """Finetunes a trained AERIS with K-step rollout losses."""

    def __init__(self, model: Aeris, archive: SyntheticReanalysis,
                 config: MultistepConfig = MultistepConfig(),
                 flow: TrigFlow = TrigFlow()):
        if model.config.channels != len(TOY_SET):
            raise ValueError("model channels must match the archive")
        self.model = model
        self.archive = archive
        self.config = config
        self.flow = flow
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.optimizer = AdamW(model.parameters(), lr=config.lr,
                               weight_decay=0.0)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        self.rng = np.random.default_rng(config.seed)
        self.history: list[float] = []

    def _mean_residual(self, cond: Tensor, forc: Tensor) -> Tensor:
        """Differentiable point residual estimate at low noise.

        At small ``t`` the consistency jump ``cos t · x_t − sin t · v``
        approaches the model's conditional-mean residual; we evaluate with
        ``x_t = 0`` (the prior mean) so the estimate is deterministic and
        gradients flow through every unroll step.
        """
        t_val = self.config.t_eval
        batch = cond.shape[0]
        x_t = Tensor(np.zeros(cond.shape, dtype=np.float32))
        t = Tensor(np.full(batch, t_val, dtype=np.float32))
        v = self.model(x_t, t, cond, forc) * self.flow.sigma_d
        return v * float(-np.sin(t_val))  # cos(t)·0 − sin(t)·v

    def train_step(self) -> float:
        cfg = self.config
        k = cfg.rollout_steps
        valid = self.archive.split_indices("train")
        valid = valid[valid < valid.max() - k]
        indices = self.rng.choice(valid, size=cfg.batch_size, replace=False)
        self.optimizer.zero_grad()
        # Normalized initial states.
        state = Tensor(self.state_norm.normalize(
            self.archive.fields[indices]))
        total = None
        for step in range(k):
            forc = Tensor(np.stack([
                self.forcing_norm.normalize(self.archive.forcing_provider(
                    self.archive.gcm_step(int(i) + step)))
                for i in indices]))
            residual_std = self._mean_residual(state, forc)
            target = self.residual_norm.normalize(
                self.archive.fields[indices + step + 1]
                - self.archive.fields[indices + step])
            loss = weighted_velocity_loss(residual_std, target,
                                          self.lat_weights, self.var_weights)
            total = loss if total is None else total + loss
            # Advance the (normalized) state with the model's own residual:
            # x_{i+1} = x_i + unnorm(residual), expressed in state-norm
            # units: + (residual_std * sigma_res + mu_res) / sigma_state.
            res_scale = Tensor(self.residual_norm.std / self.state_norm.std)
            res_shift = Tensor(self.residual_norm.mean / self.state_norm.std)
            state = state + residual_std * res_scale + res_shift
        total = total * (1.0 / k)
        total.backward()
        self.optimizer.step()
        value = total.item()
        self.history.append(value)
        return value

    def fit(self, n_steps: int) -> list[float]:
        for _ in range(n_steps):
            self.train_step()
        return self.history
