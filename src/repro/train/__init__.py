"""Training: reference single-process loop and checkpointing."""

from .checkpoint import load_checkpoint, save_checkpoint
from .finetune import MultistepConfig, MultistepFinetuner
from .trainer import Trainer, TrainerConfig

__all__ = ["Trainer", "TrainerConfig", "save_checkpoint", "load_checkpoint",
           "MultistepFinetuner", "MultistepConfig"]
