"""Training: reference single-process loop and (atomic, resumable)
checkpointing."""

from .checkpoint import (CheckpointCorruption, CheckpointError,
                         checkpoint_lineage, list_checkpoints, load_checkpoint,
                         load_sharded_checkpoint, prune_checkpoints,
                         read_sharded_checkpoint, save_checkpoint,
                         save_sharded_checkpoint, write_sharded_checkpoint)
from .finetune import MultistepConfig, MultistepFinetuner
from .trainer import Trainer, TrainerConfig, evaluate_validation_loss

__all__ = ["Trainer", "TrainerConfig", "save_checkpoint", "load_checkpoint",
           "CheckpointError", "CheckpointCorruption",
           "save_sharded_checkpoint", "load_sharded_checkpoint",
           "write_sharded_checkpoint", "read_sharded_checkpoint",
           "list_checkpoints", "prune_checkpoints", "checkpoint_lineage",
           "evaluate_validation_loss",
           "MultistepFinetuner", "MultistepConfig"]
