"""Single-process training loop for AERIS (the distributed loop lives in
:mod:`repro.parallel.swipe`; this one is the reference implementation the
parallel engine is verified against).

Follows Section VI-B: TrigFlow objective on standardized residuals with
latitude/pressure weighting, AdamW (betas [0.85, 0.9], wd 0.01), warmup →
constant → linear-decay LR measured in images, and an EMA of parameters used
at inference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import (
    ResidualForecaster,
    SolverConfig,
    TrigFlow,
    weighted_velocity_loss,
)
from ..model import Aeris
from ..nn import EMA, AdamW, WarmupConstantDecay
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from ..tensor import Tensor

__all__ = ["TrainerConfig", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Training-run hyperparameters (paper defaults, rescaled for toy runs)."""

    batch_size: int = 8
    peak_lr: float = 5e-4
    warmup_images: float = 200.0
    total_images: float = 20_000.0
    decay_images: float = 1_000.0
    ema_halflife_images: float = 2_000.0
    weight_decay: float = 0.01
    betas: tuple[float, float] = (0.85, 0.9)
    seed: int = 0


class Trainer:
    """Trains an :class:`~repro.model.Aeris` on a synthetic reanalysis."""

    def __init__(self, model: Aeris, archive: SyntheticReanalysis,
                 config: TrainerConfig = TrainerConfig(),
                 flow: TrigFlow = TrigFlow()):
        if model.config.channels != len(TOY_SET):
            raise ValueError("model channel count must match the archive")
        self.model = model
        self.archive = archive
        self.config = config
        self.flow = flow
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.optimizer = AdamW(model.parameters(), lr=config.peak_lr,
                               betas=config.betas,
                               weight_decay=config.weight_decay)
        self.schedule = WarmupConstantDecay(
            peak_lr=config.peak_lr, warmup_images=config.warmup_images,
            total_images=config.total_images,
            decay_images=config.decay_images)
        self.ema = EMA(model, halflife_images=config.ema_halflife_images)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        self.images_seen = 0.0
        self.rng_batch = np.random.default_rng(config.seed)
        self.rng_t = np.random.default_rng(config.seed + 1)
        self.rng_z = np.random.default_rng(config.seed + 2)
        self.history: list[float] = []

    # -- one optimization step ------------------------------------------------
    def train_step(self) -> float:
        cfg = self.config
        with _span("train.step", category="train", step=len(self.history)):
            with _span("train.data", category="train"):
                indices = self.rng_batch.choice(
                    self.archive.split_indices("train"),
                    size=cfg.batch_size, replace=False)
                cond, residual, forc = self.archive.training_batch(
                    indices, self.state_norm, self.residual_norm,
                    self.forcing_norm)
                x_t, t, v_target = self.flow.training_pair(
                    residual, self.rng_t, self.rng_z)
            self.optimizer.zero_grad()
            with _span("train.forward", category="train"):
                pred = self.model(Tensor(x_t / self.flow.sigma_d),
                                  Tensor(t), Tensor(cond), Tensor(forc))
                loss = weighted_velocity_loss(
                    pred * self.flow.sigma_d, v_target,
                    self.lat_weights, self.var_weights)
            with _span("train.backward", category="train"):
                loss.backward()
            with _span("train.optimizer", category="train"):
                self.optimizer.lr = self.schedule.lr_at(self.images_seen)
                self.optimizer.step()
                self.images_seen += cfg.batch_size
                self.ema.update(self.model, images_per_step=cfg.batch_size)
            value = loss.item()
        self.history.append(value)
        self._record_step_metrics(value)
        return value

    def _record_step_metrics(self, loss_value: float) -> None:
        """Per-step telemetry (loss / LR / grad norm / EMA decay).  The
        gradient norm is only computed while metrics are enabled, so the
        disabled path stays exactly the seed numerics at zero extra cost."""
        registry = _obs_metrics()
        if registry is None:
            return
        cfg = self.config
        sq = 0.0
        for p in self.model.parameters():
            if p.grad is not None:
                sq += float(np.sum(np.square(p.grad, dtype=np.float64)))
        registry.counter("train.steps", "optimization steps").inc()
        registry.counter("train.images", "images consumed").inc(
            cfg.batch_size)
        registry.gauge("train.loss", "last training loss").set(loss_value)
        registry.gauge("train.lr", "current learning rate").set(
            self.optimizer.lr)
        registry.gauge("train.grad_norm", "global gradient L2 norm").set(
            float(np.sqrt(sq)))
        registry.gauge("train.ema_decay",
                       "per-step EMA decay factor").set(
            self.ema.decay_for(cfg.batch_size))
        registry.histogram("train.loss_hist",
                           "training loss distribution",
                           buckets=(0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0,
                                    100.0)).observe(loss_value)

    def fit(self, n_steps: int) -> list[float]:
        for _ in range(n_steps):
            self.train_step()
        return self.history

    def validation_loss(self, n_batches: int = 4, seed: int = 1234) -> float:
        """Mean weighted diffusion loss over held-out validation samples.

        Uses fixed generators so successive calls are comparable (the same
        noise levels and noise fields are drawn each time).
        """
        rng_batch = np.random.default_rng(seed)
        rng_t = np.random.default_rng(seed + 1)
        rng_z = np.random.default_rng(seed + 2)
        indices_pool = self.archive.split_indices("val")
        losses = []
        from ..tensor import no_grad
        for _ in range(n_batches):
            indices = rng_batch.choice(indices_pool,
                                       size=self.config.batch_size,
                                       replace=False)
            cond, residual, forc = self.archive.training_batch(
                indices, self.state_norm, self.residual_norm,
                self.forcing_norm)
            x_t, t, v_target = self.flow.training_pair(residual, rng_t, rng_z)
            with _span("train.validation_batch", category="train"), \
                    no_grad():
                pred = self.model(Tensor(x_t / self.flow.sigma_d), Tensor(t),
                                  Tensor(cond), Tensor(forc))
                loss = weighted_velocity_loss(
                    pred * self.flow.sigma_d, v_target, self.lat_weights,
                    self.var_weights)
            losses.append(loss.item())
        mean = float(np.mean(losses))
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("train.val_loss", "last validation loss").set(mean)
        return mean

    # -- inference export ------------------------------------------------------
    def forecaster(self, solver_config: SolverConfig = SolverConfig(),
                   use_ema: bool = True) -> ResidualForecaster:
        """Build a forecaster; by default with EMA weights, per the paper
        ("using only these weights during inference")."""
        inference_model = Aeris(self.model.config)
        inference_model.load_state_dict(self.model.state_dict())
        if use_ema:
            self.ema.copy_to(inference_model)
        inference_model.eval()
        return ResidualForecaster(
            model=inference_model,
            state_norm=self.state_norm,
            residual_norm=self.residual_norm,
            forcing_fn=lambda i: self.archive.forcing_provider(
                self.archive.gcm_step(i)),
            forcing_norm=self.forcing_norm,
            flow=self.flow,
            solver_config=solver_config)
