"""Single-process training loop for AERIS (the distributed loop lives in
:mod:`repro.parallel.swipe`; this one is the reference implementation the
parallel engine is verified against).

Follows Section VI-B: TrigFlow objective on standardized residuals with
latitude/pressure weighting, AdamW (betas [0.85, 0.9], wd 0.01), warmup →
constant → linear-decay LR measured in images, and an EMA of parameters used
at inference.

Resilience (:mod:`repro.resilience`): the loop survives an interrupted
run and a poisoned step —

* :meth:`Trainer.save` / :meth:`Trainer.load` write/restore an atomic
  sharded checkpoint (manifest + per-array checksums) that also carries
  the data/noise generator states, so a resumed run continues
  **bit-exactly** where the original would have gone;
* ``fit(..., save_every=k)`` autosaves every ``k`` steps under
  ``checkpoint_root``;
* a NaN/Inf guard skips the optimizer/EMA update when a step's loss goes
  non-finite and multiplicatively backs off the learning rate
  (recovering after a run of clean steps) — the standard large-run
  defence against one poisoned batch destroying the weights;
* with ``TrainerConfig(guarded=True)`` every step runs under the **SDC
  guard**: a retained micro-state (weights, optimizer moments, EMA,
  counters, generator states) is kept from the end of the last clean
  step, the live weight/optimizer shards are CRC-audited against it
  before each step, and the step body executes inside an
  :func:`repro.resilience.inject_compute` scope so the ABFT-guarded
  kernels can detect a corrupted GEMM.  On
  :class:`~repro.resilience.ComputeCorruption` (or a retryable
  non-finite loss) the trainer rolls back to the retained micro-state
  and recomputes — bounded by ``max_step_retries``, then escalates to
  the :class:`~repro.resilience.ElasticSupervisor`.  A fault-free
  guarded run is bit-exact with an unguarded one (the guard only reads
  and copies), and a recovered run is bit-exact with a never-faulted
  one (rollback restores the generator states, so the retry replays the
  identical step).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import (
    ResidualForecaster,
    SolverConfig,
    TrigFlow,
    weighted_velocity_loss,
)
from ..model import Aeris
from ..nn import EMA, AdamW, WarmupConstantDecay
from ..obs.profile import health as _obs_health
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience.faults import (SDC_SITE_KINDS, ComputeCorruption,
                                 inject_compute)
from ..tensor import Tensor
from .checkpoint import (CheckpointCorruption, CheckpointError,
                         checkpoint_lineage, list_checkpoints,
                         load_sharded_checkpoint, prune_checkpoints,
                         save_sharded_checkpoint)

__all__ = ["TrainerConfig", "Trainer", "evaluate_validation_loss"]


class _NonFiniteLoss(Exception):
    """Internal: a guarded step produced a non-finite loss with retries
    remaining — rolled back and recomputed (an SDC that slipped past the
    ABFT net can poison the loss; a *deterministic* divergence reproduces
    on retry and then falls through to the classic skip/LR-backoff)."""

    def __init__(self, value: float):
        self.value = value
        super().__init__(f"non-finite loss {value!r}")


@dataclass(frozen=True)
class TrainerConfig:
    """Training-run hyperparameters (paper defaults, rescaled for toy runs)."""

    batch_size: int = 8
    peak_lr: float = 5e-4
    warmup_images: float = 200.0
    total_images: float = 20_000.0
    decay_images: float = 1_000.0
    ema_halflife_images: float = 2_000.0
    weight_decay: float = 0.01
    betas: tuple[float, float] = (0.85, 0.9)
    seed: int = 0
    #: autosave a sharded checkpoint every N steps during ``fit`` (0 = off).
    save_every: int = 0
    #: where autosaved checkpoints go (``step-<n>`` subdirectories).
    checkpoint_root: str | None = None
    #: LR multiplier applied after a non-finite (skipped) step ...
    lr_backoff_factor: float = 0.5
    #: ... recovered one factor at a time after this many clean steps.
    lr_recover_steps: int = 25
    #: run every step under the SDC guard (state audit + rollback/retry).
    guarded: bool = False
    #: rollback-and-recompute attempts per step before escalating.
    max_step_retries: int = 2
    #: keep only the newest N autosaved checkpoint generations (0 = all).
    keep_checkpoints: int = 0


class Trainer:
    """Trains an :class:`~repro.model.Aeris` on a synthetic reanalysis."""

    def __init__(self, model: Aeris, archive: SyntheticReanalysis,
                 config: TrainerConfig = TrainerConfig(),
                 flow: TrigFlow = TrigFlow(), injector=None,
                 plan=None, machine=None):
        if model.config.channels != len(TOY_SET):
            raise ValueError("model channel count must match the archive")
        # ``plan="auto"`` tunes the single-process layout (dp=pp=wp=sp=1,
        # one batch-sized micro-batch) — the value here is the validated,
        # content-addressed record of predicted step time and memory that
        # obs/serve consume, not a different execution path.
        self.plan = None
        if plan is not None:
            from ..parallel import autotune as _autotune
            if machine is None:
                machine = _autotune.MACHINES["aurora"]
            self.plan = _autotune.resolve_plan(
                plan, model.config, machine, 1, config.batch_size,
                pipeline=False, micro_batches=(config.batch_size,))
            registry = _obs_metrics()
            if registry is not None:
                registry.gauge(
                    "autotune.predicted_step_s",
                    "chosen layout's predicted step time").set(
                    self.plan.chosen.predicted_step_s)
        self.model = model
        self.archive = archive
        self.config = config
        self.flow = flow
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.optimizer = AdamW(model.parameters(), lr=config.peak_lr,
                               betas=config.betas,
                               weight_decay=config.weight_decay)
        self.schedule = WarmupConstantDecay(
            peak_lr=config.peak_lr, warmup_images=config.warmup_images,
            total_images=config.total_images,
            decay_images=config.decay_images)
        self.ema = EMA(model, halflife_images=config.ema_halflife_images)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        self.images_seen = 0.0
        self.rng_batch = np.random.default_rng(config.seed)
        self.rng_t = np.random.default_rng(config.seed + 1)
        self.rng_z = np.random.default_rng(config.seed + 2)
        self.history: list[float] = []
        # NaN/Inf-guard state: 1.0 while healthy, multiplied by
        # lr_backoff_factor per poisoned step, recovered gradually.
        self.lr_backoff = 1.0
        self.skipped_steps = 0
        self._clean_streak = 0
        # SDC-guard state (only exercised when config.guarded is set).
        self.injector = injector
        self.step_retries = 0
        self._retained: dict | None = None

    # -- one optimization step ------------------------------------------------
    def train_step(self) -> float:
        if self.config.guarded:
            return self._guarded_step()
        return self._step_once()

    def _step_once(self, allow_retry: bool = False) -> float:
        cfg = self.config
        t0 = time.perf_counter() if self.plan is not None else 0.0
        with _span("train.step", category="train", step=len(self.history)):
            with _span("train.data", category="train"):
                indices = self.rng_batch.choice(
                    self.archive.split_indices("train"),
                    size=cfg.batch_size, replace=False)
                cond, residual, forc = self.archive.training_batch(
                    indices, self.state_norm, self.residual_norm,
                    self.forcing_norm)
                x_t, t, v_target = self.flow.training_pair(
                    residual, self.rng_t, self.rng_z)
            self.optimizer.zero_grad()
            with _span("train.forward", category="train"):
                pred = self.model(Tensor(x_t / self.flow.sigma_d),
                                  Tensor(t), Tensor(cond), Tensor(forc))
                loss = weighted_velocity_loss(
                    pred * self.flow.sigma_d, v_target,
                    self.lat_weights, self.var_weights)
            with _span("train.backward", category="train"):
                loss.backward()
            value = loss.item()
            if not np.isfinite(value):
                if allow_retry:
                    raise _NonFiniteLoss(value)
                # Poisoned step: skip the update entirely (no optimizer
                # step, no EMA blend, no images consumed) and back the LR
                # off so a marginal-stability run eases away from the edge.
                self._skip_poisoned_step(value)
            else:
                with _span("train.optimizer", category="train"):
                    self.optimizer.lr = (
                        self.schedule.lr_at(self.images_seen)
                        * self.lr_backoff)
                    self.optimizer.step()
                    self.images_seen += cfg.batch_size
                    self.ema.update(self.model,
                                    images_per_step=cfg.batch_size)
                self._recover_lr_backoff()
        self.history.append(value)
        if self.plan is not None:
            registry = _obs_metrics()
            if registry is not None:
                registry.gauge(
                    "autotune.observed_step_s",
                    "last measured training step wall time").set(
                    time.perf_counter() - t0)
        self._record_step_metrics(value)
        return value

    # -- SDC guard ------------------------------------------------------------
    def _guarded_step(self) -> float:
        """One step with rollback/recompute on detected corruption.

        Ordering: retain a clean micro-state (first step only — later
        steps refresh it on success), let the injector deal any scheduled
        state faults, then loop: CRC-audit the live state, run the step
        under the compute-fault scope, and on detection roll back and
        retry.  Exhausted retries escalate as
        :class:`~repro.resilience.ComputeCorruption` for the supervisor.
        """
        cfg = self.config
        inj = self.injector
        step = len(self.history)
        if self._retained is None:
            self._retain()
        if inj is not None:
            inj.advance(step)
            for site in inj.state_faults():
                inj.corrupt_state(self._state_arrays(site), site)
        last: Exception | None = None
        for attempt in range(cfg.max_step_retries + 1):
            retries_left = attempt < cfg.max_step_retries
            try:
                self._audit_state(step)
                with inject_compute(inj):
                    value = self._step_once(allow_retry=retries_left)
            except (ComputeCorruption, _NonFiniteLoss) as exc:
                self._rollback(step, attempt, exc)
                last = exc
                continue
            self._retain()
            return value
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("train.guard_escalations",
                             "steps still corrupt after bounded retries"
                             ).inc()
        _record_event("train.guard_escalation", subsystem="train",
                      severity="critical", step=step,
                      retries=cfg.max_step_retries, detail=str(last))
        site = last.site if isinstance(last, ComputeCorruption) else "loss"
        raise ComputeCorruption(
            site, f"step {step} still corrupt after "
                  f"{cfg.max_step_retries} rollback retries ({last})")

    def _state_arrays(self, site: str) -> list[np.ndarray]:
        if site == "weight":
            return [p.data for p in self.model.parameters()]
        return self.optimizer.exp_avg + self.optimizer.exp_avg_sq

    @staticmethod
    def _section_crc(arrays) -> int:
        crc = 0
        for a in arrays:
            crc = zlib.crc32(np.ascontiguousarray(a).tobytes(), crc)
        return crc

    def _retain(self) -> None:
        """Snapshot the complete micro-state of a *clean* step boundary."""
        self._retained = {
            "params": [p.data.copy() for p in self.model.parameters()],
            "exp_avg": [m.copy() for m in self.optimizer.exp_avg],
            "exp_avg_sq": [v.copy() for v in self.optimizer.exp_avg_sq],
            "step_count": self.optimizer.step_count,
            "lr": self.optimizer.lr,
            "ema": {k: v.copy() for k, v in self.ema.shadow.items()},
            "images_seen": self.images_seen,
            "lr_backoff": self.lr_backoff,
            "skipped_steps": self.skipped_steps,
            "clean_streak": self._clean_streak,
            "rng": (self.rng_batch.bit_generator.state,
                    self.rng_t.bit_generator.state,
                    self.rng_z.bit_generator.state),
            "crc": {"weight": self._section_crc(
                        p.data for p in self.model.parameters()),
                    "optimizer": self._section_crc(
                        self.optimizer.exp_avg + self.optimizer.exp_avg_sq)},
        }

    def _audit_state(self, step: int) -> None:
        """CRC the live weight/optimizer shards against the retained
        clean state — catches at-rest corruption before it is trained
        into the trajectory.  Both sections are audited (and each
        corrupted one booked as detected) before raising: a single
        rollback heals weight *and* optimizer corruption together, so
        stopping at the first mismatch would leave the second section's
        corruption healed-but-never-counted."""
        corrupted = [site for site in ("weight", "optimizer")
                     if self._section_crc(self._state_arrays(site))
                     != self._retained["crc"][site]]
        for site in corrupted:
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("resilience.sdc_detected",
                                 "compute-domain corruptions caught").inc(
                    1, kind=SDC_SITE_KINDS[site])
            _record_event("compute.sdc_detected", subsystem="train",
                          severity="critical", site=site, step=step)
            with _span("resilience.sdc", category="resilience", site=site,
                       step=step):
                pass
        if corrupted:
            raise ComputeCorruption(
                corrupted[0],
                f"state checksum mismatch in {' and '.join(corrupted)} "
                f"section at step {step}", sites=corrupted)

    def _rollback(self, step: int, attempt: int, exc: Exception) -> None:
        """Restore the retained micro-state (weights, moments, EMA,
        counters, generator states) so the retry replays the identical
        step from clean inputs."""
        r = self._retained
        for p, saved in zip(self.model.parameters(), r["params"]):
            np.copyto(p.data, saved)
        for m, saved in zip(self.optimizer.exp_avg, r["exp_avg"]):
            np.copyto(m, saved)
        for v, saved in zip(self.optimizer.exp_avg_sq, r["exp_avg_sq"]):
            np.copyto(v, saved)
        self.optimizer.step_count = r["step_count"]
        self.optimizer.lr = r["lr"]
        for k, saved in r["ema"].items():
            np.copyto(self.ema.shadow[k], saved)
        self.images_seen = r["images_seen"]
        self.lr_backoff = r["lr_backoff"]
        self.skipped_steps = r["skipped_steps"]
        self._clean_streak = r["clean_streak"]
        batch_state, t_state, z_state = r["rng"]
        self.rng_batch.bit_generator.state = batch_state
        self.rng_t.bit_generator.state = t_state
        self.rng_z.bit_generator.state = z_state
        cause = exc.site if isinstance(exc, ComputeCorruption) \
            else "nonfinite"
        self.step_retries += 1
        registry = _obs_metrics()
        if registry is not None:
            # one increment per *closed detection*, not per rollback: a
            # single state audit can implicate several sites, and this
            # one rollback heals them all (sdc_check reconciles retries
            # against detections 1:1)
            causes = (exc.sites if isinstance(exc, ComputeCorruption)
                      else (cause,))
            for site in causes:
                registry.counter("train.step_retries",
                                 "steps rolled back and recomputed").inc(
                    1, cause=site)
        _record_event("train.step_rollback", subsystem="train",
                      severity="warning", step=step, attempt=attempt,
                      cause=cause, detail=str(exc))
        with _span("resilience.rollback", category="resilience", step=step,
                   cause=cause):
            pass

    # -- NaN/Inf guard --------------------------------------------------------
    def _skip_poisoned_step(self, value: float) -> None:
        cfg = self.config
        self.skipped_steps += 1
        self._clean_streak = 0
        self.lr_backoff *= cfg.lr_backoff_factor
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("train.skipped_steps",
                             "updates skipped by the NaN/Inf guard").inc()
            registry.gauge("train.lr_backoff",
                           "NaN-guard LR multiplier").set(self.lr_backoff)
        _record_event("train.step_skipped", subsystem="train",
                      severity="warning", step=len(self.history),
                      loss=repr(value), lr_backoff=self.lr_backoff)
        with _span("resilience.nonfinite_loss", category="resilience",
                   loss=repr(value), lr_backoff=self.lr_backoff):
            pass

    def _recover_lr_backoff(self) -> None:
        if self.lr_backoff >= 1.0:
            return
        cfg = self.config
        self._clean_streak += 1
        if self._clean_streak >= cfg.lr_recover_steps:
            self._clean_streak = 0
            self.lr_backoff = min(1.0,
                                  self.lr_backoff / cfg.lr_backoff_factor)

    def _record_step_metrics(self, loss_value: float) -> None:
        """Per-step telemetry (loss / LR / grad norm / EMA decay) plus the
        online health detectors.  The gradient norm is only computed while
        metrics or health are enabled, so the disabled path stays exactly
        the seed numerics at zero extra cost."""
        registry = _obs_metrics()
        monitor = _obs_health()
        if registry is None and monitor is None:
            return
        cfg = self.config
        sq = 0.0
        for p in self.model.parameters():
            if p.grad is not None:
                sq += float(np.sum(np.square(p.grad, dtype=np.float64)))
        grad_norm = float(np.sqrt(sq))
        step = len(self.history) - 1
        if registry is not None:
            registry.counter("train.steps", "optimization steps").inc()
            registry.counter("train.images", "images consumed").inc(
                cfg.batch_size)
            registry.gauge("train.loss", "last training loss").set(
                loss_value)
            registry.gauge("train.lr", "current learning rate").set(
                self.optimizer.lr)
            registry.gauge("train.grad_norm",
                           "global gradient L2 norm").set(grad_norm)
            registry.gauge("train.ema_decay",
                           "per-step EMA decay factor").set(
                self.ema.decay_for(cfg.batch_size))
            registry.histogram("train.loss_hist",
                               "training loss distribution",
                               buckets=(0.01, 0.1, 0.5, 1.0, 2.0, 5.0,
                                        10.0, 100.0)).observe(loss_value)
        if monitor is not None:
            monitor.observe_step(step, loss_value, grad_norm=grad_norm)
        _record_event("train.step", subsystem="train", step=step,
                      loss=loss_value, grad_norm=grad_norm)

    def fit(self, n_steps: int, save_every: int | None = None,
            checkpoint_root: str | None = None) -> list[float]:
        """Run ``n_steps``; optionally autosave a sharded checkpoint every
        ``save_every`` steps (defaults from the config) into
        ``checkpoint_root/step-<n>``."""
        save_every = self.config.save_every if save_every is None \
            else save_every
        checkpoint_root = self.config.checkpoint_root \
            if checkpoint_root is None else checkpoint_root
        for _ in range(n_steps):
            self.train_step()
            if save_every and checkpoint_root \
                    and len(self.history) % save_every == 0:
                self.save(os.path.join(checkpoint_root,
                                       f"step-{len(self.history):08d}"))
                if self.config.keep_checkpoints:
                    prune_checkpoints(checkpoint_root,
                                      keep=self.config.keep_checkpoints)
        return self.history

    # -- checkpoint / resume ---------------------------------------------------
    def save(self, directory: str) -> str:
        """Atomic sharded checkpoint of the *complete* loop state — weights,
        optimizer, EMA, counters, NaN-guard state, and all three generator
        states — so :meth:`load` + ``fit`` replays bit-exactly."""
        extra = {
            "step": len(self.history),
            "history": [float(v) for v in self.history],
            "lr_backoff": self.lr_backoff,
            "skipped_steps": self.skipped_steps,
            "clean_streak": self._clean_streak,
            "step_retries": self.step_retries,
            "rng": {
                "batch": self.rng_batch.bit_generator.state,
                "t": self.rng_t.bit_generator.state,
                "z": self.rng_z.bit_generator.state,
            },
            # Registry lineage: config + digest-stamped normalizer stats,
            # so `register_from_checkpoint` needs nothing but this dir.
            "lineage": checkpoint_lineage(
                self.model.config, self.state_norm, self.residual_norm,
                self.forcing_norm, seed=self.config.seed),
        }
        path = save_sharded_checkpoint(directory, self.model, self.optimizer,
                                       self.ema,
                                       images_seen=self.images_seen,
                                       extra=extra)
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("train.checkpoints",
                             "sharded checkpoints written").inc()
        _record_event("checkpoint.save", subsystem="train", path=path,
                      step=len(self.history))
        return path

    def load(self, directory: str) -> float:
        """Restore a :meth:`save` checkpoint (checksum-verified); returns
        ``images_seen``."""
        images, extra = load_sharded_checkpoint(directory, self.model,
                                                self.optimizer, self.ema)
        self.images_seen = images
        self.history = [float(v) for v in extra.get("history", [])]
        self.lr_backoff = float(extra.get("lr_backoff", 1.0))
        self.skipped_steps = int(extra.get("skipped_steps", 0))
        self._clean_streak = int(extra.get("clean_streak", 0))
        self.step_retries = int(extra.get("step_retries", 0))
        rng = extra.get("rng")
        if rng is not None:
            self.rng_batch.bit_generator.state = rng["batch"]
            self.rng_t.bit_generator.state = rng["t"]
            self.rng_z.bit_generator.state = rng["z"]
        self._retained = None  # re-retain from the restored state
        return images

    def load_latest(self, checkpoint_root: str) -> str:
        """Restore the newest *valid* checkpoint generation under
        ``checkpoint_root``, scrubbing backwards past corrupted ones
        (each rejection is booked and alerted); returns the directory
        loaded.  Raises :class:`~repro.train.CheckpointError` when no
        generation survives."""
        for directory in reversed(list_checkpoints(checkpoint_root)):
            try:
                self.load(directory)
            except CheckpointCorruption as exc:
                registry = _obs_metrics()
                if registry is not None:
                    registry.counter(
                        "train.checkpoints_rejected",
                        "corrupted generations skipped on resume").inc()
                _record_event("checkpoint.corrupt", subsystem="train",
                              severity="critical", path=directory,
                              detail=str(exc))
                continue
            return directory
        raise CheckpointError(
            f"no valid checkpoint generation under {checkpoint_root}")

    def validation_loss(self, n_batches: int = 4, seed: int = 1234) -> float:
        """Mean weighted diffusion loss over held-out validation samples.

        Uses fixed generators so successive calls are comparable (the same
        noise levels and noise fields are drawn each time).
        """
        mean = evaluate_validation_loss(
            self.model, self.archive, self.flow, self.lat_weights,
            self.var_weights, self.state_norm, self.residual_norm,
            self.forcing_norm, batch_size=self.config.batch_size,
            n_batches=n_batches, seed=seed)
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("train.val_loss", "last validation loss").set(mean)
        return mean

    # -- inference export ------------------------------------------------------
    def forecaster(self, solver_config: SolverConfig = SolverConfig(),
                   use_ema: bool = True) -> ResidualForecaster:
        """Build a forecaster; by default with EMA weights, per the paper
        ("using only these weights during inference")."""
        inference_model = Aeris(self.model.config)
        inference_model.load_state_dict(self.model.state_dict())
        if use_ema:
            self.ema.copy_to(inference_model)
        inference_model.eval()
        return ResidualForecaster(
            model=inference_model,
            state_norm=self.state_norm,
            residual_norm=self.residual_norm,
            forcing_fn=lambda i: self.archive.forcing_provider(
                self.archive.gcm_step(i)),
            forcing_norm=self.forcing_norm,
            flow=self.flow,
            solver_config=solver_config)


def evaluate_validation_loss(model: Aeris, archive: SyntheticReanalysis,
                             flow: TrigFlow, lat_weights: np.ndarray,
                             var_weights: np.ndarray, state_norm,
                             residual_norm, forcing_norm,
                             batch_size: int = 8, n_batches: int = 4,
                             seed: int = 1234) -> float:
    """Mean weighted diffusion loss over held-out validation samples.

    Standalone so both the reference :class:`Trainer` and the elastic
    supervisor (:mod:`repro.resilience.supervisor`) score models with the
    *same* fixed-seed evaluation — that is what chaos tests compare
    between faulted and fault-free runs.
    """
    from ..tensor import no_grad
    rng_batch = np.random.default_rng(seed)
    rng_t = np.random.default_rng(seed + 1)
    rng_z = np.random.default_rng(seed + 2)
    indices_pool = archive.split_indices("val")
    losses = []
    for _ in range(n_batches):
        indices = rng_batch.choice(indices_pool, size=batch_size,
                                   replace=False)
        cond, residual, forc = archive.training_batch(
            indices, state_norm, residual_norm, forcing_norm)
        x_t, t, v_target = flow.training_pair(residual, rng_t, rng_z)
        with _span("train.validation_batch", category="train"), no_grad():
            pred = model(Tensor(x_t / flow.sigma_d), Tensor(t),
                         Tensor(cond), Tensor(forc))
            loss = weighted_velocity_loss(
                pred * flow.sigma_d, v_target, lat_weights, var_weights)
        losses.append(loss.item())
    return float(np.mean(losses))
