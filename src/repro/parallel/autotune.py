"""SWiPe layout autotuner: enumerate → prune → calibrate → plan.

The paper tunes its (DP, PP, WP, SP) layouts by hand per Aurora
configuration (Table II); this module makes the system choose, persist,
and defend its own layouts:

1. **enumerate** — every :class:`~repro.parallel.topology.RankTopology`
   candidate for a model + machine + rank budget: DP over divisors of
   the global batch, the WP grid over the window grid, SP up to the
   machine's tiles per node, crossed with micro-batch counts.  PP is the
   model's stage structure (``pp_stages`` for pipelined engines, 1 for
   the monolithic reference trainer) and is never factorized — the
   pipeline indexes real stages, not an abstract mesh axis.
2. **prune** — divisibility constraints first (window grid, Ulysses
   heads, batch), then the :mod:`repro.perf` memory model: a candidate
   whose footprint exceeds the tile budget even with full activation
   checkpointing is recorded as infeasible (with the reason), not
   silently dropped — :meth:`repro.obs.TraceReport.autotune_check`
   re-checks those records.
3. **predict** — :func:`repro.perf.estimate_performance` (bubble + comm
   + optimizer/allreduce tail) ranks the survivors; checkpointing
   candidates carry the ~1/3 recompute overhead.
4. **calibrate** — the top-K survivors (and the worst, for the margin
   claim) are re-timed through the dependency-driven 1F1B timeline
   simulator at a *measured* sustained FLOP rate (the CLI measures the
   ``aeris_train_step_tiny`` kernel workload).  Calibration is reported
   alongside the prediction; it never changes the deterministic ranking,
   so a plan re-derived in CI (no timers) reproduces the artifact
   bit-for-bit.

The result is a :class:`TunedPlan` — a content-addressed JSON artifact
keyed by the config/machine/budget *and* a digest of the cost-model
sources, written crash-safely via :func:`repro.resilience.atomic_write`.
Committed snapshots under ``benchmarks/results/plans/`` are the CI drift
oracle: ``tools/autotune_cli.py verify`` re-derives each plan and fails
on any divergence in the chosen layout, the ranked frontier, or the key
digest (a cost-model edit makes the artifact stale by construction).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from dataclasses import dataclass, field

from ..model import AerisConfig, count_parameters
from ..model.config import SMALL, TABLE_II, TINY, config_to_dict
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..perf.comm_model import CommModel
from ..perf.flops import (forward_flops_per_sample, stage_forward_flops,
                          training_flops_per_sample)
from ..perf.machine import AURORA, LUMI, Machine
from ..perf.memory import CHECKPOINT_RECOMPUTE_OVERHEAD, MemoryModel
from ..perf.pipeline_model import schedule_1f1b, simulate_timeline
from ..perf.scaling import (ALLREDUCE_EFFICIENCY, OPT_SECONDS_PER_GPARAM,
                            estimate_performance, kernel_efficiency)
from ..resilience.atomic import atomic_write
from .topology import RankTopology
from .window_parallel import window_sharding

__all__ = [
    "Candidate", "TunedPlan", "NoFeasibleLayout",
    "enumerate_candidates", "plan_for", "calibrated_step_s",
    "code_digest", "plan_digest",
    "plan_filename", "save_plan", "load_plan", "frontier_table",
    "verify_plan", "resolve_config", "resolve_machine", "resolve_plan",
    "CONFIGS", "MACHINES", "PLANS_DIR",
]

SCHEMA_VERSION = 1

#: Default home of committed plan snapshots (the CI drift oracle).
PLANS_DIR = os.path.join("benchmarks", "results", "plans")

#: Resolvable names for snapshot verification (custom configs must be
#: passed explicitly to :func:`verify_plan`).
CONFIGS: dict[str, AerisConfig] = {"tiny": TINY, "small": SMALL, **TABLE_II}
MACHINES: dict[str, Machine] = {"aurora": AURORA, "lumi": LUMI}

#: Cost-model sources whose content keys the plan digest: editing any of
#: them invalidates every committed snapshot (stale by construction).
_CODE_RELEVANT = (
    "autotune.py",
    os.path.join("..", "perf", "comm_model.py"),
    os.path.join("..", "perf", "flops.py"),
    os.path.join("..", "perf", "machine.py"),
    os.path.join("..", "perf", "memory.py"),
    os.path.join("..", "perf", "pipeline_model.py"),
    os.path.join("..", "perf", "scaling.py"),
    os.path.join("..", "perf", "tradeoff.py"),
)

#: Detailed pruned-candidate records kept per plan (full counts are
#: always kept; examples are capped so huge sweeps stay small on disk).
_MAX_PRUNED_RECORDS = 32


class NoFeasibleLayout(ValueError):
    """No candidate survives pruning for this (config, machine, budget)."""


# ---------------------------------------------------------------------------
# candidates


@dataclass(frozen=True)
class Candidate:
    """One feasible layout with its predicted performance."""

    dp: int
    pp: int
    wp_grid: tuple[int, int]
    sp: int
    micro_batch: int
    gas: int
    checkpointing: bool
    predicted_step_s: float
    images_per_sec: float
    mfu: float
    bubble_frac: float
    memory_gb: float           # per-rank footprint (states + activations)
    windows_per_rank: int

    @property
    def wp(self) -> int:
        return self.wp_grid[0] * self.wp_grid[1]

    @property
    def world_size(self) -> int:
        return self.dp * self.pp * self.wp * self.sp

    @property
    def topology(self) -> RankTopology:
        return RankTopology(dp=self.dp, pp=self.pp,
                            wp_grid=tuple(self.wp_grid), sp=self.sp)

    @property
    def layout_key(self) -> str:
        a, b = self.wp_grid
        return (f"dp{self.dp}.pp{self.pp}.wp{a}x{b}."
                f"sp{self.sp}.mb{self.micro_batch}")

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["wp_grid"] = list(self.wp_grid)
        d["layout"] = self.layout_key
        d["world_size"] = self.world_size
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Candidate":
        names = {f.name for f in dataclasses.fields(cls)}
        kw = {k: v for k, v in d.items() if k in names}
        kw["wp_grid"] = tuple(kw["wp_grid"])
        return cls(**kw)


def _sort_key(c: Candidate):
    """Deterministic ranking: predicted step time, then the layout tuple
    (fewest ranks first) so exact ties never depend on iteration order."""
    return (c.predicted_step_s, c.world_size, c.dp, c.pp, c.wp_grid,
            c.sp, c.micro_batch)


# ---------------------------------------------------------------------------
# prediction


def _predict(config: AerisConfig, machine: Machine, topo: RankTopology,
             gbs: int, micro_batch: int, schedule: str) -> dict:
    """Predicted (step_s, images_per_sec, mfu, bubble) for one layout.

    Pipelined layouts (``pp == pp_stages``) go through
    :func:`repro.perf.estimate_performance`; the monolithic layout
    (``pp == 1``, the reference trainer) uses the same composition with
    whole-model FLOPs and no bubble.
    """
    if topo.pp == config.pp_stages:
        est = estimate_performance(config, machine, topo, gbs,
                                   schedule=schedule,
                                   micro_batch=micro_batch)
        from ..perf.pipeline_model import bubble_fraction
        gas = gbs // (topo.dp * micro_batch)
        return {"step_s": est.step_time_s,
                "images_per_sec": est.images_per_sec, "mfu": est.mfu,
                "bubble": bubble_fraction(topo.pp, gas, schedule)}
    if topo.pp != 1:
        raise ValueError(f"pp must be 1 or pp_stages={config.pp_stages}, "
                         f"got {topo.pp}")
    gas = gbs // (topo.dp * micro_batch)
    comm = CommModel(config, machine, topo)
    tokens_per_tile = config.seq_len / (topo.sp * topo.wp)
    eff = kernel_efficiency(tokens_per_tile)
    tile_peak = machine.peak_tflops_tile_bf16 * 1e12
    fwd_flops = forward_flops_per_sample(config) * micro_batch
    t_fwd_compute = fwd_flops / (topo.wp * topo.sp * tile_peak * eff)
    # One un-pipelined rank holds every block: blocks_per_layer per
    # interior stage in scaling.py generalizes to n_blocks here.
    t_a2a = (comm.alltoall_time_per_block(micro_batch)
             * config.n_blocks / 3.0)
    slot = 3.0 * t_fwd_compute + 3.0 * t_a2a
    params = count_parameters(config)
    t_opt = OPT_SECONDS_PER_GPARAM * params / 1e9
    t_ar = (comm.grad_allreduce_bytes()
            / (machine.network_bw_gbs * 1e9 * ALLREDUCE_EFFICIENCY)
            + 2e-4 * topo.dp if topo.dp > 1 else 0.0)
    step_s = gas * slot + t_opt + t_ar
    flops_step = training_flops_per_sample(config) * gbs
    tiles = topo.world_size
    tflops_per_tile = flops_step / step_s / tiles / 1e12
    return {"step_s": step_s, "images_per_sec": gbs / step_s,
            "mfu": tflops_per_tile / machine.peak_tflops_tile_bf16,
            "bubble": 0.0}


def _divisors(n: int) -> list[int]:
    return [d for d in range(1, n + 1) if n % d == 0]


def enumerate_candidates(config: AerisConfig, machine: Machine,
                         world_size: int, gbs: int, *,
                         pipeline: bool = True,
                         micro_batches: tuple[int, ...] = (1, 2, 4),
                         schedule: str = "1f1b") -> tuple[
                             list[Candidate], list[dict], dict]:
    """All feasible layout candidates plus the pruning record.

    Returns ``(feasible, pruned_examples, pruned_counts)``; feasible
    candidates are unranked (see :func:`plan_for`), pruned examples are
    capped at ``_MAX_PRUNED_RECORDS`` in deterministic enumeration order
    while the per-reason counts are exact.
    """
    if world_size < 1 or gbs < 1:
        raise ValueError("world_size and gbs must be positive")
    pp = config.pp_stages if pipeline else 1
    grid_h, grid_w = config.grid
    n_win_h = grid_h // config.window[0]
    n_win_w = grid_w // config.window[1]
    tokens_per_window = config.window[0] * config.window[1]

    feasible: list[Candidate] = []
    pruned: list[dict] = []
    counts: dict[str, int] = {}

    def record(reason: str, dp, wp_grid, sp, micro_batch, detail: str):
        counts[reason] = counts.get(reason, 0) + 1
        if len(pruned) < _MAX_PRUNED_RECORDS:
            pruned.append({
                "reason": reason, "detail": detail, "dp": dp, "pp": pp,
                "wp_grid": list(wp_grid), "sp": sp,
                "micro_batch": micro_batch})

    for sp in range(1, machine.tiles_per_node + 1):
        if config.heads % sp or tokens_per_window % sp:
            record("sequence", 1, (1, 1), sp, None,
                   f"SP={sp} divides neither heads={config.heads} nor "
                   f"window tokens={tokens_per_window}")
            continue
        for a in range(1, n_win_h + 1):
            for b in range(1, n_win_w + 1):
                if n_win_h % a or n_win_w % b:
                    record("windows", 1, (a, b), sp, None,
                           f"window grid {n_win_h}x{n_win_w} not divisible "
                           f"by WP grid {a}x{b}")
                    continue
                sharding = window_sharding(config.grid, config.window,
                                           (a, b))
                for dp in _divisors(gbs):
                    topo = RankTopology(dp=dp, pp=pp, wp_grid=(a, b), sp=sp)
                    if topo.world_size > world_size:
                        record("ranks", dp, (a, b), sp, None,
                               f"needs {topo.world_size} ranks, "
                               f"budget {world_size}")
                        continue
                    for mb in micro_batches:
                        if gbs % (dp * mb):
                            record("batch", dp, (a, b), sp, mb,
                                   f"gbs={gbs} not divisible by "
                                   f"dp*mb={dp * mb}")
                            continue
                        mem = MemoryModel(config, topo)
                        budget_gb = machine.tile_memory_gb
                        if mem.fits(mb, budget_gb, checkpointing=False):
                            ckpt = False
                            total = mem.total_bytes_per_rank(mb)
                        elif mem.fits(mb, budget_gb, checkpointing=True):
                            ckpt = True
                            total = mem.total_bytes_per_rank(
                                mb, checkpointing=True)
                        else:
                            record("memory", dp, (a, b), sp, mb,
                                   f"{mem.total_bytes_per_rank(mb, True) / 1e9:.1f} GB "
                                   f"> {budget_gb:.1f} GB tile budget even "
                                   "with checkpointing")
                            continue
                        pred = _predict(config, machine, topo, gbs, mb,
                                        schedule)
                        factor = (1.0 + CHECKPOINT_RECOMPUTE_OVERHEAD
                                  if ckpt else 1.0)
                        feasible.append(Candidate(
                            dp=dp, pp=pp, wp_grid=(a, b), sp=sp,
                            micro_batch=mb, gas=gbs // (dp * mb),
                            checkpointing=ckpt,
                            predicted_step_s=pred["step_s"] * factor,
                            images_per_sec=pred["images_per_sec"] / factor,
                            mfu=pred["mfu"] / factor,
                            bubble_frac=pred["bubble"],
                            memory_gb=total / 1e9,
                            windows_per_rank=sharding.windows_per_rank))
    return feasible, pruned, counts


# ---------------------------------------------------------------------------
# calibration


def calibrated_step_s(config: AerisConfig, machine: Machine,
                      candidate: Candidate, flops_per_s: float,
                      schedule: str = "1f1b") -> float:
    """Step time re-derived from a *measured* sustained FLOP rate.

    Replays the candidate's 1F1B schedule through the dependency-driven
    timeline simulator with stage costs scaled to ``flops_per_s``
    (instead of ``peak × kernel_efficiency``), then adds the same
    optimizer/allreduce tail as the analytic model.  Deterministic given
    the rate — the only wall-clock input is the rate measurement itself.
    """
    if flops_per_s <= 0:
        raise ValueError("flops_per_s must be positive")
    topo = candidate.topology
    comm = CommModel(config, machine, topo)
    if topo.pp == config.pp_stages and topo.pp > 1:
        interior = max(stage_forward_flops(config, s)
                       for s in range(1, config.pp_stages - 1))
    else:
        interior = forward_flops_per_sample(config)
    fwd_flops = interior * candidate.micro_batch
    t_fwd_compute = fwd_flops / (topo.wp * topo.sp * flops_per_s)
    blocks = (config.blocks_per_layer if topo.pp > 1 else config.n_blocks)
    t_a2a = comm.alltoall_time_per_block(candidate.micro_batch) * blocks / 3.0
    t_fwd = t_fwd_compute + t_a2a
    t_bwd = 2.0 * t_fwd_compute + 2.0 * t_a2a
    timeline = simulate_timeline(schedule_1f1b(topo.pp, candidate.gas),
                                 t_fwd=t_fwd, t_bwd=t_bwd)
    params_per_rank = count_parameters(config) / topo.pp
    t_opt = OPT_SECONDS_PER_GPARAM * params_per_rank / 1e9
    t_ar = (comm.grad_allreduce_bytes()
            / (machine.network_bw_gbs * 1e9 * ALLREDUCE_EFFICIENCY)
            + 2e-4 * topo.dp if topo.dp > 1 else 0.0)
    factor = (1.0 + CHECKPOINT_RECOMPUTE_OVERHEAD
              if candidate.checkpointing else 1.0)
    return timeline["makespan"] * factor + t_opt + t_ar


# ---------------------------------------------------------------------------
# digests


def code_digest() -> str:
    """SHA-256 over the cost-model sources (see ``_CODE_RELEVANT``)."""
    h = hashlib.sha256()
    here = os.path.dirname(os.path.abspath(__file__))
    for rel in _CODE_RELEVANT:
        with open(os.path.join(here, rel), "rb") as fh:
            h.update(hashlib.sha256(fh.read()).digest())
    return h.hexdigest()


def plan_digest(config: AerisConfig, machine: Machine, world_size: int,
                gbs: int, *, pipeline: bool = True,
                micro_batches: tuple[int, ...] = (1, 2, 4),
                schedule: str = "1f1b") -> str:
    """Content address of a plan: every planning input + the code digest."""
    key = {
        "schema": SCHEMA_VERSION,
        "config": config_to_dict(config),
        "machine": dataclasses.asdict(machine),
        "world_size": world_size,
        "gbs": gbs,
        "pipeline": pipeline,
        "micro_batches": list(micro_batches),
        "schedule": schedule,
        "code": code_digest(),
    }
    blob = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# the plan artifact


@dataclass
class TunedPlan:
    """The autotuner's output: chosen layout + ranked frontier + record.

    ``calibration`` carries the measured-rate re-timings (predicted vs
    measured per top-K layout); it is *excluded* from the digest and from
    snapshot verification, so a plan derived with and without timers is
    the same content-addressed artifact.
    """

    config_name: str
    machine_name: str
    world_size: int
    gbs: int
    pipeline: bool
    micro_batches: tuple[int, ...]
    schedule: str
    chosen: Candidate
    frontier: list[Candidate]
    n_feasible: int
    worst: Candidate
    pruned_counts: dict[str, int]
    pruned: list[dict]
    digest: str
    code: str
    calibration: dict = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    @property
    def chosen_topology(self) -> RankTopology:
        return self.chosen.topology

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "config_name": self.config_name,
            "machine_name": self.machine_name,
            "world_size": self.world_size,
            "gbs": self.gbs,
            "pipeline": self.pipeline,
            "micro_batches": list(self.micro_batches),
            "schedule": self.schedule,
            "digest": self.digest,
            "code": self.code,
            "chosen": self.chosen.to_dict(),
            "frontier": [c.to_dict() for c in self.frontier],
            "n_feasible": self.n_feasible,
            "worst": self.worst.to_dict(),
            "pruned_counts": dict(sorted(self.pruned_counts.items())),
            "pruned": self.pruned,
            "calibration": self.calibration,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    @classmethod
    def from_dict(cls, d: dict) -> "TunedPlan":
        return cls(
            config_name=d["config_name"], machine_name=d["machine_name"],
            world_size=d["world_size"], gbs=d["gbs"],
            pipeline=d["pipeline"],
            micro_batches=tuple(d["micro_batches"]),
            schedule=d["schedule"],
            chosen=Candidate.from_dict(d["chosen"]),
            frontier=[Candidate.from_dict(c) for c in d["frontier"]],
            n_feasible=d["n_feasible"],
            worst=Candidate.from_dict(d["worst"]),
            pruned_counts=dict(d["pruned_counts"]),
            pruned=list(d["pruned"]),
            digest=d["digest"], code=d["code"],
            calibration=dict(d.get("calibration", {})),
            schema=d.get("schema", SCHEMA_VERSION))


def plan_for(config: AerisConfig, machine: Machine, world_size: int,
             gbs: int, *, pipeline: bool = True,
             micro_batches: tuple[int, ...] = (1, 2, 4),
             schedule: str = "1f1b", top_k: int = 3,
             frontier_size: int = 16,
             measured_flops_per_s: float | None = None) -> TunedPlan:
    """Enumerate, prune, rank, and (optionally) calibrate — one plan.

    The chosen layout is always the best *predicted* candidate, so the
    plan is deterministic; ``measured_flops_per_s`` (when given) adds a
    ``calibration`` section with measured-rate step times for the top-K
    and the worst survivor, which the CI drift gate ignores.
    """
    feasible, pruned, counts = enumerate_candidates(
        config, machine, world_size, gbs, pipeline=pipeline,
        micro_batches=micro_batches, schedule=schedule)
    if not feasible:
        raise NoFeasibleLayout(
            f"no feasible layout for {config.name} on {machine.name} with "
            f"{world_size} rank(s), gbs={gbs} "
            f"(pruned: {dict(sorted(counts.items()))})")
    ranked = sorted(feasible, key=_sort_key)
    chosen, worst = ranked[0], ranked[-1]
    calibration: dict = {}
    if measured_flops_per_s is not None:
        targets = ranked[:top_k]
        if worst.layout_key not in {c.layout_key for c in targets}:
            targets = targets + [worst]
        calibration = {
            "flops_per_s": measured_flops_per_s,
            "top_k": top_k,
            "measured_step_s": {
                c.layout_key: calibrated_step_s(
                    config, machine, c, measured_flops_per_s, schedule)
                for c in targets},
        }
    plan = TunedPlan(
        config_name=config.name, machine_name=machine.name,
        world_size=world_size, gbs=gbs, pipeline=pipeline,
        micro_batches=tuple(micro_batches), schedule=schedule,
        chosen=chosen, frontier=ranked[:frontier_size],
        n_feasible=len(ranked), worst=worst,
        pruned_counts=counts, pruned=pruned,
        digest=plan_digest(config, machine, world_size, gbs,
                           pipeline=pipeline, micro_batches=micro_batches,
                           schedule=schedule),
        code=code_digest(), calibration=calibration)
    registry = _obs_metrics()
    if registry is not None:
        registry.counter("autotune.plans", "layout plans derived").inc()
        registry.counter("autotune.candidates",
                         "feasible layout candidates").inc(len(ranked))
        for reason, n in sorted(counts.items()):
            registry.counter("autotune.pruned",
                             "candidates pruned as infeasible").inc(
                n, reason=reason)
        registry.gauge("autotune.predicted_step_s",
                       "chosen layout's predicted step time").set(
            chosen.predicted_step_s)
    _record_event("autotune.plan", subsystem="autotune",
                  config=config.name, machine=machine.name,
                  world_size=world_size, layout=chosen.layout_key,
                  predicted_step_s=chosen.predicted_step_s)
    return plan


def resolve_plan(plan, config: AerisConfig, machine: Machine,
                 world_size: int, gbs: int, *, pipeline: bool = True,
                 micro_batches: tuple[int, ...] = (1, 2, 4),
                 schedule: str = "1f1b") -> TunedPlan:
    """Turn a ``plan=`` argument into a validated :class:`TunedPlan`.

    ``"auto"`` derives a fresh plan for the given budget; a
    :class:`TunedPlan` (e.g. loaded from a snapshot) is checked against
    the config/budget it is about to drive — a plan tuned for a
    different model, machine, rank count, or batch silently applied
    would defeat the whole artifact, so mismatches raise.
    """
    if isinstance(plan, str):
        if plan != "auto":
            raise ValueError(f"plan must be 'auto' or a TunedPlan, "
                             f"got {plan!r}")
        return plan_for(config, machine, world_size, gbs,
                        pipeline=pipeline, micro_batches=micro_batches,
                        schedule=schedule)
    if not isinstance(plan, TunedPlan):
        raise TypeError(f"plan must be 'auto' or a TunedPlan, "
                        f"got {type(plan).__name__}")
    mismatches = []
    for label, got, want in (("config", plan.config_name, config.name),
                             ("machine", plan.machine_name, machine.name),
                             ("world_size", plan.world_size, world_size),
                             ("gbs", plan.gbs, gbs),
                             ("pipeline", plan.pipeline, pipeline)):
        if got != want:
            mismatches.append(f"{label}: plan has {got!r}, run wants "
                              f"{want!r}")
    if mismatches:
        raise ValueError("tuned plan does not apply to this run — "
                         + "; ".join(mismatches))
    return plan


# ---------------------------------------------------------------------------
# artifacts on disk


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-")


def plan_filename(plan: TunedPlan) -> str:
    """Stable snapshot name: one file per (config, machine, budget)."""
    mono = "" if plan.pipeline else "_mono"
    return (f"{_sanitize(plan.config_name)}_{_sanitize(plan.machine_name)}"
            f"_w{plan.world_size}_g{plan.gbs}{mono}.json")


def save_plan(plan: TunedPlan, directory: str = PLANS_DIR) -> str:
    """Crash-safe snapshot write; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, plan_filename(plan))
    return atomic_write(path, plan.to_json())


def load_plan(path: str) -> TunedPlan:
    with open(path) as fh:
        return TunedPlan.from_dict(json.load(fh))


def frontier_table(plan: TunedPlan) -> str:
    """Human-readable ranked frontier (the CI artifact)."""
    header = (f"TunedPlan {plan.config_name} @ {plan.machine_name} | "
              f"world={plan.world_size} gbs={plan.gbs} "
              f"schedule={plan.schedule} | {plan.n_feasible} feasible, "
              f"pruned {dict(sorted(plan.pruned_counts.items()))} | "
              f"digest {plan.digest[:12]}")
    cols = (f"{'rank':>4}  {'layout':<28} {'gas':>4} {'ckpt':>4} "
            f"{'mem_gb':>8} {'bubble':>7} {'mfu':>6} {'pred_s':>10} "
            f"{'meas_s':>10}")
    lines = [header, cols, "-" * len(cols)]
    measured = plan.calibration.get("measured_step_s", {})
    for i, c in enumerate(plan.frontier):
        meas = measured.get(c.layout_key)
        meas_str = "-" if meas is None else f"{meas:.4g}"
        lines.append(
            f"{i:>4}  {c.layout_key:<28} {c.gas:>4} "
            f"{'y' if c.checkpointing else '-':>4} {c.memory_gb:>8.2f} "
            f"{c.bubble_frac:>7.3f} {c.mfu:>6.3f} "
            f"{c.predicted_step_s:>10.4g} {meas_str:>10}")
    if plan.n_feasible > len(plan.frontier):
        lines.append(f"  ... {plan.n_feasible - len(plan.frontier)} more "
                     "feasible candidate(s)")
    w = plan.worst
    lines.append(f"worst {w.layout_key}: pred {w.predicted_step_s:.4g} s"
                 + (f", meas {measured[w.layout_key]:.4g} s"
                    if w.layout_key in measured else ""))
    return "\n".join(line.rstrip() for line in lines)


# ---------------------------------------------------------------------------
# verification (the CI drift gate)


def resolve_config(name: str) -> AerisConfig:
    try:
        return CONFIGS[name] if name in CONFIGS else CONFIGS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown config {name!r}; known: "
                       f"{sorted(CONFIGS)}") from None


def resolve_machine(name: str) -> Machine:
    try:
        return MACHINES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown machine {name!r}; known: "
                       f"{sorted(MACHINES)}") from None


def verify_plan(plan: TunedPlan, config: AerisConfig | None = None,
                machine: Machine | None = None,
                rel_tol: float = 1e-9) -> list[str]:
    """Re-derive ``plan`` from its inputs; return the drift findings.

    Empty list = the snapshot still describes what the planner would
    choose today.  Calibration is ignored (wall-clock measurements are
    not content).  Drift kinds: stale key digest (a planning input or a
    cost-model source changed), a different chosen layout, a reordered
    frontier, or predicted numbers off by more than ``rel_tol``.
    """
    config = config if config is not None else resolve_config(
        plan.config_name)
    machine = machine if machine is not None else resolve_machine(
        plan.machine_name)
    drifts: list[str] = []
    expect = plan_digest(config, machine, plan.world_size, plan.gbs,
                         pipeline=plan.pipeline,
                         micro_batches=plan.micro_batches,
                         schedule=plan.schedule)
    if expect != plan.digest:
        drifts.append(f"stale digest: snapshot {plan.digest[:12]} vs "
                      f"current {expect[:12]} (planning inputs or "
                      "cost-model sources changed; refresh the snapshot)")
    fresh = plan_for(config, machine, plan.world_size, plan.gbs,
                     pipeline=plan.pipeline,
                     micro_batches=plan.micro_batches,
                     schedule=plan.schedule,
                     frontier_size=len(plan.frontier))
    if fresh.chosen.layout_key != plan.chosen.layout_key:
        drifts.append(f"chosen layout drifted: snapshot "
                      f"{plan.chosen.layout_key} vs fresh "
                      f"{fresh.chosen.layout_key}")
    snap_keys = [c.layout_key for c in plan.frontier]
    fresh_keys = [c.layout_key for c in fresh.frontier]
    if snap_keys != fresh_keys:
        drifts.append(f"frontier drifted: snapshot {snap_keys} vs fresh "
                      f"{fresh_keys}")
    else:
        for old, new in zip(plan.frontier, fresh.frontier):
            ref = max(abs(old.predicted_step_s), 1e-300)
            if abs(old.predicted_step_s - new.predicted_step_s) / ref \
                    > rel_tol:
                drifts.append(
                    f"{old.layout_key}: predicted_step_s "
                    f"{old.predicted_step_s!r} -> "
                    f"{new.predicted_step_s!r}")
    if fresh.n_feasible != plan.n_feasible:
        drifts.append(f"feasible count drifted: {plan.n_feasible} -> "
                      f"{fresh.n_feasible}")
    return drifts
