"""Window Parallelism (WP) — the paper's new parallel dimension.

Swin's attention windows are independent, so an image's windows can be
distributed across ranks with *no halo exchange*: each rank attends over its
own windows.  Windows are assigned round-robin in both grid directions
(Figure 2a), which balances load and batches the data movement caused by the
alternating window *shift*.

This module provides the sharding/unsharding bookkeeping, the metered
shift exchange, and a window-parallel attention driver that is verified
against unsharded attention.
"""

from __future__ import annotations

import numpy as np

from ..data.loader import round_robin_assignment
from ..kernels import LRUCache
from ..model.windows import window_grid_shape
from .comm import SimCluster

__all__ = ["WindowSharding", "window_sharding", "shift_owner_change_bytes"]


class WindowSharding:
    """Round-robin window sharding over a WP grid for ``(B, H, W, D)``
    images (D = embedding or channel dim)."""

    def __init__(self, grid: tuple[int, int], window: tuple[int, int],
                 wp_grid: tuple[int, int]):
        self.grid = grid
        self.window = window
        self.wp_grid = wp_grid
        self.n_win_h, self.n_win_w = window_grid_shape(grid[0], grid[1], window)
        if self.n_win_h % wp_grid[0] or self.n_win_w % wp_grid[1]:
            raise ValueError("window grid not divisible by WP grid")
        self.assignment = round_robin_assignment(self.n_win_h, self.n_win_w,
                                                 wp_grid)
        self.wp = wp_grid[0] * wp_grid[1]
        self._owned = [np.argwhere(self.assignment == r) for r in range(self.wp)]
        self._gather_plans: list[np.ndarray] | None = None
        self._gather_source: object = None

    @property
    def _gather(self) -> list[np.ndarray]:
        # Lazy + keyed on the identity of `_owned`, so subclasses that
        # replace the assignment after construction stay consistent.
        if self._gather_plans is None or self._gather_source is not self._owned:
            self._gather_plans = self._build_gather()
            self._gather_source = self._owned
        return self._gather_plans

    def _build_gather(self) -> list[np.ndarray]:
        """Per-rank flat pixel indices (window-major, row-major in-window)
        into the flattened ``H*W`` axis — shard/unshard as single gathers."""
        h, w = self.grid
        wh, ww = self.window
        pixel = np.arange(h * w, dtype=np.intp).reshape(h, w)
        plans = []
        for own in self._owned:
            idx = np.empty((len(own), wh * ww), dtype=np.intp)
            for n, (i, j) in enumerate(own):
                idx[n] = pixel[i * wh:(i + 1) * wh,
                               j * ww:(j + 1) * ww].reshape(-1)
            flat = idx.reshape(-1)
            flat.setflags(write=False)
            plans.append(flat)
        return plans

    @property
    def windows_per_rank(self) -> int:
        return (self.n_win_h * self.n_win_w) // self.wp

    def owned_windows(self, rank: int) -> np.ndarray:
        """``(windows_per_rank, 2)`` window-grid coordinates, row-major."""
        return self._owned[rank]

    # -- shard / unshard ------------------------------------------------------
    def shard(self, image: np.ndarray) -> list[np.ndarray]:
        """``(B, H, W, D)`` -> per-rank ``(B, n_own, wh*ww, D)`` stacks
        (one planned gather per rank)."""
        b, h, w, d = image.shape
        wh, ww = self.window
        flat = image.reshape(b, h * w, d)
        return [np.take(flat, idx, axis=1).reshape(b, len(own), wh * ww, d)
                for own, idx in zip(self._owned, self._gather)]

    def unshard(self, shards: list[np.ndarray]) -> np.ndarray:
        b = shards[0].shape[0]
        d = shards[0].shape[-1]
        h, w = self.grid
        flat = np.empty((b, h * w, d), dtype=shards[0].dtype)
        for stack, idx in zip(shards, self._gather):
            flat[:, idx] = stack.reshape(b, -1, d)
        return flat.reshape(b, h, w, d)

    # -- window-parallel attention ----------------------------------------------
    def parallel_apply(self, image: np.ndarray, window_fn,
                       cluster: SimCluster | None = None,
                       wp_group: list[int] | None = None,
                       shifted: bool = False) -> np.ndarray:
        """Apply a per-window function under WP sharding.

        ``window_fn`` maps ``(B, n, tokens, D)`` -> ``(B, n, tokens, D')``
        and must treat windows independently (true for window attention).
        When ``shifted``, the image is cyclically rolled by half a window
        before sharding and unrolled afterwards; the inter-rank traffic this
        causes is metered as p2p bytes if a cluster is given.
        """
        sh, sw = self.window[0] // 2, self.window[1] // 2
        work = image
        if shifted:
            work = np.roll(work, (-sh, -sw), axis=(1, 2))
            if cluster is not None and wp_group is not None:
                moved = shift_owner_change_bytes(self, image.dtype.itemsize
                                                 * image.shape[0]
                                                 * image.shape[-1])
                # Each rank sends 1/SP of a window per transfer in the real
                # system; here we meter the aggregate volume once.
                cluster.stats.add("p2p", "inter", moved)
        shards = self.shard(work)
        out_shards = [window_fn(s) for s in shards]
        out = self.unshard(out_shards)
        if shifted:
            out = np.roll(out, (sh, sw), axis=(1, 2))
            if cluster is not None and wp_group is not None:
                moved = shift_owner_change_bytes(self, image.dtype.itemsize
                                                 * image.shape[0]
                                                 * out.shape[-1])
                cluster.stats.add("p2p", "inter", moved)
        return out


_SHARDINGS = LRUCache("window_shardings", maxsize=32)


def window_sharding(grid: tuple[int, int], window: tuple[int, int],
                    wp_grid: tuple[int, int]) -> WindowSharding:
    """Memoized :class:`WindowSharding` — the assignment, owned-window lists,
    and gather plans are pure functions of the key, so sharded attention
    reuses one instance per ``(grid, window, wp_grid)``.  Callers must not
    mutate the shared instance (subclass instead, as the ablation bench
    does)."""
    key = ((int(grid[0]), int(grid[1])), (int(window[0]), int(window[1])),
           (int(wp_grid[0]), int(wp_grid[1])))
    return _SHARDINGS.get_or_build(
        key, lambda: WindowSharding(key[0], key[1], key[2]))


def shift_owner_change_bytes(sharding: WindowSharding,
                             bytes_per_pixel: int) -> int:
    """Bytes that change WP owner under a half-window cyclic shift.

    A pixel moves between ranks iff the window it falls in after the shift
    is owned by a different rank than before.  With round-robin assignment
    neighbouring windows always differ in owner (when the WP grid is > 1 in
    that direction), so ~3/4 of each window's pixels move — but the pattern
    is *regular*, which is what lets the real implementation batch the
    exchange.
    """
    h, w = sharding.grid
    wh, ww = sharding.window
    sh, sw = wh // 2, ww // 2
    rows = np.arange(h)
    cols = np.arange(w)
    owner_before = sharding.assignment[(rows[:, None] // wh) % sharding.n_win_h,
                                       (cols[None, :] // ww) % sharding.n_win_w]
    rows_s = (rows + sh) % h
    cols_s = (cols + sw) % w
    owner_after = sharding.assignment[(rows_s[:, None] // wh),
                                      (cols_s[None, :] // ww)]
    moved_pixels = int((owner_before != owner_after).sum())
    return moved_pixels * bytes_per_pixel
