"""Data parallelism: replicated models, split batches, gradient allreduce.

Gradient reductions are performed in FP32 (the paper's mixed-precision rule)
and averaged across the DP group; the allreduce volume is metered so the
communication-model tests can check it is *independent of WP* (the paper:
"the overhead from gradient allreduce remains unchanged" when WP is
enabled).
"""

from __future__ import annotations

import numpy as np

from ..nn import Module
from .comm import SimCluster

__all__ = ["replicate_model", "allreduce_gradients"]


def replicate_model(model: Module, factory) -> Module:
    """Build a fresh replica via ``factory()`` and copy the weights."""
    replica = factory()
    replica.load_state_dict(model.state_dict())
    return replica


def allreduce_gradients(cluster: SimCluster, dp_group: list[int],
                        replicas: list[Module]) -> None:
    """Average parameter gradients across replicas, in place.

    Replicas without a gradient for some parameter contribute zeros (this
    matches frameworks that materialize zero grads before the reduction).
    """
    if len(replicas) != len(dp_group):
        raise ValueError("one replica per DP rank required")
    param_lists = [list(r.parameters()) for r in replicas]
    n_params = len(param_lists[0])
    if any(len(pl) != n_params for pl in param_lists):
        raise ValueError("replicas disagree on parameter count")
    dp = len(dp_group)
    for i in range(n_params):
        grads = []
        for pl in param_lists:
            p = pl[i]
            grads.append(p.grad if p.grad is not None
                         else np.zeros_like(p.data))
        reduced = cluster.allreduce(dp_group, grads)
        for pl, r in zip(param_lists, reduced):
            pl[i].grad = r / dp
