"""The composed SWiPe attention data path (paper Figure 2), functionally.

One shifted-window attention layer executed exactly as the paper
distributes it:

1. the (possibly shifted) token grid is divided into windows, distributed
   **round-robin over the WP node grid** (Figure 2a, middle);
2. within each WP node, window tokens are flattened and **sharded across
   the SP ranks** of the node;
3. qkv projection runs on each SP shard; **Ulysses all-to-alls**
   re-partition to head-sharded full windows around the attention kernel
   (with axial 2D RoPE applied to q/k);
4. the output projection runs on the re-sharded tokens, windows are merged
   back and the shift undone.

Every byte moved rides the metered :class:`~repro.parallel.comm.SimCluster`.
The result is verified (in tests) to equal the single-process
:class:`~repro.nn.MultiHeadAttention` forward bit-for-bit (up to FP32
reduction order).
"""

from __future__ import annotations

import numpy as np

from ..kernels import rope_tables
from .comm import SimCluster
from .sequence_parallel import ulysses_attention
from .topology import RankTopology
from .window_parallel import window_sharding

__all__ = ["swipe_window_attention"]


def _apply_rotary_np(x: np.ndarray, cos: np.ndarray, sin: np.ndarray
                     ) -> np.ndarray:
    """NumPy mirror of :func:`repro.nn.attention.apply_rotary` for
    ``(..., tokens, heads, head_dim)`` with tables ``(tokens, head_dim/2)``."""
    pairs = x.reshape(x.shape[:-1] + (x.shape[-1] // 2, 2))
    x0, x1 = pairs[..., 0], pairs[..., 1]
    c = cos[:, None, :]  # broadcast over heads
    s = sin[:, None, :]
    r0 = x0 * c - x1 * s
    r1 = x0 * s + x1 * c
    return np.stack([r0, r1], axis=-1).reshape(x.shape)


def swipe_window_attention(image: np.ndarray, attention, window: tuple[int, int],
                           topology: RankTopology,
                           cluster: SimCluster | None = None,
                           shifted: bool = False, dp: int = 0, pp: int = 0
                           ) -> np.ndarray:
    """Run one windowed multi-head attention under WP x SP sharding.

    Parameters
    ----------
    image:
        ``(B, H, W, D)`` token grid.
    attention:
        A trained :class:`repro.nn.MultiHeadAttention` whose weights are
        used (its qkv/out projections and head layout).
    window / topology:
        Window shape and the DP×PP×WP×SP layout; ``dp``/``pp`` select the
        executing instance/stage for locality accounting.
    """
    cluster = cluster if cluster is not None else SimCluster(
        topology.world_size, ranks_per_node=topology.sp)
    heads = attention.heads
    head_dim = attention.head_dim
    dim = attention.dim
    w_qkv = attention.qkv.weight.data          # (D, 3D)
    w_out = attention.out.weight.data          # (D, D)
    cos, sin = rope_tables(window, head_dim)

    sharding = window_sharding((image.shape[1], image.shape[2]), window,
                               topology.wp_grid)
    sh, sw = window[0] // 2, window[1] // 2
    work = np.roll(image, (-sh, -sw), axis=(1, 2)) if shifted else image
    if shifted:
        from .window_parallel import shift_owner_change_bytes
        moved = shift_owner_change_bytes(
            sharding, image.dtype.itemsize * image.shape[0] * dim)
        cluster.stats.add("p2p", "inter", moved)
    wp_shards = sharding.shard(work)           # per WP rank: (B, nW, T, D)

    out_shards = []
    for wp_rank, stack in enumerate(wp_shards):
        sp_group = topology.sp_group(dp, pp, wp_rank)
        b, n_win, tokens, _ = stack.shape
        # SP-shard the window tokens: (B, nW, T/SP, D) per SP rank, with
        # qkv projected locally on each shard (Megatron-style local GEMMs).
        token_shards = np.split(stack, topology.sp, axis=2) \
            if topology.sp > 1 else [stack]
        q_shards, k_shards, v_shards = [], [], []
        rope_splits_cos = np.split(cos, topology.sp, axis=0) \
            if topology.sp > 1 else [cos]
        rope_splits_sin = np.split(sin, topology.sp, axis=0) \
            if topology.sp > 1 else [sin]
        for sp_rank, shard in enumerate(token_shards):
            qkv = shard @ w_qkv                 # (B, nW, T/SP, 3D)
            t_shard = shard.shape[2]
            qkv = qkv.reshape(b, n_win, t_shard, 3, heads, head_dim)
            q = qkv[:, :, :, 0]
            k = qkv[:, :, :, 1]
            v = qkv[:, :, :, 2]
            # Rope uses the *global* within-window token coordinates owned
            # by this SP shard.
            q = _apply_rotary_np(q, rope_splits_cos[sp_rank],
                                 rope_splits_sin[sp_rank])
            k = _apply_rotary_np(k, rope_splits_cos[sp_rank],
                                 rope_splits_sin[sp_rank])
            # ulysses expects (..., T/SP, H, hd): fold (B, nW) into leading.
            q_shards.append(q.reshape(b * n_win, t_shard, heads, head_dim))
            k_shards.append(k.reshape(b * n_win, t_shard, heads, head_dim))
            v_shards.append(v.reshape(b * n_win, t_shard, heads, head_dim))
        attn_shards = ulysses_attention(cluster, sp_group, q_shards,
                                        k_shards, v_shards)
        # Output projection on each SP rank's token shard, then re-join.
        projected = [
            (s.reshape(b, n_win, -1, dim) @ w_out) for s in attn_shards]
        out_shards.append(np.concatenate(projected, axis=2))
    out = sharding.unshard(out_shards)
    if shifted:
        out = np.roll(out, (sh, sw), axis=(1, 2))
        from .window_parallel import shift_owner_change_bytes
        moved = shift_owner_change_bytes(
            sharding, image.dtype.itemsize * image.shape[0] * dim)
        cluster.stats.add("p2p", "inter", moved)
    return out
