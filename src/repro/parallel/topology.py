"""Rank topology for SWiPe: DP × PP × WP × SP.

Following the paper (Figure 2b): SP groups are confined to a node (the
bandwidth-hungry all-to-alls ride the intra-node fabric); a model instance
occupies WP × PP nodes; data parallelism replicates instances.

Global rank layout (slowest to fastest): dp, pp, wp, sp — so the SP group of
a rank is a contiguous block, which is exactly one simulated node when the
cluster is built with ``ranks_per_node = sp``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RankTopology"]


@dataclass(frozen=True)
class RankTopology:
    dp: int
    pp: int
    wp_grid: tuple[int, int]
    sp: int

    @property
    def wp(self) -> int:
        return self.wp_grid[0] * self.wp_grid[1]

    @property
    def world_size(self) -> int:
        return self.dp * self.pp * self.wp * self.sp

    @property
    def nodes(self) -> int:
        return self.dp * self.pp * self.wp

    # -- rank <-> coordinates -----------------------------------------------
    def rank_of(self, dp: int, pp: int, wp: int, sp: int) -> int:
        self._check(dp, pp, wp, sp)
        return ((dp * self.pp + pp) * self.wp + wp) * self.sp + sp

    def coords_of(self, rank: int) -> tuple[int, int, int, int]:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        sp = rank % self.sp
        rank //= self.sp
        wp = rank % self.wp
        rank //= self.wp
        pp = rank % self.pp
        dp = rank // self.pp
        return dp, pp, wp, sp

    def _check(self, dp: int, pp: int, wp: int, sp: int) -> None:
        if not (0 <= dp < self.dp and 0 <= pp < self.pp
                and 0 <= wp < self.wp and 0 <= sp < self.sp):
            raise ValueError(f"coords ({dp},{pp},{wp},{sp}) out of range")

    # -- groups ----------------------------------------------------------------
    def sp_group(self, dp: int, pp: int, wp: int) -> list[int]:
        """All SP ranks sharing one (dp, pp, wp) — one node."""
        return [self.rank_of(dp, pp, wp, s) for s in range(self.sp)]

    def wp_group(self, dp: int, pp: int, sp: int) -> list[int]:
        return [self.rank_of(dp, pp, w, sp) for w in range(self.wp)]

    def dp_group(self, pp: int, wp: int, sp: int) -> list[int]:
        return [self.rank_of(d, pp, wp, sp) for d in range(self.dp)]

    def pp_neighbors(self, dp: int, pp: int, wp: int, sp: int
                     ) -> tuple[int | None, int | None]:
        """(previous-stage rank, next-stage rank) for PP send/recv."""
        prev_rank = self.rank_of(dp, pp - 1, wp, sp) if pp > 0 else None
        next_rank = self.rank_of(dp, pp + 1, wp, sp) if pp < self.pp - 1 else None
        return prev_rank, next_rank

    def model_parallel_group(self, dp: int) -> list[int]:
        """All ranks of one model instance (shares the t-seed, per the
        paper's noise-seeding rule)."""
        return [self.rank_of(dp, p, w, s)
                for p in range(self.pp)
                for w in range(self.wp)
                for s in range(self.sp)]

    # -- elastic re-grid ---------------------------------------------------
    def degrade(self, dead_ranks) -> "RankTopology":
        """The surviving-rank topology after fail-stop deaths.

        Policy (in order), mirroring what an elastic launcher would do:

        1. drop every DP replica that contains a dead rank — gradient
           math is unchanged, throughput shrinks;
        2. if no replica survives, shed the model-parallel degrees that a
           restart can rebalance — reduce SP first, then shrink the WP
           grid (the pipeline depth PP is the model's stage structure and
           cannot shrink) — repeatedly, until the shrunken grid fits onto
           the *surviving* rank count (a single shed can still demand
           more ranks than are alive, which would re-grid onto dead
           ranks);
        3. if nothing sheddable remains, raise
           :class:`~repro.resilience.ClusterFailure`.

        Rank ids in the returned topology are renumbered 0..world-1; the
        caller (:class:`~repro.resilience.ElasticSupervisor`) resets the
        fault injector's grid accordingly.
        """
        from ..resilience.faults import ClusterFailure
        dead = set(dead_ranks)
        if not dead:
            return self
        affected = {self.coords_of(r)[0] for r in dead}
        surviving_dp = self.dp - len(affected)
        if surviving_dp >= 1:
            return RankTopology(surviving_dp, self.pp, self.wp_grid, self.sp)
        alive = self.world_size - len(dead)
        sp = self.sp
        w0, w1 = self.wp_grid
        shed = False
        while not shed or self.dp * self.pp * w0 * w1 * sp > alive:
            if sp > 1:
                sp -= 1
            elif w1 > 1:
                w1 -= 1
            elif w0 > 1:
                w0 -= 1
            else:
                raise ClusterFailure(
                    f"no viable degraded topology: {len(dead)} dead "
                    f"rank(s) in a DP={self.dp}, PP={self.pp}, "
                    f"WP={self.wp}, SP={self.sp} grid")
            shed = True
        return RankTopology(self.dp, self.pp, (w0, w1), sp)
