"""Pipeline parallelism over the AERIS stage structure PP = L + 2.

The paper isolates data I/O + input embedding into the first stage and
decoding + output into the last, with one Swin layer per interior stage —
keeping I/O latency out of the interior stages' bubble.

This executor performs *real* pipelined training numerics: activations are
detached at stage boundaries, handed to the next stage (metered as PP
send/recv), and gradients are routed back through the same boundaries during
backward.  Gradient accumulation over microbatches happens naturally because
``Tensor.backward`` accumulates into parameter ``.grad``.  The resulting
gradients are verified (in tests) to match a monolithic forward/backward
bit-for-bit.

Execution order inside one process is sequential; the 1F1B/GPipe *timing*
(bubble fraction) is modeled in :mod:`repro.perf.pipeline_model`, which is
also where the schedules live.

Tracing (:mod:`repro.obs`): when enabled, every stage pass is timed as an
execution span, and after each ``forward_backward`` the measured mean
stage costs are replayed through
:func:`repro.perf.pipeline_model.simulate_timeline` onto **per-rank
1F1B tracks** (category ``pp-1f1b``) — the exported Chrome trace then
shows the warmup/steady-state/cooldown staircase and the bubble the perf
model predicts, even though the simulation executes sequentially.  With
tracing disabled none of this runs (no clock reads, no span objects).
"""

from __future__ import annotations

import numpy as np

from ..model import Aeris
from ..obs.profile import get_tracer, metrics as _obs_metrics
from ..tensor import Tensor
from .comm import SimCluster

__all__ = ["AerisPipeline"]


class _NullTimer:
    """Disabled fast path: ``timer(phase, stage)`` is a no-op context."""

    __slots__ = ()

    def __call__(self, phase: str, stage: int) -> "_NullTimer":
        return self

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NO_TIMER = _NullTimer()


class _StageTimer:
    """Times one (phase, stage) pass per use; also emits execution spans."""

    __slots__ = ("tracer", "name", "micro", "durations", "_phase", "_stage",
                 "_start")

    def __init__(self, tracer, name: str):
        self.tracer = tracer
        self.name = name
        self.micro = 0
        self.durations: dict[str, list[float]] = {"F": [], "B": []}

    def __call__(self, phase: str, stage: int) -> "_StageTimer":
        self._phase = phase
        self._stage = stage
        return self

    def __enter__(self) -> "_StageTimer":
        self._start = self.tracer.clock()
        return self

    def __exit__(self, *exc) -> None:
        end = self.tracer.clock()
        self.durations[self._phase].append(end - self._start)
        self.tracer.add_span(
            f"{self._phase} s{self._stage} m{self.micro}", self._start, end,
            track=f"{self.name}/exec", category="pp-exec",
            phase=self._phase, stage=self._stage, micro=self.micro)
        return None


class AerisPipeline:
    """Microbatched pipelined forward/backward for an :class:`Aeris`.

    Parameters
    ----------
    model:
        The full model (stage views are taken of its submodules; parameters
        are shared, not copied).
    cluster / pp_group:
        Optional metering: activation handoffs are charged as p2p bytes
        between consecutive ``pp_group`` ranks.
    name:
        Trace track prefix (``dp0``, ``dp1``, ... inside a SWiPe engine) so
        per-replica timelines stay distinguishable.
    """

    def __init__(self, model: Aeris, cluster: SimCluster | None = None,
                 pp_group: list[int] | None = None, name: str = "pp"):
        self.model = model
        self.cluster = cluster
        self.pp_group = pp_group
        self.name = name
        self.n_stages = model.config.swin_layers + 2
        self._virtual_clock = None  # end of the last replayed 1F1B timeline

    def _meter(self, stage: int, nbytes: int,
               payload: np.ndarray | None = None) -> None:
        """Charge a stage-boundary handoff as p2p traffic; routed through
        the cluster's fault-aware transfer so pipeline activations can
        experience (and surface) injected faults."""
        if self.cluster is None or self.pp_group is None:
            return
        self.cluster.transfer("p2p", self.pp_group[stage],
                              self.pp_group[stage + 1], nbytes,
                              payload=payload)

    def forward_backward(self, x_t: np.ndarray, t: np.ndarray,
                         cond: np.ndarray, forc: np.ndarray,
                         loss_fn, n_micro: int) -> float:
        """Run ``n_micro`` microbatches; returns the *sum* of loss values.

        ``loss_fn(pred: Tensor, micro_slice: slice) -> Tensor`` must already
        scale by ``1 / n_micro`` if averaged gradients are desired — the
        summed return value then equals the full-batch mean loss.
        Parameter gradients accumulate across microbatches.
        """
        batch = x_t.shape[0]
        if batch % n_micro:
            raise ValueError(f"batch {batch} not divisible into {n_micro} "
                             "microbatches")
        tracer = get_tracer()
        timer = _StageTimer(tracer, self.name) if tracer is not None \
            else _NO_TIMER
        mb = batch // n_micro
        total_loss = 0.0
        for m in range(n_micro):
            if tracer is not None:
                timer.micro = m
            sl = slice(m * mb, (m + 1) * mb)
            total_loss += self._one_microbatch(
                x_t[sl], t[sl], cond[sl], forc[sl],
                lambda pred: loss_fn(pred, sl), timer)
        if tracer is not None:
            self._replay_1f1b(tracer, timer, n_micro)
        return total_loss

    # -- 1F1B timeline replay ----------------------------------------------
    def _replay_1f1b(self, tracer, timer: _StageTimer, n_micro: int) -> None:
        """Lay mean measured stage costs onto the 1F1B schedule as per-rank
        virtual spans; consecutive calls extend the same virtual timeline
        so multi-step bubbles stay geometrically exact."""
        from ..perf.pipeline_model import schedule_1f1b, simulate_timeline
        fwd, bwd = timer.durations["F"], timer.durations["B"]
        if not fwd or not bwd:
            return
        sim = simulate_timeline(schedule_1f1b(self.n_stages, n_micro),
                                t_fwd=sum(fwd) / len(fwd),
                                t_bwd=sum(bwd) / len(bwd))
        base = self._virtual_clock if self._virtual_clock is not None \
            else tracer.clock()
        for phase, stage, micro, start, finish in sim["events"]:
            tracer.add_span(f"{phase}{micro}", base + start, base + finish,
                            track=f"{self.name}/rank{stage}",
                            category="pp-1f1b", phase=phase, stage=stage,
                            micro=micro)
        self._virtual_clock = base + sim["makespan"]
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("pp.microbatches",
                             "microbatches through the pipeline").inc(
                n_micro, pipeline=self.name)
            registry.gauge("pp.bubble",
                           "1F1B bubble at measured stage costs").set(
                sim["bubble"], pipeline=self.name)

    # -- single microbatch -------------------------------------------------
    def _one_microbatch(self, x_t, t, cond, forc, loss_fn,
                        timer=_NO_TIMER) -> float:
        model = self.model
        # Stage 0: I/O + embedding (+ the shared time embedding, which is
        # broadcast to every interior stage).
        with timer("F", 0):
            embed_out = model.embed_stage(Tensor(x_t), Tensor(cond),
                                          Tensor(forc))
            t_emb = model.time_embed(Tensor(t))
        act = embed_out

        boundary_inputs: list[Tensor] = []
        boundary_tembs: list[Tensor] = []
        stage_outputs: list[Tensor] = []
        for s, layer in enumerate(model.layers):
            with timer("F", s + 1):
                inp = Tensor(act.numpy().copy(), requires_grad=True)
                temb_in = Tensor(t_emb.numpy().copy(), requires_grad=True)
                self._meter(s, inp.data.nbytes + temb_in.data.nbytes,
                            payload=inp.data)
                out = layer(inp, temb_in)
            boundary_inputs.append(inp)
            boundary_tembs.append(temb_in)
            stage_outputs.append(out)
            act = out
        # Last stage: decode + loss; its backward runs down to the stage
        # boundary (``dec_in`` is the detached boundary tensor).
        with timer("F", self.n_stages - 1):
            dec_in = Tensor(act.numpy().copy(), requires_grad=True)
            self._meter(self.n_stages - 2, dec_in.data.nbytes,
                        payload=dec_in.data)
            pred = model.decode_stage(dec_in)
            loss = loss_fn(pred)
        with timer("B", self.n_stages - 1):
            loss.backward()

        # Backward through interior stages, routing boundary gradients.
        grad = dec_in.grad
        for s in range(len(model.layers) - 1, -1, -1):
            with timer("B", s + 1):
                self._meter(s, grad.nbytes, payload=grad)
                stage_outputs[s].backward(grad)
                grad = boundary_inputs[s].grad
        with timer("B", 0):
            # Time-embedding gradients arrive from every interior stage.
            temb_grad = np.zeros_like(t_emb.numpy())
            for temb_in in boundary_tembs:
                if temb_in.grad is not None:
                    temb_grad += temb_in.grad
            t_emb.backward(temb_grad)
            # Embedding-stage backward: the stage-0 graph was kept alive via
            # `embed_out`; `grad` now holds dL/d(embedding output).
            embed_out.backward(grad)
        return loss.item()
