"""Pipeline parallelism over the AERIS stage structure PP = L + 2.

The paper isolates data I/O + input embedding into the first stage and
decoding + output into the last, with one Swin layer per interior stage —
keeping I/O latency out of the interior stages' bubble.

This executor performs *real* pipelined training numerics: activations are
detached at stage boundaries, handed to the next stage (metered as PP
send/recv), and gradients are routed back through the same boundaries during
backward.  Gradient accumulation over microbatches happens naturally because
``Tensor.backward`` accumulates into parameter ``.grad``.  The resulting
gradients are verified (in tests) to match a monolithic forward/backward
bit-for-bit.

Execution order inside one process is sequential; the 1F1B/GPipe *timing*
(bubble fraction) is modeled in :mod:`repro.perf.pipeline_model`, which is
also where the schedules live.
"""

from __future__ import annotations

import numpy as np

from ..model import Aeris
from ..tensor import Tensor
from .comm import SimCluster

__all__ = ["AerisPipeline"]


class AerisPipeline:
    """Microbatched pipelined forward/backward for an :class:`Aeris`.

    Parameters
    ----------
    model:
        The full model (stage views are taken of its submodules; parameters
        are shared, not copied).
    cluster / pp_group:
        Optional metering: activation handoffs are charged as p2p bytes
        between consecutive ``pp_group`` ranks.
    """

    def __init__(self, model: Aeris, cluster: SimCluster | None = None,
                 pp_group: list[int] | None = None):
        self.model = model
        self.cluster = cluster
        self.pp_group = pp_group
        self.n_stages = model.config.swin_layers + 2

    def _meter(self, stage: int, nbytes: int) -> None:
        if self.cluster is None or self.pp_group is None:
            return
        src = self.pp_group[stage]
        dst = self.pp_group[stage + 1]
        self.cluster.stats.add("p2p", "intra" if self.cluster.node_of(src)
                               == self.cluster.node_of(dst) else "inter",
                               nbytes)

    def forward_backward(self, x_t: np.ndarray, t: np.ndarray,
                         cond: np.ndarray, forc: np.ndarray,
                         loss_fn, n_micro: int) -> float:
        """Run ``n_micro`` microbatches; returns the *sum* of loss values.

        ``loss_fn(pred: Tensor, micro_slice: slice) -> Tensor`` must already
        scale by ``1 / n_micro`` if averaged gradients are desired — the
        summed return value then equals the full-batch mean loss.
        Parameter gradients accumulate across microbatches.
        """
        batch = x_t.shape[0]
        if batch % n_micro:
            raise ValueError(f"batch {batch} not divisible into {n_micro} "
                             "microbatches")
        mb = batch // n_micro
        total_loss = 0.0
        for m in range(n_micro):
            sl = slice(m * mb, (m + 1) * mb)
            total_loss += self._one_microbatch(
                x_t[sl], t[sl], cond[sl], forc[sl],
                lambda pred: loss_fn(pred, sl))
        return total_loss

    # -- single microbatch -------------------------------------------------
    def _one_microbatch(self, x_t, t, cond, forc, loss_fn) -> float:
        model = self.model
        # Stage 0: I/O + embedding (+ the shared time embedding, which is
        # broadcast to every interior stage).
        embed_out = model.embed_stage(Tensor(x_t), Tensor(cond), Tensor(forc))
        t_emb = model.time_embed(Tensor(t))
        act = embed_out

        boundary_inputs: list[Tensor] = []
        boundary_tembs: list[Tensor] = []
        stage_outputs: list[Tensor] = []
        for s, layer in enumerate(model.layers):
            inp = Tensor(act.numpy().copy(), requires_grad=True)
            temb_in = Tensor(t_emb.numpy().copy(), requires_grad=True)
            self._meter(s, inp.data.nbytes + temb_in.data.nbytes)
            out = layer(inp, temb_in)
            boundary_inputs.append(inp)
            boundary_tembs.append(temb_in)
            stage_outputs.append(out)
            act = out
        # Last stage: decode + loss.
        dec_in = Tensor(act.numpy().copy(), requires_grad=True)
        self._meter(self.n_stages - 2, dec_in.data.nbytes)
        pred = model.decode_stage(dec_in)
        loss = loss_fn(pred)
        loss.backward()

        # Backward through interior stages, routing boundary gradients.
        grad = dec_in.grad
        for s in range(len(model.layers) - 1, -1, -1):
            self._meter(s, grad.nbytes)
            stage_outputs[s].backward(grad)
            grad = boundary_inputs[s].grad
        # Time-embedding gradients arrive from every interior stage.
        temb_grad = np.zeros_like(t_emb.numpy())
        for temb_in in boundary_tembs:
            if temb_in.grad is not None:
                temb_grad += temb_in.grad
        t_emb.backward(temb_grad)
        # Embedding-stage backward: the stage-0 graph was kept alive via
        # `embed_out`; `grad` now holds dL/d(embedding output).
        embed_out.backward(grad)
        return loss.item()
