"""SWiPe: the composed hybrid parallel training engine
(DP × PP × WP × SP, paper Section V-A).

What runs *numerically* in the simulation:

* **PP** — real pipelined forward/backward with activation/gradient handoff
  at stage boundaries and gradient accumulation over GAS microbatches
  (:class:`~repro.parallel.pipeline.AerisPipeline`).
* **DP** — real replicated models, split batches, metered FP32 gradient
  allreduce (:mod:`~repro.parallel.data_parallel`).
* **ZeRO-1** — real sharded optimizer states + allgather accounting
  (:mod:`~repro.parallel.zero`).
* **WP / SP** — the window/sequence sharded *attention numerics* are
  verified in their own modules
  (:mod:`~repro.parallel.window_parallel`,
  :mod:`~repro.parallel.sequence_parallel`); inside the engine their
  communication volumes follow the paper's analytical message size
  ``M = b·s·h/SP/WP``, which those modules' meters validate.

The engine's gradient/weight trajectory is verified in tests to match the
single-process reference trainer bit-for-bit (up to FP32 reduction
associativity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import TrigFlow, weighted_velocity_loss
from ..model import Aeris, AerisConfig
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from ..tensor import Tensor
from .comm import SimCluster
from .data_parallel import allreduce_gradients
from .pipeline import AerisPipeline
from .topology import RankTopology
from .zero import ZeroOptimizer

__all__ = ["SwipeEngine"]


@dataclass(frozen=True)
class _Shapes:
    """Per-step communication bookkeeping inputs."""

    micro_batch: int
    seq_len: int
    hidden: int


class SwipeEngine:
    """Distributed training engine on a simulated cluster."""

    def __init__(self, config: AerisConfig, archive: SyntheticReanalysis,
                 topology: RankTopology, lr: float = 5e-4, seed: int = 0,
                 flow: TrigFlow = TrigFlow(), injector=None, retry=None):
        if config.channels != len(TOY_SET):
            raise ValueError("model channels must match the archive")
        self.config = config
        self.archive = archive
        self.topology = topology
        self.flow = flow
        self.injector = injector
        self.cluster = SimCluster(topology.world_size,
                                  ranks_per_node=topology.sp,
                                  injector=injector, retry=retry)
        # DP replicas start from identical weights (same seed).
        self.replicas = [Aeris(config, seed=seed) for _ in range(topology.dp)]
        self.pipelines = [
            AerisPipeline(replica, self.cluster,
                          pp_group=[topology.rank_of(d, p, 0, 0)
                                    for p in range(topology.pp)],
                          name=f"dp{d}")
            for d, replica in enumerate(self.replicas)
        ]
        self.dp_group = topology.dp_group(pp=0, wp=0, sp=0)
        self.zero = ZeroOptimizer(self.replicas[0].parameters(), self.cluster,
                                  self.dp_group, lr=lr)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        # Noise seeding per the paper: the diffusion-time generator is shared
        # by all model-parallel ranks of a DP replica (one generator per
        # replica); the Gaussian noise is independent everywhere.
        self.rngs_t = [np.random.default_rng(seed + 100 + d)
                       for d in range(topology.dp)]
        self.rngs_z = [np.random.default_rng(seed + 900 + d)
                       for d in range(topology.dp)]

    # -- data preparation -------------------------------------------------------
    def make_training_pairs(self, residual: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """TrigFlow pairs for a *global* batch, honoring the seeding rule.

        The global batch is split evenly across DP replicas; within one
        replica every model-parallel shard would see the same ``t`` (shared
        generator) while noise fields stay independent.
        """
        dp = self.topology.dp
        per = residual.shape[0] // dp
        x_t = np.empty_like(residual)
        t = np.empty(residual.shape[0], dtype=np.float32)
        v = np.empty_like(residual)
        for d in range(dp):
            sl = slice(d * per, (d + 1) * per)
            x_t[sl], t[sl], v[sl] = self.flow.training_pair(
                residual[sl], self.rngs_t[d], self.rngs_z[d])
        return x_t, t, v

    # -- one optimization step --------------------------------------------------
    def train_step(self, x_t: np.ndarray, t: np.ndarray, v_target: np.ndarray,
                   cond: np.ndarray, forc: np.ndarray, gas: int) -> float:
        """Full SWiPe step over a global batch. Returns the mean loss."""
        topo = self.topology
        dp = topo.dp
        batch = x_t.shape[0]
        if batch % dp:
            raise ValueError(f"global batch {batch} not divisible by DP={dp}")
        per = batch // dp
        losses = []
        with _span("swipe.step", category="swipe", dp=dp, gas=gas,
                   batch=batch):
            for replica in self.replicas:
                replica.zero_grad()
            for d, pipeline in enumerate(self.pipelines):
                sl = slice(d * per, (d + 1) * per)
                target = v_target[sl]

                def loss_fn(pred: Tensor, micro_slice: slice) -> Tensor:
                    mb_target = target[micro_slice]
                    return weighted_velocity_loss(
                        pred * self.flow.sigma_d, mb_target, self.lat_weights,
                        self.var_weights) * (1.0 / gas)

                with _span("swipe.pipeline_fb", category="swipe", dp_rank=d):
                    losses.append(pipeline.forward_backward(
                        x_t[sl] / self.flow.sigma_d, t[sl], cond[sl],
                        forc[sl], loss_fn, n_micro=gas))
            # DP gradient allreduce (FP32), then sharded optimizer update.
            with _span("swipe.grad_allreduce", category="swipe"):
                allreduce_gradients(self.cluster, self.dp_group,
                                    self.replicas)
            with _span("swipe.zero_step", category="swipe"):
                self.zero.step()
            # ZeRO's allgather distributes updated weights; mirror to
            # replicas.
            with _span("swipe.sync_replicas", category="swipe"):
                master = self.replicas[0].state_dict()
                for replica in self.replicas[1:]:
                    replica.load_state_dict(master)
        mean_loss = float(np.mean(losses))
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("swipe.steps", "SWiPe optimization steps").inc()
            registry.counter("swipe.samples",
                             "global-batch samples consumed").inc(batch)
            registry.gauge("swipe.loss", "last SWiPe step loss").set(
                mean_loss)
        return mean_loss

    # -- elastic checkpoint payload ---------------------------------------------
    def state_payload(self) -> tuple[dict[str, dict[str, np.ndarray]], dict]:
        """``(shards, extra)`` for :func:`write_sharded_checkpoint`.

        Optimizer moments are stored flat in *parameter order* (see
        :meth:`ZeroOptimizer.state_lists`) so the checkpoint restores into
        an engine with a different DP degree after an elastic re-grid.
        """
        model = dict(self.replicas[0].state_dict())
        exp_avg, exp_avg_sq = self.zero.state_lists()
        opt: dict[str, np.ndarray] = {
            "step_count": np.asarray(self.zero.step_count)}
        for i, (m, v) in enumerate(zip(exp_avg, exp_avg_sq)):
            opt[f"m/{i}"] = m
            opt[f"v/{i}"] = v
        extra = {
            "topology": {"dp": self.topology.dp, "pp": self.topology.pp,
                         "wp_grid": list(self.topology.wp_grid),
                         "sp": self.topology.sp},
            "rng_t": [rng.bit_generator.state for rng in self.rngs_t],
            "rng_z": [rng.bit_generator.state for rng in self.rngs_z],
        }
        return {"model": model, "opt": opt}, extra

    def restore(self, shards: dict[str, dict[str, np.ndarray]],
                extra: dict | None = None) -> None:
        """Load a :meth:`state_payload` checkpoint into this engine.

        Works across topologies: all replicas get the model weights, the
        flat optimizer moments re-shard under the current DP degree, and
        rng states are restored for the replicas that still exist (a
        degraded grid keeps the surviving replicas' streams bit-exact)."""
        model_state = shards["model"]
        for replica in self.replicas:
            replica.load_state_dict(model_state)
        opt = shards["opt"]
        n = len(self.zero.params)
        exp_avg = [opt[f"m/{i}"] for i in range(n)]
        exp_avg_sq = [opt[f"v/{i}"] for i in range(n)]
        self.zero.load_state_lists(exp_avg, exp_avg_sq,
                                   int(opt["step_count"]))
        if extra:
            for d, rng in enumerate(self.rngs_t):
                if d < len(extra.get("rng_t", [])):
                    rng.bit_generator.state = extra["rng_t"][d]
            for d, rng in enumerate(self.rngs_z):
                if d < len(extra.get("rng_z", [])):
                    rng.bit_generator.state = extra["rng_z"][d]

    # -- analytical per-layer WP/SP communication (paper formula) -------------
    def attention_alltoall_bytes(self, micro_batch: int) -> int:
        """Per-rank all-to-all payload for one attention: the paper's
        ``M = b·s·h / SP / WP`` (FP32 activations in this simulation),
        moved once before (q, k, v) and once after (output)."""
        cfg = self.config
        topo = self.topology
        m = (micro_batch * cfg.seq_len * cfg.dim * 4  # bytes, fp32
             // topo.sp // topo.wp)
        return 4 * m  # 3M in (qkv) + M out
