"""ZeRO-1-style sharded optimizer (paper Section VI-C: "a Zero1-like
distributed optimizer ... custom-built").

Optimizer *states* (Adam moments) are partitioned across the data-parallel
group: each DP rank keeps moments only for its parameter shard, updates that
shard after the gradient allreduce, and an allgather distributes the updated
parameters to everyone.  Model parameters and gradients stay replicated —
that is what distinguishes ZeRO-1 from ZeRO-2/3.
"""

from __future__ import annotations

from ..nn import AdamW, Parameter
from .comm import SimCluster

__all__ = ["ZeroOptimizer"]


class ZeroOptimizer:
    """AdamW with optimizer states sharded over ``dp_group``.

    Parameters are assigned round-robin by index, which balances shard sizes
    well for the many-equal-blocks structure of a transformer.
    """

    def __init__(self, params: list[Parameter], cluster: SimCluster,
                 dp_group: list[int], lr: float = 5e-4,
                 betas: tuple[float, float] = (0.85, 0.9), eps: float = 1e-8,
                 weight_decay: float = 0.01):
        self.params = list(params)
        self.cluster = cluster
        self.dp_group = dp_group
        self.dp = len(dp_group)
        self.shard_of = [i % self.dp for i in range(len(self.params))]
        # One AdamW per shard, holding states only for its own parameters.
        self.shard_optimizers = []
        for shard in range(self.dp):
            shard_params = [p for i, p in enumerate(self.params)
                            if self.shard_of[i] == shard]
            self.shard_optimizers.append(
                AdamW(shard_params, lr=lr, betas=betas, eps=eps,
                      weight_decay=weight_decay))

    @property
    def lr(self) -> float:
        return self.shard_optimizers[0].lr

    @lr.setter
    def lr(self, value: float) -> None:
        for opt in self.shard_optimizers:
            opt.lr = value

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Each DP rank updates its shard, then parameters are allgathered.

        (Gradients are assumed already averaged across DP — see
        :mod:`repro.parallel.data_parallel`.)
        """
        for opt in self.shard_optimizers:
            opt.step()
        # Allgather the updated parameter shards (fault-aware: a dead or
        # faulty DP rank surfaces here too).
        if self.dp > 1:
            for i, p in enumerate(self.params):
                owner = self.dp_group[self.shard_of[i]]
                for rank in self.dp_group:
                    if rank != owner:
                        self.cluster.transfer("allgather", owner, rank,
                                              p.data.nbytes, payload=p.data)

    # -- checkpoint access (elastic recovery re-shards on load) ---------------
    @property
    def step_count(self) -> int:
        return self.shard_optimizers[0].step_count

    @step_count.setter
    def step_count(self, value: int) -> None:
        for opt in self.shard_optimizers:
            opt.step_count = int(value)

    def state_lists(self) -> tuple[list, list]:
        """Adam moments in *parameter order* (flat, shard-independent), so
        a checkpoint written under one DP degree restores under another —
        the elastic re-grid changes the sharding, not the state."""
        positions = [0] * self.dp
        exp_avg, exp_avg_sq = [], []
        for i in range(len(self.params)):
            shard = self.shard_of[i]
            k = positions[shard]
            positions[shard] += 1
            exp_avg.append(self.shard_optimizers[shard].exp_avg[k])
            exp_avg_sq.append(self.shard_optimizers[shard].exp_avg_sq[k])
        return exp_avg, exp_avg_sq

    def load_state_lists(self, exp_avg: list, exp_avg_sq: list,
                         step_count: int) -> None:
        """Restore flat parameter-ordered moments (in place) + step count."""
        own_m, own_v = self.state_lists()
        if len(exp_avg) != len(own_m) or len(exp_avg_sq) != len(own_v):
            raise ValueError("optimizer state count mismatch")
        for dst, src in zip(own_m, exp_avg):
            dst[...] = src
        for dst, src in zip(own_v, exp_avg_sq):
            dst[...] = src
        self.step_count = step_count

    # -- accounting ------------------------------------------------------------
    def state_bytes_on(self, shard: int) -> int:
        return self.shard_optimizers[shard].state_bytes()

    def max_state_bytes(self) -> int:
        return max(self.state_bytes_on(s) for s in range(self.dp))

    def replicated_state_bytes(self) -> int:
        """What a non-sharded optimizer would hold on every rank."""
        return sum(2 * p.data.nbytes for p in self.params)
