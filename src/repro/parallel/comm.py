"""A deterministic simulated cluster with metered collectives.

Real SWiPe runs on oneCCL/RCCL over Aurora's X^e-links and Slingshot; the
reproduction executes the *same data movements* between per-rank NumPy
buffers inside one process, and meters every byte, classified by

* primitive (``alltoall`` / ``p2p`` / ``allreduce`` / ``allgather`` /
  ``reduce_scatter`` / ``broadcast``), and
* locality (intra-node vs inter-node), given a rank→node mapping.

These counters are what the communication-model tests compare against the
paper's analytical message sizes (``M = b·s·h / SP / WP``), and what the
ablation bench reports.

When :mod:`repro.obs` is enabled, every ``CommStats.add`` also increments
the global metrics registry (``comm.bytes`` / ``comm.ops`` counters,
labeled by primitive and locality) and every collective runs inside a
tracer span — so the cluster's byte accounting and the observability
layer meter the *same* events and :class:`repro.obs.TraceReport` can
cross-check them exactly.

**Self-healing** (:mod:`repro.resilience`): when the cluster is built
with a :class:`~repro.resilience.FaultInjector`, every logical transfer
is routed through :meth:`SimCluster.transfer`, which

* raises :class:`~repro.resilience.RankFailure` if a participant is dead
  (fail-stop faults are permanent — the supervisor must re-grid);
* verifies a per-message CRC32 on delivery and re-sends on mismatch or
  drop, with exponential backoff from a
  :class:`~repro.resilience.RetryPolicy` (transient faults heal
  bit-exactly: the payload is redelivered unmodified or an exception is
  raised — numerics are never silently perturbed);
* books every retry attempt's bytes in :class:`CommStats` (retries cost
  real fabric traffic) and the retry/detection/straggler telemetry in the
  metrics registry (``comm.retries``, ``comm.faults_detected``,
  ``comm.straggler_s``, ``comm.backoff_s``) plus ``resilience``-category
  trace spans.

Without an injector the fault path is never entered and the byte
accounting is exactly the seed behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience.checksum import payload_checksum
from ..resilience.faults import CommTimeout, MessageCorruption
from ..resilience.retry import RetryPolicy

__all__ = ["CommStats", "SimCluster"]


@dataclass
class CommStats:
    """Byte/operation counters, keyed by (primitive, locality)."""

    bytes: dict = field(default_factory=lambda: defaultdict(int))
    ops: dict = field(default_factory=lambda: defaultdict(int))

    def add(self, primitive: str, locality: str, nbytes: int) -> None:
        self.bytes[(primitive, locality)] += int(nbytes)
        self.ops[(primitive, locality)] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("comm.bytes",
                             "bytes moved by simulated collectives").inc(
                int(nbytes), primitive=primitive, locality=locality)
            registry.counter("comm.ops",
                             "simulated collective operations").inc(
                1, primitive=primitive, locality=locality)

    def total_bytes(self, primitive: str | None = None,
                    locality: str | None = None) -> int:
        return sum(v for (p, l), v in self.bytes.items()
                   if (primitive is None or p == primitive)
                   and (locality is None or l == locality))

    def merge(self, other: "CommStats") -> "CommStats":
        """Accumulate ``other``'s counters into this one (in place) —
        aggregating per-cluster meters, mirroring
        :meth:`repro.obs.MetricsRegistry.merge`."""
        for key, v in other.bytes.items():
            self.bytes[key] += v
        for key, v in other.ops.items():
            self.ops[key] += v
        return self

    def as_table(self) -> str:
        """Plain-text table: one row per (primitive, locality) plus a
        total row."""
        rows = [("primitive", "locality", "ops", "bytes")]
        for (primitive, locality) in sorted(self.bytes):
            rows.append((primitive, locality,
                         str(self.ops[(primitive, locality)]),
                         f"{self.bytes[(primitive, locality)]:,}"))
        rows.append(("total", "-", str(sum(self.ops.values())),
                     f"{self.total_bytes():,}"))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
                 for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def reset(self) -> None:
        self.bytes.clear()
        self.ops.clear()


class SimCluster:
    """``n_ranks`` simulated ranks, ``ranks_per_node`` per node.

    All collectives take/return *lists indexed by position in the group* and
    an explicit ``group`` of global rank ids (so locality can be judged).
    """

    def __init__(self, n_ranks: int, ranks_per_node: int = 1,
                 injector=None, retry: RetryPolicy | None = None):
        if n_ranks % ranks_per_node:
            raise ValueError("n_ranks must be a multiple of ranks_per_node")
        self.n_ranks = n_ranks
        self.ranks_per_node = ranks_per_node
        self.stats = CommStats()
        self.injector = injector
        self.retry = retry if retry is not None else RetryPolicy()
        # Backoff-jitter stream (only drawn when the policy enables
        # jitter) — separate from the injector's rng so enabling jitter
        # cannot perturb the fault plan itself.
        self._retry_rng = np.random.default_rng(0x6A77)

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def _locality(self, a: int, b: int) -> str:
        return "intra" if self.node_of(a) == self.node_of(b) else "inter"

    # -- fault-aware metered transfer ----------------------------------------
    def transfer(self, primitive: str, src: int, dst: int, nbytes: int,
                 payload: np.ndarray | None = None) -> None:
        """Meter one logical ``src → dst`` movement of ``nbytes``.

        With no injector this is exactly ``stats.add``.  With one, the
        transfer is checked against the fault plan: dead participants
        raise :class:`~repro.resilience.RankFailure`; dropped or
        checksum-failing deliveries are re-sent (each attempt books its
        bytes — retries cost fabric traffic) until clean or the
        :class:`~repro.resilience.RetryPolicy` is exhausted, which raises
        :class:`~repro.resilience.CommTimeout` /
        :class:`~repro.resilience.MessageCorruption`.  A healed transfer
        is bit-exact: the caller's payload is never modified.
        """
        locality = self._locality(src, dst)
        inj = self.injector
        if inj is None:
            self.stats.add(primitive, locality, nbytes)
            return
        inj.raise_if_dead((src, dst), primitive)
        expected = payload_checksum(payload) if payload is not None else None
        budget = self.retry.budget()
        attempt = 0
        while True:
            self.stats.add(primitive, locality, nbytes)
            fault, delay_s = inj.transfer_fault(primitive, src, dst, attempt)
            if delay_s:
                self._record_straggler(primitive, src, dst, delay_s)
            if fault == "flip" and expected is not None \
                    and payload_checksum(inj.corrupt(payload)) == expected:
                fault = None  # flip not detectable => delivery counts clean
            if fault is None:
                return
            self._record_detected(primitive, src, dst, fault)
            attempt += 1
            backoff_s = self.retry.backoff_s(attempt, rng=self._retry_rng) \
                if attempt <= self.retry.max_retries else 0.0
            over_budget = attempt <= self.retry.max_retries \
                and not budget.charge(seconds=backoff_s, nbytes=nbytes)
            if attempt > self.retry.max_retries or over_budget:
                why = ("retry budget exhausted "
                       f"(spent {budget.spent_s:.3f}s / "
                       f"{budget.spent_bytes} retried bytes)"
                       if over_budget else
                       f"still failing after {self.retry.max_retries} retries")
                detail = f"{primitive} {src}->{dst} {why}"
                if over_budget:
                    registry = _obs_metrics()
                    if registry is not None:
                        registry.counter(
                            "comm.budget_exhaustions",
                            "transfers escalated on retry-budget spend").inc(
                            1, primitive=primitive)
                _record_event("comm.escalation", subsystem="comm",
                              severity="critical", primitive=primitive,
                              src=src, dst=dst, fault=fault,
                              retries=attempt - 1, reason=why)
                raise (CommTimeout(detail) if fault == "drop"
                       else MessageCorruption(detail))
            self._record_retry(primitive, attempt, backoff_s)

    def _record_straggler(self, primitive: str, src: int, dst: int,
                          delay_s: float) -> None:
        registry = _obs_metrics()
        if registry is not None:
            registry.histogram("comm.straggler_s",
                               "simulated late-delivery delays").observe(
                delay_s, primitive=primitive)
        _record_event("comm.straggler", subsystem="comm",
                      severity="warning", primitive=primitive, src=src,
                      dst=dst, delay_s=delay_s)
        with _span("resilience.straggler", category="resilience",
                   primitive=primitive, src=src, dst=dst, delay_s=delay_s):
            pass

    def _record_detected(self, primitive: str, src: int, dst: int,
                         kind: str) -> None:
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("comm.faults_detected",
                             "transient faults caught at delivery").inc(
                1, primitive=primitive, kind=kind)
        _record_event("comm.fault_detected", subsystem="comm",
                      severity="warning", primitive=primitive, src=src,
                      dst=dst, fault=kind)
        with _span("resilience.fault", category="resilience", kind=kind,
                   primitive=primitive, src=src, dst=dst):
            pass

    def _record_retry(self, primitive: str, attempt: int,
                      backoff_s: float | None = None) -> None:
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("comm.retries",
                             "message re-sends after transient faults").inc(
                1, primitive=primitive)
            if backoff_s is None:
                backoff_s = self.retry.backoff_s(attempt)
            registry.histogram("comm.backoff_s",
                               "simulated exponential-backoff waits").observe(
                backoff_s, primitive=primitive)

    def _check_group(self, group: list[int], primitive: str) -> None:
        if self.injector is not None:
            self.injector.raise_if_dead(group, primitive)

    # -- point to point -------------------------------------------------------
    def send(self, src: int, dst: int, array: np.ndarray) -> np.ndarray:
        """P2P transfer (PP activations / window-shift fragments)."""
        if src != dst:
            with _span("comm.p2p", category="comm", src=src, dst=dst,
                       nbytes=array.nbytes):
                self.transfer("p2p", src, dst, array.nbytes, payload=array)
        return array.copy()

    # -- collectives ------------------------------------------------------------
    def alltoall(self, group: list[int], chunks: list[list[np.ndarray]]
                 ) -> list[list[np.ndarray]]:
        """``chunks[i][j]`` = payload rank ``group[i]`` sends to ``group[j]``.

        Returns ``out[j][i]`` = what rank ``group[j]`` received from ``i``.
        """
        n = len(group)
        if len(chunks) != n or any(len(row) != n for row in chunks):
            raise ValueError("chunks must be an n x n matrix of arrays")
        self._check_group(group, "alltoall")
        with _span("comm.alltoall", category="comm", group=n):
            for i in range(n):
                for j in range(n):
                    if i != j:
                        self.transfer("alltoall", group[i], group[j],
                                      chunks[i][j].nbytes,
                                      payload=chunks[i][j])
        return [[chunks[i][j].copy() for i in range(n)] for j in range(n)]

    def allreduce(self, group: list[int], arrays: list[np.ndarray]
                  ) -> list[np.ndarray]:
        """Sum-allreduce. Ring cost: each rank moves 2(n−1)/n of the data.

        Bytes are attributed *per ring hop* — link ``group[i] →
        group[(i+1) % n]`` carries ``2(n−1)/n`` of the payload — so a group
        spanning nodes meters its intra- and inter-node traffic separately
        instead of booking the whole ring at one locality.
        """
        n = len(group)
        if len(arrays) != n:
            raise ValueError("one array per group rank required")
        self._check_group(group, "allreduce")
        total = arrays[0].astype(np.float64)
        for a in arrays[1:]:
            total = total + a
        result = total.astype(arrays[0].dtype)
        nbytes = arrays[0].nbytes
        if n > 1:
            per_hop = int(2 * (n - 1) / n * nbytes)
            with _span("comm.allreduce", category="comm", group=n,
                       nbytes=per_hop * n):
                for i in range(n):
                    self.transfer("allreduce", group[i], group[(i + 1) % n],
                                  per_hop, payload=result)
        return [result.copy() for _ in range(n)]

    def allgather(self, group: list[int], arrays: list[np.ndarray]
                  ) -> list[list[np.ndarray]]:
        n = len(group)
        self._check_group(group, "allgather")
        with _span("comm.allgather", category="comm", group=n):
            for i in range(n):
                for j in range(n):
                    if i != j:
                        self.transfer("allgather", group[i], group[j],
                                      arrays[i].nbytes, payload=arrays[i])
        return [[a.copy() for a in arrays] for _ in range(n)]

    def reduce_scatter(self, group: list[int], chunks: list[list[np.ndarray]]
                       ) -> list[np.ndarray]:
        """``chunks[i][j]``: rank i's contribution to shard j; rank j gets
        the sum over i."""
        n = len(group)
        self._check_group(group, "reduce_scatter")
        out = []
        with _span("comm.reduce_scatter", category="comm", group=n):
            for j in range(n):
                total = chunks[0][j].astype(np.float64)
                for i in range(1, n):
                    total = total + chunks[i][j]
                out.append(total.astype(chunks[0][j].dtype))
                for i in range(n):
                    if i != j:
                        self.transfer("reduce_scatter", group[i], group[j],
                                      chunks[i][j].nbytes,
                                      payload=chunks[i][j])
        return out

    def broadcast(self, group: list[int], root_index: int,
                  array: np.ndarray) -> list[np.ndarray]:
        self._check_group(group, "broadcast")
        with _span("comm.broadcast", category="comm", group=len(group),
                   nbytes=array.nbytes * (len(group) - 1)):
            for j, rank in enumerate(group):
                if j != root_index:
                    self.transfer("broadcast", group[root_index], rank,
                                  array.nbytes, payload=array)
        return [array.copy() for _ in group]
