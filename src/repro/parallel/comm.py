"""A deterministic simulated cluster with metered collectives.

Real SWiPe runs on oneCCL/RCCL over Aurora's X^e-links and Slingshot; the
reproduction executes the *same data movements* between per-rank NumPy
buffers inside one process, and meters every byte, classified by

* primitive (``alltoall`` / ``p2p`` / ``allreduce`` / ``allgather`` /
  ``reduce_scatter`` / ``broadcast``), and
* locality (intra-node vs inter-node), given a rank→node mapping.

These counters are what the communication-model tests compare against the
paper's analytical message sizes (``M = b·s·h / SP / WP``), and what the
ablation bench reports.

When :mod:`repro.obs` is enabled, every ``CommStats.add`` also increments
the global metrics registry (``comm.bytes`` / ``comm.ops`` counters,
labeled by primitive and locality) and every collective runs inside a
tracer span — so the cluster's byte accounting and the observability
layer meter the *same* events and :class:`repro.obs.TraceReport` can
cross-check them exactly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span

__all__ = ["CommStats", "SimCluster"]


@dataclass
class CommStats:
    """Byte/operation counters, keyed by (primitive, locality)."""

    bytes: dict = field(default_factory=lambda: defaultdict(int))
    ops: dict = field(default_factory=lambda: defaultdict(int))

    def add(self, primitive: str, locality: str, nbytes: int) -> None:
        self.bytes[(primitive, locality)] += int(nbytes)
        self.ops[(primitive, locality)] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("comm.bytes",
                             "bytes moved by simulated collectives").inc(
                int(nbytes), primitive=primitive, locality=locality)
            registry.counter("comm.ops",
                             "simulated collective operations").inc(
                1, primitive=primitive, locality=locality)

    def total_bytes(self, primitive: str | None = None,
                    locality: str | None = None) -> int:
        return sum(v for (p, l), v in self.bytes.items()
                   if (primitive is None or p == primitive)
                   and (locality is None or l == locality))

    def merge(self, other: "CommStats") -> "CommStats":
        """Accumulate ``other``'s counters into this one (in place) —
        aggregating per-cluster meters, mirroring
        :meth:`repro.obs.MetricsRegistry.merge`."""
        for key, v in other.bytes.items():
            self.bytes[key] += v
        for key, v in other.ops.items():
            self.ops[key] += v
        return self

    def as_table(self) -> str:
        """Plain-text table: one row per (primitive, locality) plus a
        total row."""
        rows = [("primitive", "locality", "ops", "bytes")]
        for (primitive, locality) in sorted(self.bytes):
            rows.append((primitive, locality,
                         str(self.ops[(primitive, locality)]),
                         f"{self.bytes[(primitive, locality)]:,}"))
        rows.append(("total", "-", str(sum(self.ops.values())),
                     f"{self.total_bytes():,}"))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
                 for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def reset(self) -> None:
        self.bytes.clear()
        self.ops.clear()


class SimCluster:
    """``n_ranks`` simulated ranks, ``ranks_per_node`` per node.

    All collectives take/return *lists indexed by position in the group* and
    an explicit ``group`` of global rank ids (so locality can be judged).
    """

    def __init__(self, n_ranks: int, ranks_per_node: int = 1):
        if n_ranks % ranks_per_node:
            raise ValueError("n_ranks must be a multiple of ranks_per_node")
        self.n_ranks = n_ranks
        self.ranks_per_node = ranks_per_node
        self.stats = CommStats()

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def _locality(self, a: int, b: int) -> str:
        return "intra" if self.node_of(a) == self.node_of(b) else "inter"

    # -- point to point -------------------------------------------------------
    def send(self, src: int, dst: int, array: np.ndarray) -> np.ndarray:
        """P2P transfer (PP activations / window-shift fragments)."""
        if src != dst:
            with _span("comm.p2p", category="comm", src=src, dst=dst,
                       nbytes=array.nbytes):
                self.stats.add("p2p", self._locality(src, dst), array.nbytes)
        return array.copy()

    # -- collectives ------------------------------------------------------------
    def alltoall(self, group: list[int], chunks: list[list[np.ndarray]]
                 ) -> list[list[np.ndarray]]:
        """``chunks[i][j]`` = payload rank ``group[i]`` sends to ``group[j]``.

        Returns ``out[j][i]`` = what rank ``group[j]`` received from ``i``.
        """
        n = len(group)
        if len(chunks) != n or any(len(row) != n for row in chunks):
            raise ValueError("chunks must be an n x n matrix of arrays")
        with _span("comm.alltoall", category="comm", group=n):
            for i in range(n):
                for j in range(n):
                    if i != j:
                        self.stats.add("alltoall",
                                       self._locality(group[i], group[j]),
                                       chunks[i][j].nbytes)
        return [[chunks[i][j].copy() for i in range(n)] for j in range(n)]

    def allreduce(self, group: list[int], arrays: list[np.ndarray]
                  ) -> list[np.ndarray]:
        """Sum-allreduce. Ring cost: each rank moves 2(n−1)/n of the data.

        Bytes are attributed *per ring hop* — link ``group[i] →
        group[(i+1) % n]`` carries ``2(n−1)/n`` of the payload — so a group
        spanning nodes meters its intra- and inter-node traffic separately
        instead of booking the whole ring at one locality.
        """
        n = len(group)
        if len(arrays) != n:
            raise ValueError("one array per group rank required")
        total = arrays[0].astype(np.float64)
        for a in arrays[1:]:
            total = total + a
        result = total.astype(arrays[0].dtype)
        nbytes = arrays[0].nbytes
        if n > 1:
            per_hop = int(2 * (n - 1) / n * nbytes)
            with _span("comm.allreduce", category="comm", group=n,
                       nbytes=per_hop * n):
                for i in range(n):
                    self.stats.add(
                        "allreduce",
                        self._locality(group[i], group[(i + 1) % n]),
                        per_hop)
        return [result.copy() for _ in range(n)]

    def allgather(self, group: list[int], arrays: list[np.ndarray]
                  ) -> list[list[np.ndarray]]:
        n = len(group)
        with _span("comm.allgather", category="comm", group=n):
            for i in range(n):
                for j in range(n):
                    if i != j:
                        self.stats.add("allgather",
                                       self._locality(group[i], group[j]),
                                       arrays[i].nbytes)
        return [[a.copy() for a in arrays] for _ in range(n)]

    def reduce_scatter(self, group: list[int], chunks: list[list[np.ndarray]]
                       ) -> list[np.ndarray]:
        """``chunks[i][j]``: rank i's contribution to shard j; rank j gets
        the sum over i."""
        n = len(group)
        out = []
        with _span("comm.reduce_scatter", category="comm", group=n):
            for j in range(n):
                total = chunks[0][j].astype(np.float64)
                for i in range(1, n):
                    total = total + chunks[i][j]
                out.append(total.astype(chunks[0][j].dtype))
                for i in range(n):
                    if i != j:
                        self.stats.add("reduce_scatter",
                                       self._locality(group[i], group[j]),
                                       chunks[i][j].nbytes)
        return out

    def broadcast(self, group: list[int], root_index: int,
                  array: np.ndarray) -> list[np.ndarray]:
        with _span("comm.broadcast", category="comm", group=len(group),
                   nbytes=array.nbytes * (len(group) - 1)):
            for j, rank in enumerate(group):
                if j != root_index:
                    self.stats.add("broadcast",
                                   self._locality(group[root_index], rank),
                                   array.nbytes)
        return [array.copy() for _ in group]
