"""Domain parallelism with halo exchange — the alternative the paper
rejects (Section IV-B):

    "Another approach is Domain Parallelism (e.g., PyTorch DTensor and
    NVIDIA PhysicsNeMo's ShardTensor) that shards inputs over devices
    across spatiotemporal dimensions and automatically issues the
    necessary halo exchanges. ... performance degrades for non-local
    operations ... Compared to input sharding with domain parallelism,
    which requires multiple re-sharding points for the Swin transformer,
    SWiPe avoids introducing additional communication or synchronization
    points."

This module implements that alternative faithfully enough to *measure* the
claim: the image is split into contiguous spatial tiles, and windowed
attention on a tile requires a halo of half a window from each neighbour
whenever the (shifted) window grid straddles the tile boundary.  Both the
functional result (must equal unsharded attention) and the metered exchange
volume are exposed, so the ablation bench can put WP's zero-halo property
side by side with domain parallelism's per-layer halo cost.
"""

from __future__ import annotations

import numpy as np

from ..model.windows import window_grid_shape
from .comm import SimCluster

__all__ = ["DomainSharding"]


class DomainSharding:
    """Contiguous spatial tiling of ``(B, H, W, D)`` over a rank grid.

    Tiles must align with the window grid so that unshifted windows never
    straddle tiles; the *shifted* pass then needs a halo of half a window
    from the south and east neighbours (cyclic), which is the exchange the
    paper says WP avoids.
    """

    def __init__(self, grid: tuple[int, int], window: tuple[int, int],
                 tile_grid: tuple[int, int]):
        self.grid = grid
        self.window = window
        self.tile_grid = tile_grid
        n_win_h, n_win_w = window_grid_shape(grid[0], grid[1], window)
        if n_win_h % tile_grid[0] or n_win_w % tile_grid[1]:
            raise ValueError("window grid must divide evenly into tiles")
        self.tile_h = grid[0] // tile_grid[0]
        self.tile_w = grid[1] // tile_grid[1]
        self.n_ranks = tile_grid[0] * tile_grid[1]

    def tile_slices(self, rank: int) -> tuple[slice, slice]:
        ti, tj = divmod(rank, self.tile_grid[1])
        return (slice(ti * self.tile_h, (ti + 1) * self.tile_h),
                slice(tj * self.tile_w, (tj + 1) * self.tile_w))

    def shard(self, image: np.ndarray) -> list[np.ndarray]:
        return [image[:, si, sj, :].copy()
                for si, sj in map(self.tile_slices, range(self.n_ranks))]

    def unshard(self, shards: list[np.ndarray]) -> np.ndarray:
        b = shards[0].shape[0]
        d = shards[0].shape[-1]
        out = np.empty((b, self.grid[0], self.grid[1], d),
                       dtype=shards[0].dtype)
        for rank, shard in enumerate(shards):
            si, sj = self.tile_slices(rank)
            out[:, si, sj, :] = shard
        return out

    # -- halo machinery -----------------------------------------------------
    def halo_bytes_per_exchange(self, batch: int, channels: int,
                                itemsize: int = 4) -> int:
        """Bytes each shifted layer moves: every rank receives a halo strip
        of ``window/2`` rows from the south neighbour and ``window/2``
        columns from the east neighbour (plus the corner)."""
        hh, hw = self.window[0] // 2, self.window[1] // 2
        south = hh * self.tile_w
        east = hw * self.tile_h
        corner = hh * hw
        per_rank = (south + east + corner) * batch * channels * itemsize
        return per_rank * self.n_ranks

    def apply_windowed(self, image: np.ndarray, window_fn,
                       shifted: bool = False,
                       cluster: SimCluster | None = None,
                       group: list[int] | None = None) -> np.ndarray:
        """Windowed operation under domain sharding.

        For the shifted pass each rank gathers halos from its (cyclic)
        south/east neighbours, processes the windows it owns in the shifted
        frame, and the results are re-assembled.  Functionally verified to
        equal unsharded shifted-window attention.
        """
        sh, sw = (self.window[0] // 2, self.window[1] // 2) if shifted \
            else (0, 0)
        work = np.roll(image, (-sh, -sw), axis=(1, 2)) if shifted else image
        if shifted and cluster is not None and group is not None:
            moved = self.halo_bytes_per_exchange(
                image.shape[0], image.shape[-1], image.dtype.itemsize)
            cluster.stats.add("p2p", "inter", moved)
        shards = self.shard(work)
        out_shards = []
        wh, ww = self.window
        for shard in shards:
            b, th, tw, d = shard.shape
            nh, nw = th // wh, tw // ww
            windows = shard.reshape(b, nh, wh, nw, ww, d) \
                .transpose(0, 1, 3, 2, 4, 5).reshape(b, nh * nw, wh * ww, d)
            processed = window_fn(windows)
            dd = processed.shape[-1]
            back = processed.reshape(b, nh, nw, wh, ww, dd) \
                .transpose(0, 1, 3, 2, 4, 5).reshape(b, th, tw, dd)
            out_shards.append(back)
        out = self.unshard(out_shards)
        if shifted:
            out = np.roll(out, (sh, sw), axis=(1, 2))
            if cluster is not None and group is not None:
                moved = self.halo_bytes_per_exchange(
                    image.shape[0], out.shape[-1], out.dtype.itemsize)
                cluster.stats.add("p2p", "inter", moved)
        return out

    def resharding_points_per_block(self, shifted: bool) -> int:
        """Synchronization points a DTensor-style implementation needs for
        one Swin block: gather-for-attention + scatter afterwards when the
        window layout does not match the shard layout (shifted pass), plus
        none for the aligned unshifted pass."""
        return 2 if shifted else 0
