"""SWiPe parallelism on a simulated, metered cluster."""

from .comm import CommStats, SimCluster
from .data_parallel import allreduce_gradients, replicate_model
from .domain_parallel import DomainSharding
from .pipeline import AerisPipeline
from .sequence_parallel import shard_sequence, ulysses_attention, unshard_sequence
from .swipe import SwipeEngine
from .swipe_attention import swipe_window_attention
from .topology import RankTopology
from .window_parallel import (
    WindowSharding,
    shift_owner_change_bytes,
    window_sharding,
)
from .zero import ZeroOptimizer

__all__ = [
    "SimCluster", "CommStats", "RankTopology",
    "shard_sequence", "unshard_sequence", "ulysses_attention",
    "WindowSharding", "window_sharding", "shift_owner_change_bytes",
    "DomainSharding",
    "AerisPipeline", "ZeroOptimizer",
    "allreduce_gradients", "replicate_model",
    "SwipeEngine", "swipe_window_attention",
]
