"""SWiPe parallelism on a simulated, metered cluster."""

from .comm import CommStats, SimCluster
from .data_parallel import allreduce_gradients, replicate_model
from .domain_parallel import DomainSharding
from .pipeline import AerisPipeline
from .sequence_parallel import shard_sequence, ulysses_attention, unshard_sequence
from .swipe import SwipeEngine
from .swipe_attention import swipe_window_attention
from .topology import RankTopology
from .window_parallel import (
    WindowSharding,
    shift_owner_change_bytes,
    window_sharding,
)
from .zero import ZeroOptimizer

#: Autotuner exports sit above :mod:`repro.perf` (which imports this
#: package's topology); lazy loading (PEP 562) keeps the layering acyclic.
_AUTOTUNE_EXPORTS = ("Candidate", "TunedPlan", "NoFeasibleLayout",
                     "enumerate_candidates", "plan_for", "calibrated_step_s",
                     "save_plan", "load_plan", "frontier_table",
                     "verify_plan", "resolve_plan")

__all__ = [
    "SimCluster", "CommStats", "RankTopology",
    "shard_sequence", "unshard_sequence", "ulysses_attention",
    "WindowSharding", "window_sharding", "shift_owner_change_bytes",
    "DomainSharding",
    "AerisPipeline", "ZeroOptimizer",
    "allreduce_gradients", "replicate_model",
    "SwipeEngine", "swipe_window_attention",
    *_AUTOTUNE_EXPORTS,
]


def __getattr__(name):
    if name in _AUTOTUNE_EXPORTS:
        from . import autotune
        return getattr(autotune, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
