"""Ulysses sequence parallelism (paper Section V-A).

Tokens of each window are flattened to a 1D sequence and sharded across the
SP ranks of a node.  Attention needs every token of a window, so before the
kernel an all-to-all re-partitions the data from *token-sharded, all heads*
to *all tokens, head-sharded*; a second all-to-all restores the token
sharding afterwards.  Both ride the intra-node fabric by construction.

Functions here operate on NumPy shards and an explicit
:class:`~repro.parallel.comm.SimCluster`, verifying (a) numerical
equivalence with unsharded attention and (b) the message-size formula
``M = b·s·h / SP / WP``.
"""

from __future__ import annotations

import numpy as np

from .comm import SimCluster

__all__ = ["shard_sequence", "unshard_sequence", "ulysses_attention"]


def shard_sequence(tokens: np.ndarray, sp: int, axis: int = -3) -> list[np.ndarray]:
    """Split the token axis (default: third-from-last of ``(..., T, H, hd)``)
    into ``sp`` contiguous shards."""
    if tokens.shape[axis] % sp:
        raise ValueError(f"token axis {tokens.shape[axis]} not divisible by SP={sp}")
    return [chunk.copy() for chunk in np.split(tokens, sp, axis=axis)]


def unshard_sequence(shards: list[np.ndarray], axis: int = -3) -> np.ndarray:
    return np.concatenate(shards, axis=axis)


def _softmax_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray
                       ) -> np.ndarray:
    """Reference kernel on ``(..., heads, T, hd)``."""
    scale = np.float32(1.0 / np.sqrt(q.shape[-1]))  # keep FP32 (NumPy-2 promotion)
    scores = np.einsum("...htd,...hsd->...hts", q, k) * scale
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return np.einsum("...hts,...hsd->...htd", scores, v)


def ulysses_attention(cluster: SimCluster, sp_group: list[int],
                      q_shards: list[np.ndarray], k_shards: list[np.ndarray],
                      v_shards: list[np.ndarray]) -> list[np.ndarray]:
    """Sequence-parallel attention over per-rank token shards.

    Each shard has shape ``(..., T/SP, H, hd)`` (token-sharded, all heads).
    Returns shards of the same shape containing the attention output.

    The two metered all-to-alls re-partition to ``(..., T, H/SP, hd)`` and
    back; heads must be divisible by SP.
    """
    sp = len(sp_group)
    heads = q_shards[0].shape[-2]
    if heads % sp:
        raise ValueError(f"heads {heads} not divisible by SP={sp}")

    def forward_a2a(shards: list[np.ndarray]) -> list[np.ndarray]:
        # chunks[i][j]: rank i's tokens for head-group j.
        chunks = [list(np.split(s, sp, axis=-2)) for s in shards]
        received = cluster.alltoall(sp_group, chunks)
        # Rank j: concat over source ranks along the token axis.
        return [np.concatenate(row, axis=-3) for row in received]

    def backward_a2a(shards: list[np.ndarray]) -> list[np.ndarray]:
        # chunks[j][i]: head-group j's tokens belonging to token-shard i.
        chunks = [list(np.split(s, sp, axis=-3)) for s in shards]
        received = cluster.alltoall(sp_group, chunks)
        return [np.concatenate(row, axis=-2) for row in received]

    q_full = forward_a2a(q_shards)   # per rank: all tokens, H/SP heads
    k_full = forward_a2a(k_shards)
    v_full = forward_a2a(v_shards)
    out_headsharded = []
    for q, k, v in zip(q_full, k_full, v_full):
        # kernel expects (..., heads, T, hd)
        qt = np.swapaxes(q, -2, -3)
        kt = np.swapaxes(k, -2, -3)
        vt = np.swapaxes(v, -2, -3)
        out = _softmax_attention(qt, kt, vt)
        out_headsharded.append(np.swapaxes(out, -2, -3))
    return backward_a2a(out_headsharded)
