"""Delta-debugging shrinker for failing scenarios.

Given a scenario whose run produced violations, :func:`shrink` searches
for a smaller scenario that *still* trips at least one of the same
invariants, using the classic ddmin algorithm over the fault-event list
plus domain-specific reduction passes:

* **events** — ddmin over the scheduled fault events;
* **rates** — zero the background fault rates (all at once, then one at
  a time);
* **horizon** — shorten the run (fewer train steps / serve requests);
* **load** — thin the serve workload to single-member forecasts;
* **deploy** — drop the canary-deployment phase entirely.

Passes repeat to a fixpoint under an evaluation budget.  A candidate is
accepted iff its violation set still intersects the original failing
invariant names — the shrunk repro fails *for the same reason*, not just
somehow.  Every accepted reduction is recorded so the CLI can narrate
the shrink trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .scenario import Scenario

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    """Outcome of one shrink search."""

    scenario: Scenario          #: the minimized scenario
    result: object              #: its RunResult (still failing)
    evals: int = 0              #: scenario executions spent
    steps: list = field(default_factory=list)  #: accepted reductions

    @property
    def n_events(self) -> int:
        return len(self.scenario.events)


class _Search:
    """Shared state: eval budget, memoized runs, current best."""

    def __init__(self, run_fn, failing_names, max_evals: int):
        self.run_fn = run_fn
        self.failing = frozenset(failing_names)
        self.max_evals = max_evals
        self.evals = 0
        self._seen: set[str] = set()

    def exhausted(self) -> bool:
        return self.evals >= self.max_evals

    def still_fails(self, scenario: Scenario):
        """Run ``scenario``; return its RunResult if it reproduces one of
        the original failing invariants, else None.  Duplicate candidates
        (already tried this search) are skipped without spending evals."""
        key = repr(sorted(scenario.to_dict().items(), key=repr))
        if key in self._seen or self.exhausted():
            return None
        self._seen.add(key)
        self.evals += 1
        result = self.run_fn(scenario)
        if result.violation_names() & self.failing:
            return result
        return None


def _chunks(items: list, n: int) -> list[list]:
    size = max(1, len(items) // n)
    out = [items[i:i + size] for i in range(0, len(items), size)]
    return out[:n - 1] + [sum(out[n - 1:], [])] if len(out) > n else out


def _ddmin_events(scenario: Scenario, search: _Search, accept) -> Scenario:
    """Classic ddmin over the scheduled event list."""
    events = list(scenario.events)
    n = 2
    while len(events) >= 2 and not search.exhausted():
        reduced = False
        chunks = _chunks(events, n)
        for i, chunk in enumerate(chunks):
            rest = [e for j, c in enumerate(chunks) if j != i for e in c]
            candidate = replace(scenario, events=tuple(rest))
            result = search.still_fails(candidate)
            if result is not None:
                accept(candidate, result,
                       f"drop {len(chunk)} event(s) -> {len(rest)} left")
                scenario, events = candidate, rest
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(events):
                break
            n = min(len(events), 2 * n)
    # 1-minimal polish: try dropping each surviving event individually.
    i = 0
    while i < len(events) and not search.exhausted():
        rest = events[:i] + events[i + 1:]
        candidate = replace(scenario, events=tuple(rest))
        result = search.still_fails(candidate)
        if result is not None:
            accept(candidate, result, "drop 1 event")
            scenario, events = candidate, rest
        else:
            i += 1
    return scenario


def _zero_rates(scenario: Scenario, search: _Search, accept) -> Scenario:
    rates = dict(scenario.rates)
    live = [k for k, v in rates.items() if v > 0]
    if not live:
        return scenario
    zeroed = tuple(sorted((k, 0.0) for k in rates))
    candidate = replace(scenario, rates=zeroed)
    result = search.still_fails(candidate)
    if result is not None:
        accept(candidate, result, "zero all background rates")
        return candidate
    for key in live:
        trial = dict(rates)
        trial[key] = 0.0
        candidate = replace(scenario,
                            rates=tuple(sorted(trial.items())))
        result = search.still_fails(candidate)
        if result is not None:
            accept(candidate, result, f"zero rate {key}")
            scenario, rates = candidate, trial
    return scenario


def _shorten_horizon(scenario: Scenario, search: _Search,
                     accept) -> Scenario:
    n = scenario.horizon
    for target in (1, n // 4, n // 2):
        if target < 1 or target >= scenario.horizon:
            continue
        candidate = scenario.with_horizon(target)
        result = search.still_fails(candidate)
        if result is not None:
            accept(candidate, result, f"horizon {n} -> {target}")
            return candidate
    return scenario


def _thin_load(scenario: Scenario, search: _Search, accept) -> Scenario:
    if scenario.serve is None or scenario.serve.n_members <= 1:
        return scenario
    candidate = replace(scenario,
                        serve=replace(scenario.serve, n_members=1))
    result = search.still_fails(candidate)
    if result is not None:
        accept(candidate, result, "thin load: single-member forecasts")
        return candidate
    return scenario


def _drop_deploy(scenario: Scenario, search: _Search, accept) -> Scenario:
    if scenario.workload != "serve_deploy":
        return scenario
    candidate = replace(scenario, workload="serve", deploy=None)
    result = search.still_fails(candidate)
    if result is not None:
        accept(candidate, result, "drop canary deployment")
        return candidate
    return scenario


_PASSES = (_drop_deploy, _ddmin_events, _zero_rates, _shorten_horizon,
           _thin_load)


def shrink(scenario: Scenario, failing_names, run_fn,
           max_evals: int = 80, initial_result=None) -> ShrinkResult:
    """Minimize ``scenario`` while preserving a failure.

    Parameters
    ----------
    scenario:
        The failing scenario to reduce.
    failing_names:
        Invariant names the original run violated; a candidate counts as
        failing iff its violations intersect this set.
    run_fn:
        ``Scenario -> RunResult`` (normally ``SimRunner.run``).
    max_evals:
        Hard cap on scenario executions across all passes.
    initial_result:
        The original RunResult, if already in hand (avoids one re-run).
    """
    search = _Search(run_fn, failing_names, max_evals)
    if initial_result is None:
        initial_result = run_fn(scenario)
        search.evals += 1
    if not (set(initial_result.violation_names()) & search.failing):
        raise ValueError("scenario does not fail the given invariants; "
                         "nothing to shrink")
    best = ShrinkResult(scenario=scenario, result=initial_result)

    def accept(candidate, result, note):
        best.scenario = candidate
        best.result = result
        best.steps.append(note)

    changed = True
    while changed and not search.exhausted():
        before = best.scenario
        for pass_fn in _PASSES:
            pass_fn(best.scenario, search, accept)
        changed = best.scenario is not before
    best.evals = search.evals
    return best
