"""Deterministic simulation testing for the whole stack.

One uint64 seed expands into a complete scenario — workload, cluster
shape, scheduled fault events, background fault rates, serve load,
checkpoint cadence, optionally a mid-run canary deployment — which runs
on the repo's virtual-clock loops and is judged against a registry of
cross-cutting invariants.  Failures shrink (delta debugging) to minimal
JSON repros that replay bit-exactly.

See ``tools/simtest_cli.py`` for the ``run | replay | shrink`` driver
and ``tests/simtest/`` for the committed repro corpus.
"""

from .invariants import Invariant, InvariantRegistry, Violation
from .runner import (RunResult, SimRunner, SimWorld, load_repro,
                     violations_fingerprint, write_repro)
from .scenario import (SCHEMA_VERSION, DeployParams, Scenario, ScenarioGen,
                       ServeParams, TrainParams)
from .shrink import ShrinkResult, shrink

__all__ = [
    "SCHEMA_VERSION", "Scenario", "ScenarioGen",
    "TrainParams", "ServeParams", "DeployParams",
    "Violation", "Invariant", "InvariantRegistry",
    "SimWorld", "SimRunner", "RunResult",
    "write_repro", "load_repro", "violations_fingerprint",
    "ShrinkResult", "shrink",
]
