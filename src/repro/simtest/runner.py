"""``SimRunner``: execute scenarios on the virtual-clock loops and judge
them against the invariant registry.

One runner owns the heavy shared state (synthetic archives, the serve
model pair, candidate models for deploy scenarios) and builds everything
scenario-specific fresh per run — service, supervisor, injector,
observability scope — so two runs of the same scenario are bit-identical
and runs cannot contaminate each other.

Workload execution:

* ``train`` — :class:`~repro.resilience.ElasticSupervisor` over a
  3-stage micro pipeline (DP=2) with checkpointing into a per-run
  temporary directory.  Transient-only scenarios also run a fault-free
  *twin* with identical seeds; the bit-exact-equivalence invariant
  compares the two loss histories.
* ``guarded_train`` — the SDC-guarded :class:`~repro.train.Trainer`
  under :func:`~repro.kernels.abft_guard`, with compute-fault injection.
* ``serve`` / ``serve_deploy`` — a :class:`~repro.serve.ForecastService`
  over a fault-aware :class:`~repro.parallel.SimCluster`, physical
  guardrails always attached, Poisson arrivals across tiers, and — for
  ``serve_deploy`` — a mid-run canary via
  :class:`~repro.serve.DeploymentController`.  The worker pool uses an
  analytic ``duration_fn`` (seconds per stacked forward) instead of
  measured wall time, so virtual completion order is machine-independent
  and replays are bit-exact.

Failed runs shrink via :func:`repro.simtest.shrink.shrink` and serialize
as JSON repro files (:func:`write_repro` / :func:`load_repro` /
:meth:`SimRunner.replay`) whose recorded violation set replay must
reproduce exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..data import ReanalysisConfig, SyntheticReanalysis
from ..model import Aeris, AerisConfig
from ..obs.profile import monitored
from ..parallel.comm import SimCluster
from ..parallel.topology import RankTopology
from ..resilience.faults import (ClusterFailure, CommTimeout,
                                 ComputeCorruption, FaultInjector,
                                 FaultPlan, MessageCorruption,
                                 ResilienceError)
from ..resilience.supervisor import ElasticSupervisor, SupervisorConfig
from ..serve.api import ForecastRequest, TIERS
from ..serve.guardrails import ForecastValidator
from ..serve.service import ForecastService, ServiceConfig
from ..train.trainer import Trainer, TrainerConfig
from .invariants import InvariantRegistry, Violation
from .scenario import Scenario, ScenarioGen, SCHEMA_VERSION

__all__ = ["SimWorld", "RunResult", "SimRunner", "write_repro",
           "load_repro", "violations_fingerprint"]

#: 3-stage micro pipeline for supervised chaos runs (mirrors the chaos
#: suite's smallest real-pipeline config).
MICRO = AerisConfig(name="simtest-micro", height=16, width=32, channels=9,
                    forcing_channels=3, dim=16, heads=2, ffn_dim=32,
                    swin_layers=1, blocks_per_layer=1, window=(4, 4),
                    time_freqs=8)

#: Analytic virtual service duration: seconds per stacked forward plus a
#: per-member assembly cost.  The values are arbitrary but fixed — what
#: matters is that they are a pure function of the batch result.
_SECONDS_PER_FORWARD = 0.004
_SECONDS_PER_MEMBER = 0.001


def _duration_model(result) -> float:
    return (_SECONDS_PER_FORWARD * result["forwards"]
            + _SECONDS_PER_MEMBER * result["members"])


class SimWorld:
    """Lazily-built heavy components shared across scenario runs.

    Everything here is read-only with respect to a scenario run; tests
    inject their session fixtures to avoid rebuilding archives.
    """

    def __init__(self, train_archive=None, serve_components=None):
        self._train_archive = train_archive
        self._serve = serve_components
        self._candidates: dict = {}

    def train_archive(self) -> SyntheticReanalysis:
        if self._train_archive is None:
            self._train_archive = SyntheticReanalysis(ReanalysisConfig(
                height=16, width=32, train_years=0.5, val_years=0.1,
                test_years=0.2, seed=0, spinup_steps=120))
        return self._train_archive

    def serve_components(self):
        """``(archive, forecaster, student, test_indices)`` for serving."""
        if self._serve is None:
            from .. import quickstart_components
            archive, trainer = quickstart_components(
                height=8, width=16, train_years=0.2, test_years=0.1)
            forecaster = trainer.forecaster()
            student = Aeris(forecaster.model.config, seed=3)
            self._serve = (archive, forecaster, student,
                           [int(i) for i in
                            archive.split_indices("test")[:4]])
        return self._serve

    def candidate(self, seed: int, poisoned: bool):
        """A canary-candidate forecaster (memoized per seed/poison).

        ``poisoned`` grossly corrupts every parameter — the deployment
        pipeline shipping broken weights — which the guardrails must
        catch and the controller must roll back.
        """
        key = (int(seed), bool(poisoned))
        if key not in self._candidates:
            from .. import quickstart_components
            _, trainer = quickstart_components(
                height=8, width=16, train_years=0.2, test_years=0.1,
                seed=int(seed))
            forecaster = trainer.forecaster()
            if poisoned:
                for _name, p in sorted(
                        forecaster.model.named_parameters()):
                    p.data += 1e4
            self._candidates[key] = forecaster
        return self._candidates[key]


@dataclass
class RunResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    outcome: str
    violations: list = field(default_factory=list)
    error: str = ""

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def fingerprint(self) -> str:
        return violations_fingerprint(self.violations)

    def violation_names(self) -> set:
        return {v.invariant for v in self.violations}


def violations_fingerprint(violations) -> str:
    """SHA-256 over the canonical JSON of the sorted violation set — the
    bit-exactness token replay compares against."""
    payload = json.dumps([v.to_dict() for v in violations],
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class SimRunner:
    """Run scenarios, judge invariants, explore seed ranges."""

    def __init__(self, registry: InvariantRegistry | None = None,
                 world: SimWorld | None = None,
                 gen: ScenarioGen | None = None):
        self.registry = (registry if registry is not None
                         else InvariantRegistry.default())
        self.world = world if world is not None else SimWorld()
        self.gen = gen if gen is not None else ScenarioGen()

    # -- single-scenario execution -----------------------------------------
    def run(self, scenario: Scenario) -> RunResult:
        artifacts = self._execute(scenario)
        violations = self.registry.evaluate(scenario, artifacts)
        return RunResult(scenario=scenario,
                         outcome=artifacts["outcome"],
                         violations=violations,
                         error=artifacts.get("error", ""))

    def _execute(self, scenario: Scenario) -> dict:
        if scenario.workload == "train":
            return self._run_train(scenario)
        if scenario.workload == "guarded_train":
            return self._run_guarded_train(scenario)
        return self._run_serve(scenario)

    @staticmethod
    def _outcome(exc: ResilienceError) -> str:
        if isinstance(exc, ClusterFailure):
            return "cluster_failure"
        if isinstance(exc, ComputeCorruption):
            return "compute_escalation"
        if isinstance(exc, (CommTimeout, MessageCorruption)):
            return "comm_escalation"
        return "crashed"

    # -- train --------------------------------------------------------------
    def _supervised_run(self, scenario: Scenario, plan: FaultPlan,
                        root: str, artifacts: dict) -> None:
        p = scenario.train
        topology = RankTopology(dp=p.dp, pp=MICRO.pp_stages,
                                wp_grid=(1, 1), sp=1)
        with monitored() as m:
            supervisor = ElasticSupervisor(
                MICRO, self.world.train_archive(), topology,
                SupervisorConfig(seed=p.seed, global_batch=p.global_batch,
                                 gas=p.gas, save_every=p.save_every,
                                 checkpoint_root=root,
                                 max_restarts=p.max_restarts),
                fault_plan=plan)
            try:
                result = supervisor.run(p.n_steps)
                outcome = "completed"
                error = ""
            except ResilienceError as exc:
                result = {"history": list(supervisor.history)}
                outcome = self._outcome(exc)
                error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 — becomes a violation
                result = {"history": list(supervisor.history)}
                outcome = "crashed"
                error = f"{type(exc).__name__}: {exc}"
        from ..train.checkpoint import list_checkpoints
        artifacts.update(
            outcome=outcome, error=error, result=result,
            supervisor=supervisor, injector=supervisor.injector,
            tracer=m.tracer, registry=m.registry, monitor=m.monitor,
            # basenames, captured before the tmpdir is reaped — the
            # invariants must never see (or embed) the tmp path itself
            checkpoint_dirs=[os.path.basename(d)
                             for d in list_checkpoints(root)])

    def _run_train(self, scenario: Scenario) -> dict:
        artifacts: dict = {}
        tmp = tempfile.mkdtemp(prefix="simtest-train-")
        try:
            self._supervised_run(scenario, scenario.fault_plan(),
                                 os.path.join(tmp, "chaos"), artifacts)
            run_twin = (artifacts["outcome"] == "completed"
                        and scenario.has_transients()
                        and not scenario.has_failstop()
                        and self.registry.needs("train.transient_bit_exact"))
            if run_twin:
                twin: dict = {}
                self._supervised_run(scenario, FaultPlan(),
                                     os.path.join(tmp, "twin"), twin)
                artifacts["twin_history"] = twin["result"]["history"]
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return artifacts

    # -- guarded train -------------------------------------------------------
    def _run_guarded_train(self, scenario: Scenario) -> dict:
        from ..kernels import abft_guard
        p = scenario.train
        injector = FaultInjector(scenario.fault_plan())
        with monitored() as m:
            trainer = Trainer(
                Aeris(MICRO, seed=p.seed), self.world.train_archive(),
                TrainerConfig(batch_size=p.global_batch, peak_lr=3e-3,
                              warmup_images=40, total_images=40_000,
                              decay_images=400, seed=p.seed, guarded=True,
                              max_step_retries=2),
                injector=injector)
            try:
                with abft_guard():
                    trainer.fit(p.n_steps)
                outcome = "completed"
                error = ""
            except ResilienceError as exc:
                outcome = self._outcome(exc)
                error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001
                outcome = "crashed"
                error = f"{type(exc).__name__}: {exc}"
        return {"outcome": outcome, "error": error, "trainer": trainer,
                "injector": injector, "tracer": m.tracer,
                "registry": m.registry, "monitor": m.monitor}

    # -- serve ---------------------------------------------------------------
    def _requests(self, scenario: Scenario, archive,
                  test_indices) -> list:
        p = scenario.serve
        rng = np.random.default_rng([p.seed, 1111, scenario.seed % 2**31])
        gaps = rng.exponential(1.0 / p.rate_hz, size=p.n_requests)
        arrivals = np.cumsum(gaps)
        requests = []
        for i in range(p.n_requests):
            tier = TIERS[int(rng.choice(3, p=p.tier_weights))]
            idx = test_indices[int(rng.integers(len(test_indices)))]
            requests.append(ForecastRequest(
                init_state=archive.fields[idx],
                n_steps=p.lead_steps, n_members=p.n_members, tier=tier,
                seed=int(rng.integers(2**31)), start_index=idx,
                arrival_s=float(round(arrivals[i], 6)),
                request_id=f"r{i:04d}"))
        return requests

    def _run_serve(self, scenario: Scenario) -> dict:
        archive, forecaster, student, test_indices = \
            self.world.serve_components()
        p = scenario.serve
        injector = FaultInjector(scenario.fault_plan())
        cluster = SimCluster(p.n_workers + 1, injector=injector)
        validator = ForecastValidator.from_normalizer(
            archive.state_normalizer())
        requests = self._requests(scenario, archive, test_indices)
        controller = None
        with monitored() as m:
            service = ForecastService(
                forecaster, student=student,
                config=ServiceConfig(n_workers=p.n_workers),
                cluster=cluster, injector=injector, validator=validator,
                duration_fn=_duration_model)
            if scenario.deploy is not None:
                from ..serve.deploy import (DeployConfig,
                                            DeploymentController)
                d = scenario.deploy
                controller = DeploymentController(
                    service,
                    config=DeployConfig(
                        canary_fraction=d.canary_fraction,
                        shadow_fraction=d.shadow_fraction,
                        observation_window=d.observation_window,
                        seed=scenario.seed % 2**31))
                controller.start_canary(
                    "v1", forecaster=self.world.candidate(
                        d.candidate_seed, d.poison_candidate))
            try:
                responses = service.run(requests)
                outcome = "completed"
                error = ""
            except Exception as exc:  # noqa: BLE001 — the loop heals
                # typed resilience errors internally; anything escaping
                # (typed or not) is a finding.
                responses = []
                outcome = "crashed"
                error = f"{type(exc).__name__}: {exc}"
        return {"outcome": outcome, "error": error, "service": service,
                "responses": responses, "controller": controller,
                "injector": injector, "cluster": cluster,
                "tracer": m.tracer, "registry": m.registry,
                "monitor": m.monitor}

    # -- exploration ---------------------------------------------------------
    def explore(self, n: int, seed_start: int = 0,
                time_budget_s: float | None = None,
                on_result=None) -> list:
        """Run scenarios for seeds ``seed_start .. seed_start + n - 1``
        (stopping early on the time budget); returns every
        :class:`RunResult`.  ``on_result(result)`` is called per run —
        the CLI uses it for progress and shrink-on-failure."""
        results = []
        t0 = time.monotonic()
        for i in range(n):
            if (time_budget_s is not None
                    and time.monotonic() - t0 >= time_budget_s):
                break
            result = self.run(self.gen.scenario(seed_start + i))
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results

    # -- replay --------------------------------------------------------------
    def replay(self, repro: dict) -> tuple[RunResult, list, bool]:
        """Re-run a repro file's scenario; returns ``(result,
        expected_violations, exact_match)`` where ``exact_match`` is
        bit-exact equality of the violation sets."""
        scenario = Scenario.from_dict(repro["scenario"])
        expected = [Violation.from_dict(v) for v in repro["violations"]]
        result = self.run(scenario)
        match = ([v.to_dict() for v in result.violations]
                 == [v.to_dict() for v in expected]
                 and result.fingerprint() == repro["fingerprint"])
        return result, expected, match


# -- repro files ---------------------------------------------------------------
def write_repro(path: str, result: RunResult, note: str = "") -> dict:
    """Serialize one (usually shrunk) failing run as a JSON repro."""
    payload = {
        "schema": SCHEMA_VERSION,
        "scenario": result.scenario.to_dict(),
        "outcome": result.outcome,
        "violations": [v.to_dict() for v in result.violations],
        "fingerprint": result.fingerprint(),
        "note": note,
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_repro(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)
