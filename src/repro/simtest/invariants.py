"""Uniform invariant checking over simulated runs.

Every property a scenario run must satisfy is an :class:`Invariant`: a
named predicate over the run's artifacts (injector, tracer, metrics
registry, monitor, service/supervisor/controller handles, outcomes)
returning a list of :class:`Violation`\\ s.  The default registry adapts
every existing :class:`~repro.obs.TraceReport` cross-check
(``resilience_check``, ``sdc_check``, ``serve_check``, ``deploy_check``,
``health_check``) and adds the global invariants the one-off suites never
stated explicitly:

* **request conservation** — every admitted request is answered exactly
  once, per version and in total;
* **bit-exact transient-chaos equivalence** — a transient-only training
  run reproduces the fault-free loss history bit-for-bit;
* **checkpoint monotonicity** — checkpoint directories name strictly
  increasing steps, never beyond the horizon, and a completed run's
  newest checkpoint is the final step;
* **no alert without cause** — a fault-class alert may only fire when
  the injector actually dealt that fault class (the false-positive
  direction of alert fidelity, applicable even when coverage is not —
  e.g. a serve fail-stop on a worker that is never dispatched to again
  is legitimately unobservable).

Applicability is part of the invariant: each one declares the workloads
it covers and the outcomes it may judge.  Reconciliation checks only run
on ``completed`` outcomes — a run that legitimately escalated (e.g.
:class:`~repro.resilience.ClusterFailure` on an exhausted restart
budget) aborts mid-flight with accounting that is *correctly* partial.

A crashing invariant function is itself reported as a violation of that
invariant rather than aborting the scenario — the harness must never
lose a finding to a bug in a check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.report import TraceReport
from .scenario import Scenario

__all__ = ["Violation", "Invariant", "InvariantRegistry", "sanitize"]


def sanitize(obj):
    """Recursively coerce ``obj`` to canonical JSON-safe values (numpy
    scalars unwrapped, integral floats collapsed to int, dict keys
    stringified) so violation details serialize identically on replay."""
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, str) or obj is None:
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        f = float(obj)
        return int(f) if f.is_integer() and abs(f) < 2**53 else f
    if isinstance(obj, dict):
        return {str(k): sanitize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [sanitize(v) for v in obj]
        return sorted(items, key=repr) if isinstance(
            obj, (set, frozenset)) else items
    return repr(obj)


@dataclass(frozen=True)
class Violation:
    """One invariant failure, uniformly reported and JSON-stable."""

    invariant: str
    message: str
    details: tuple = ()

    @classmethod
    def of(cls, invariant: str, message: str, **details) -> "Violation":
        return cls(invariant=invariant, message=message,
                   details=tuple(sorted(
                       (k, json.dumps(sanitize(v), sort_keys=True))
                       for k, v in details.items())))

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "message": self.message,
                "details": {k: json.loads(v) for k, v in self.details}}

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls.of(data["invariant"], data["message"],
                      **data.get("details", {}))


@dataclass(frozen=True)
class Invariant:
    """A named predicate over one run's artifacts.

    ``fn(scenario, artifacts) -> list[Violation]``; ``workloads`` limits
    which scenario families it judges and ``outcomes`` which terminal
    outcomes (empty = all, including crashes).
    """

    name: str
    fn: Callable[[Scenario, dict], list]
    workloads: tuple = ("train", "guarded_train", "serve", "serve_deploy")
    outcomes: tuple = ("completed",)

    def applies(self, scenario: Scenario, outcome: str) -> bool:
        return (scenario.workload in self.workloads
                and (not self.outcomes or outcome in self.outcomes))


class InvariantRegistry:
    """Ordered collection of invariants evaluated over one run."""

    def __init__(self, invariants=None):
        self.invariants: list[Invariant] = list(
            invariants if invariants is not None else [])

    def register(self, invariant: Invariant) -> None:
        if invariant.name in self.names():
            raise ValueError(f"duplicate invariant {invariant.name!r}")
        self.invariants.append(invariant)

    def names(self) -> list[str]:
        return [inv.name for inv in self.invariants]

    def needs(self, name: str) -> bool:
        return name in self.names()

    def evaluate(self, scenario: Scenario, artifacts: dict) -> list:
        """All violations over one finished run, deterministically
        ordered.  An invariant that raises contributes a violation of
        itself (the harness never swallows a broken check)."""
        outcome = artifacts.get("outcome", "crashed")
        violations: list[Violation] = []
        for inv in self.invariants:
            if not inv.applies(scenario, outcome):
                continue
            try:
                violations.extend(inv.fn(scenario, artifacts))
            except Exception as exc:  # noqa: BLE001 — reported, not lost
                violations.append(Violation.of(
                    inv.name, "invariant check crashed",
                    error=f"{type(exc).__name__}: {exc}"))
        return sorted(violations,
                      key=lambda v: (v.invariant, v.message, v.details))

    @classmethod
    def default(cls) -> "InvariantRegistry":
        reg = cls()
        reg.register(Invariant("scenario.clean_exit", _clean_exit,
                               outcomes=()))
        reg.register(Invariant("resilience.faults_observed",
                               _faults_observed, workloads=("train",)))
        reg.register(Invariant("train.transient_bit_exact",
                               _transient_bit_exact, workloads=("train",)))
        reg.register(Invariant(
            "train.checkpoint_monotonic", _checkpoint_monotonic,
            workloads=("train",),
            outcomes=("completed", "cluster_failure")))
        reg.register(Invariant("obs.alert_fidelity", _alert_fidelity,
                               workloads=("train", "guarded_train")))
        reg.register(Invariant("sdc.recovery_closed", _sdc_closed,
                               workloads=("guarded_train", "serve")))
        reg.register(Invariant(
            "serve.request_conservation", _request_conservation,
            workloads=("serve", "serve_deploy")))
        reg.register(Invariant(
            "serve.responses_complete", _responses_complete,
            workloads=("serve", "serve_deploy")))
        reg.register(Invariant(
            "serve.forecast_sdc_accounting", _forecast_sdc,
            workloads=("serve", "serve_deploy")))
        reg.register(Invariant(
            "obs.no_alert_without_cause", _no_alert_without_cause,
            workloads=("serve", "serve_deploy")))
        reg.register(Invariant("deploy.lifecycle", _deploy_lifecycle,
                               workloads=("serve_deploy",)))
        return reg


# -- built-in invariant functions ----------------------------------------------
def _report(artifacts: dict) -> TraceReport:
    return TraceReport(tracer=artifacts["tracer"],
                       registry=artifacts["registry"])


def _clean_exit(scenario: Scenario, art: dict) -> list:
    """Only typed resilience escalations may end a run early; anything
    else (or an unrecognized outcome) is a harness-visible bug."""
    outcome = art.get("outcome", "crashed")
    if outcome in ("completed", "cluster_failure", "compute_escalation",
                   "comm_escalation"):
        return []
    return [Violation.of("scenario.clean_exit",
                         f"run ended with outcome {outcome!r}",
                         error=art.get("error", ""))]


def _faults_observed(scenario: Scenario, art: dict) -> list:
    check = _report(art).resilience_check(art["injector"])
    if check["agrees"]:
        return []
    return [Violation.of(
        "resilience.faults_observed",
        "injected faults do not reconcile with observed detections",
        per_kind=check["per_kind"])]


def _transient_bit_exact(scenario: Scenario, art: dict) -> list:
    """Transient faults heal bit-exactly, so the chaos history must equal
    the fault-free twin's exactly (skipped when the runner ran no twin —
    fail-stop scenarios legitimately diverge after a re-grid)."""
    twin = art.get("twin_history")
    if twin is None:
        return []
    history = art["result"]["history"]
    if list(history) == list(twin):
        return []
    diverged = next((i for i, (a, b) in enumerate(zip(history, twin))
                     if a != b), min(len(history), len(twin)))
    return [Violation.of(
        "train.transient_bit_exact",
        "transient-only run diverged from the fault-free twin",
        first_divergence_step=diverged, chaos_len=len(history),
        twin_len=len(twin))]


def _checkpoint_monotonic(scenario: Scenario, art: dict) -> list:
    # The runner captures checkpoint-directory basenames before reaping
    # its per-run tmpdir, so this judges the recorded listing, not disk.
    steps = []
    bad: list[Violation] = []
    for name in art.get("checkpoint_dirs", []):
        try:
            steps.append(int(name.split("-", 1)[1]))
        except (IndexError, ValueError):
            bad.append(Violation.of(
                "train.checkpoint_monotonic",
                f"unparseable checkpoint directory name {name!r}"))
    n_steps = scenario.train.n_steps
    if any(b >= a for a, b in zip(steps[1:], steps)):
        bad.append(Violation.of(
            "train.checkpoint_monotonic",
            "checkpoint steps are not strictly increasing", steps=steps))
    if steps and steps[-1] > n_steps:
        bad.append(Violation.of(
            "train.checkpoint_monotonic",
            "checkpoint beyond the scenario horizon",
            last=steps[-1], horizon=n_steps))
    if (art.get("outcome") == "completed" and scenario.train.save_every
            and (not steps or steps[-1] != n_steps)):
        bad.append(Violation.of(
            "train.checkpoint_monotonic",
            "completed run did not leave a final-step checkpoint",
            steps=steps, horizon=n_steps))
    return bad


def _alert_fidelity(scenario: Scenario, art: dict) -> list:
    check = _report(art).health_check(art["monitor"], art["injector"])
    if check["agrees"]:
        return []
    return [Violation.of(
        "obs.alert_fidelity",
        "fired alerts do not reconcile with injected fault classes",
        per_fault=check["per_fault"])]


def _sdc_closed(scenario: Scenario, art: dict) -> list:
    check = _report(art).sdc_check(art["injector"])
    if check["agrees"]:
        return []
    return [Violation.of(
        "sdc.recovery_closed",
        "compute-domain corruption not fully detected and healed",
        per_kind=check["per_kind"], recovered=check["recovered"])]


def _request_conservation(scenario: Scenario, art: dict) -> list:
    check = _report(art).serve_check(art["service"])
    if check["agrees"]:
        return []
    return [Violation.of(
        "serve.request_conservation",
        "request lifecycle accounting does not balance",
        per_event=check["per_event"],
        conservation=check["conservation"])]


def _responses_complete(scenario: Scenario, art: dict) -> list:
    """Every submitted request gets exactly one response; completed
    responses carry a forecast the guardrails accept."""
    responses = art["responses"]
    service = art["service"]
    bad: list[Violation] = []
    if len(responses) != scenario.serve.n_requests:
        bad.append(Violation.of(
            "serve.responses_complete",
            "response count differs from submitted requests",
            responses=len(responses),
            requests=scenario.serve.n_requests))
    seen = {}
    for r in responses:
        seen[r.request.request_id] = seen.get(r.request.request_id, 0) + 1
    doubled = {rid: n for rid, n in seen.items() if n != 1}
    if doubled:
        bad.append(Violation.of(
            "serve.responses_complete",
            "requests answered more than once (or unidentifiable)",
            counts=doubled))
    for r in responses:
        if r.status == "completed":
            if r.forecast is None:
                bad.append(Violation.of(
                    "serve.responses_complete",
                    "completed response without a forecast",
                    request=r.request.request_id))
            elif service.validator is not None \
                    and service.validator.validate(r.forecast):
                bad.append(Violation.of(
                    "serve.responses_complete",
                    "served forecast violates the physical guardrails",
                    request=r.request.request_id))
        elif r.status not in ("rejected", "timeout", "failed"):
            bad.append(Violation.of(
                "serve.responses_complete",
                f"unknown response status {r.status!r}",
                request=r.request.request_id))
    return bad


def _forecast_sdc(scenario: Scenario, art: dict) -> list:
    """Poisoned forecasts must be quarantined: exactly one quarantine per
    injected forecast fault (a poisoned *candidate model* in a deploy
    scenario legitimately adds organic quarantines on top, so the deploy
    workload checks the weaker >= direction)."""
    injected = art["injector"].injected.get("sdc_forecast", 0)
    quarantined = art["registry"].counter(
        "serve.forecasts_quarantined").total()
    exact = scenario.workload == "serve"
    ok = quarantined == injected if exact else quarantined >= injected
    if ok:
        return []
    return [Violation.of(
        "serve.forecast_sdc_accounting",
        "injected forecast corruption escaped the guardrails"
        if quarantined < injected else
        "guardrail quarantines without matching injected corruption",
        injected=injected, quarantined=quarantined)]


def _no_alert_without_cause(scenario: Scenario, art: dict) -> list:
    from ..obs.health import FAULT_ALERT_KINDS
    monitor = art["monitor"]
    monitor.check_faults(art["registry"])
    fired = monitor.alerts.kinds()
    injected = art["injector"].injected
    bad: list[Violation] = []
    for fault, kind in sorted(FAULT_ALERT_KINDS.items()):
        if kind in fired and not injected.get(fault, 0):
            # A poisoned candidate corrupts forecasts without the
            # injector's involvement — its quarantine alert has a cause.
            if (kind == "serve.forecast_sdc"
                    and scenario.workload == "serve_deploy"
                    and scenario.deploy.poison_candidate):
                continue
            bad.append(Violation.of(
                "obs.no_alert_without_cause",
                f"alert {kind!r} fired with no injected "
                f"{fault!r} fault"))
    if "deploy.rollback" in fired:
        controller = art.get("controller")
        if controller is None or controller.state != "rolled_back":
            bad.append(Violation.of(
                "obs.no_alert_without_cause",
                "deploy.rollback alert fired without a rollback"))
    return bad


def _deploy_lifecycle(scenario: Scenario, art: dict) -> list:
    controller = art["controller"]
    bad: list[Violation] = []
    if controller.state not in ("canary", "promoted", "rolled_back"):
        bad.append(Violation.of(
            "deploy.lifecycle",
            f"controller ended in unexpected state {controller.state!r}"))
    check = _report(art).deploy_check(art["service"], controller)
    if not check["agrees"]:
        bad.append(Violation.of(
            "deploy.lifecycle",
            "deployment accounting does not reconcile",
            per_version=check["per_version"], ledger=check["ledger"],
            terminal=check["terminal"]))
    return bad
