"""Scenario schema + seeded whole-scenario sampling (``ScenarioGen``).

A :class:`Scenario` is everything one deterministic simulation run needs:
the workload family (supervised SWiPe training, SDC-guarded training,
forecast serving, serving with a mid-run canary deploy), the cluster
shape, a full :class:`~repro.resilience.FaultPlan` (scheduled events plus
background rates), the serve load (Poisson arrivals across tiers), the
checkpoint cadence, and the deploy policy.  Every field is a plain JSON
value, so a scenario round-trips losslessly through
:meth:`Scenario.to_dict` / :meth:`Scenario.from_dict` — that is what
makes a shrunk failure a committable repro file.

:class:`ScenarioGen` samples a whole scenario from a single ``uint64``
seed.  The generation schema is versioned (:data:`SCHEMA_VERSION`): a
repro file records the schema it was generated under, and replay refuses
a schema it does not understand instead of silently reinterpreting the
fields.  Changing *how* seeds map to scenarios (new fields, different
ranges) must bump the version so old corpus entries keep meaning what
they meant.

Sampling invariants the runner relies on:

* at most **one** fail-stop event per training scenario (a second
  fail-stop addressed at a renumbered post-recovery grid can name a rank
  that no collective ever touches again, which would make
  "no fault goes unobserved" unverifiable by construction);
* fault event steps stay inside the horizon, fail-stop ranks inside the
  world;
* serve scenarios always attach the physical guardrails (a poisoned
  forecast with no validator is undetectable by design, not a bug);
* compute-SDC events are only scheduled for workloads that have a
  detection layer for them (``guarded_train``: gemm/weight/optimizer;
  ``serve``: forecast).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

import numpy as np

from ..resilience.faults import (BitFlip, ComputeFault, Drop, FailStop,
                                 FaultPlan, Straggle)

__all__ = ["SCHEMA_VERSION", "WORKLOADS", "TrainParams", "ServeParams",
           "DeployParams", "Scenario", "ScenarioGen"]

#: Version of the seed -> scenario mapping.  Bump on any change to the
#: sampled fields or their ranges; replay rejects unknown versions.
SCHEMA_VERSION = 1

WORKLOADS = ("train", "guarded_train", "serve", "serve_deploy")

#: Transfer primitives scheduled comm faults may target ("*" = any).
_COMM_PRIMITIVES = ("allreduce", "p2p", "*")


@dataclass(frozen=True)
class TrainParams:
    """Supervised-training knobs (workloads ``train``/``guarded_train``)."""

    n_steps: int = 3
    dp: int = 2
    global_batch: int = 8
    gas: int = 2
    save_every: int = 1
    max_restarts: int = 2
    seed: int = 0


@dataclass(frozen=True)
class ServeParams:
    """Serving-load knobs (workloads ``serve``/``serve_deploy``)."""

    n_workers: int = 2
    n_requests: int = 8
    rate_hz: float = 4.0
    tier_weights: tuple[float, float, float] = (0.25, 0.5, 0.25)
    n_members: int = 1
    lead_steps: int = 2
    seed: int = 0


@dataclass(frozen=True)
class DeployParams:
    """Mid-run canary knobs (workload ``serve_deploy``)."""

    canary_fraction: float = 0.4
    shadow_fraction: float = 0.5
    observation_window: int = 4
    candidate_seed: int = 1
    #: Grossly corrupt the candidate's weights before deploying it — the
    #: guardrails must quarantine its output and the controller must
    #: roll back to the incumbent.
    poison_candidate: bool = False


@dataclass(frozen=True)
class Scenario:
    """One fully-specified simulation run (JSON-serializable)."""

    seed: int
    workload: str
    #: Scheduled fault events as plain dicts (``{"kind": ..., ...}``).
    events: tuple = ()
    fault_seed: int = 0
    #: Background fault rates as a sorted key/value tuple (hashable and
    #: order-stable, so scenario equality survives a JSON round trip).
    rates: tuple = (("p_bitflip", 0.0), ("p_compute", 0.0),
                    ("p_drop", 0.0), ("p_straggle", 0.0))
    train: TrainParams | None = None
    serve: ServeParams | None = None
    deploy: DeployParams | None = None
    schema: int = SCHEMA_VERSION

    # -- derived views -----------------------------------------------------
    @property
    def rate(self) -> dict:
        return dict(self.rates)

    @property
    def horizon(self) -> int:
        """The shrinkable run length: training steps or serve requests."""
        if self.workload in ("train", "guarded_train"):
            return self.train.n_steps
        return self.serve.n_requests

    def with_horizon(self, n: int) -> "Scenario":
        if self.workload in ("train", "guarded_train"):
            return replace(self, train=replace(self.train, n_steps=n))
        return replace(self, serve=replace(self.serve, n_requests=n))

    def fault_plan(self) -> FaultPlan:
        """Materialize the typed :class:`FaultPlan` for the injector."""
        rates = self.rate
        return FaultPlan(events=tuple(event_from_dict(e)
                                      for e in self.events),
                         seed=self.fault_seed,
                         p_bitflip=rates["p_bitflip"],
                         p_drop=rates["p_drop"],
                         p_straggle=rates["p_straggle"],
                         p_compute=rates["p_compute"])

    def has_failstop(self) -> bool:
        return any(e["kind"] == "failstop" for e in self.events)

    def has_transients(self) -> bool:
        rates = self.rate
        return (any(e["kind"] in ("bitflip", "drop", "straggle")
                    for e in self.events)
                or rates["p_bitflip"] > 0 or rates["p_drop"] > 0
                or rates["p_straggle"] > 0)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        out = asdict(self)
        out["events"] = [dict(e) for e in self.events]
        out["rates"] = dict(self.rates)
        for section in ("train", "serve", "deploy"):
            if out[section] is not None:
                out[section] = dict(out[section])
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        schema = int(data.get("schema", 0))
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"scenario schema {schema} != supported {SCHEMA_VERSION} "
                "(regenerate the repro or run an older tree)")
        if data["workload"] not in WORKLOADS:
            raise ValueError(f"unknown workload {data['workload']!r}")
        rates = dict(data["rates"])
        return cls(
            seed=int(data["seed"]), workload=data["workload"],
            events=tuple(dict(e) for e in data["events"]),
            fault_seed=int(data["fault_seed"]),
            rates=tuple(sorted(
                (k, float(rates[k]))
                for k in ("p_bitflip", "p_drop", "p_straggle",
                          "p_compute"))),
            train=(TrainParams(**data["train"])
                   if data.get("train") is not None else None),
            serve=(ServeParams(**{
                **data["serve"],
                "tier_weights": tuple(data["serve"]["tier_weights"]),
            }) if data.get("serve") is not None else None),
            deploy=(DeployParams(**data["deploy"])
                    if data.get("deploy") is not None else None),
            schema=schema)


def event_from_dict(e: dict):
    """One plain event dict -> the typed scheduled-fault event."""
    kind = e["kind"]
    if kind == "failstop":
        return FailStop(rank=int(e["rank"]), step=int(e["step"]))
    if kind == "bitflip":
        return BitFlip(step=int(e["step"]), primitive=e["primitive"],
                       nth=int(e["nth"]))
    if kind == "drop":
        return Drop(step=int(e["step"]), primitive=e["primitive"],
                    nth=int(e["nth"]))
    if kind == "straggle":
        return Straggle(step=int(e["step"]), primitive=e["primitive"],
                        nth=int(e["nth"]), delay_s=float(e["delay_s"]))
    if kind == "compute":
        return ComputeFault(step=int(e["step"]), site=e["site"],
                            nth=int(e["nth"]))
    raise ValueError(f"unknown event kind {kind!r}")


def _rates(rng, transient_scale: float, p_compute: float) -> tuple:
    """Background-rate tuple; half of all scenarios run rate-free so the
    scheduled-event paths get undiluted coverage."""
    if transient_scale and rng.random() < 0.5:
        flips = float(rng.uniform(0, 0.02)) * transient_scale
        drops = float(rng.uniform(0, 0.02)) * transient_scale
        lags = float(rng.uniform(0, 0.03)) * transient_scale
    else:
        flips = drops = lags = 0.0
    return tuple(sorted({"p_bitflip": round(flips, 6),
                         "p_drop": round(drops, 6),
                         "p_straggle": round(lags, 6),
                         "p_compute": round(p_compute, 6)}.items()))


class ScenarioGen:
    """Seed -> :class:`Scenario`, under one versioned schema.

    The generator is stateless: ``scenario(seed)`` is a pure function of
    ``(schema, seed)``, so an explorer and a replayer constructed
    independently agree on every sampled field.
    """

    def __init__(self, schema: int = SCHEMA_VERSION):
        if schema != SCHEMA_VERSION:
            raise ValueError(f"unsupported generation schema {schema}")
        self.schema = schema

    def scenario(self, seed: int) -> Scenario:
        seed = int(seed) % 2**64  # wrap into uint64 space
        rng = np.random.default_rng(seed)
        workload = WORKLOADS[int(rng.choice(4, p=(0.35, 0.2, 0.25, 0.2)))]
        fault_seed = int(rng.integers(0, 2**31))
        if workload == "train":
            return self._train(seed, rng, fault_seed)
        if workload == "guarded_train":
            return self._guarded_train(seed, rng, fault_seed)
        return self._serve(seed, rng, fault_seed,
                           deploy=workload == "serve_deploy")

    # -- per-workload samplers ---------------------------------------------
    def _comm_events(self, rng, n: int, horizon: int,
                     max_nth: int = 2) -> list[dict]:
        events = []
        for _ in range(n):
            kind = ("bitflip", "drop", "straggle")[int(rng.integers(3))]
            ev = {"kind": kind, "step": int(rng.integers(horizon)),
                  "primitive": _COMM_PRIMITIVES[int(rng.integers(3))],
                  "nth": int(rng.integers(max_nth))}
            if kind == "straggle":
                ev["delay_s"] = round(float(rng.uniform(0.01, 0.05)), 6)
            events.append(ev)
        return events

    def _train(self, seed: int, rng, fault_seed: int) -> Scenario:
        train = TrainParams(
            n_steps=int(rng.integers(2, 5)),
            dp=2, global_batch=8,
            gas=int(rng.integers(1, 3)),
            save_every=int(rng.integers(1, 3)),
            max_restarts=int(rng.integers(1, 4)),
            seed=int(rng.integers(0, 4)))
        world = train.dp * 3  # MICRO has a fixed 3-stage pipeline
        events = self._comm_events(rng, int(rng.integers(0, 4)),
                                   train.n_steps)
        if rng.random() < 0.4:
            events.append({"kind": "failstop",
                           "rank": int(rng.integers(world)),
                           "step": int(rng.integers(train.n_steps))})
        return Scenario(seed=seed, workload="train",
                        events=tuple(events), fault_seed=fault_seed,
                        rates=_rates(rng, 1.0, 0.0), train=train)

    def _guarded_train(self, seed: int, rng, fault_seed: int) -> Scenario:
        train = TrainParams(n_steps=int(rng.integers(3, 6)), dp=1,
                            global_batch=4, gas=1, save_every=0,
                            max_restarts=0, seed=int(rng.integers(0, 4)))
        events = []
        for _ in range(int(rng.integers(0, 3))):
            events.append({
                "kind": "compute",
                "step": int(rng.integers(train.n_steps)),
                "site": ("gemm", "weight", "optimizer")[
                    int(rng.integers(3))],
                "nth": int(rng.integers(2))})
        p_compute = (round(float(rng.uniform(0, 0.01)), 6)
                     if rng.random() < 0.3 else 0.0)
        return Scenario(seed=seed, workload="guarded_train",
                        events=tuple(events), fault_seed=fault_seed,
                        rates=_rates(rng, 0.0, p_compute), train=train)

    def _serve(self, seed: int, rng, fault_seed: int,
               deploy: bool) -> Scenario:
        serve = ServeParams(
            n_workers=int(rng.integers(1, 4)),
            n_requests=int(rng.integers(5, 15)),
            rate_hz=round(float(rng.uniform(2.0, 8.0)), 4),
            tier_weights=((0.25, 0.5, 0.25) if rng.random() < 0.5
                          else (0.0, 0.7, 0.3)),
            n_members=int(rng.integers(1, 3)),
            lead_steps=int(rng.integers(1, 4)),
            seed=int(rng.integers(0, 4)))
        # Fault "steps" are dispatch indices in the serve loop.
        events = self._comm_events(rng, int(rng.integers(0, 3)),
                                   serve.n_requests, max_nth=1)
        if rng.random() < 0.3:
            events.append({"kind": "failstop",
                           "rank": int(rng.integers(serve.n_workers)),
                           "step": int(rng.integers(serve.n_requests))})
        deploy_params = None
        if deploy:
            deploy_params = DeployParams(
                canary_fraction=round(float(rng.uniform(0.2, 0.6)), 4),
                shadow_fraction=round(float(rng.uniform(0.0, 0.6)), 4),
                observation_window=int(rng.integers(2, 5)),
                candidate_seed=int(rng.integers(1, 3)),
                poison_candidate=bool(rng.random() < 0.4))
        if not deploy and rng.random() < 0.4:
            events.append({"kind": "compute",
                           "step": int(rng.integers(serve.n_requests)),
                           "site": "forecast", "nth": 0})
        return Scenario(seed=seed,
                        workload="serve_deploy" if deploy else "serve",
                        events=tuple(events), fault_seed=fault_seed,
                        rates=_rates(rng, 0.5, 0.0), serve=serve,
                        deploy=deploy_params)
