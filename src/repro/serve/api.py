"""Typed request/response surface of the forecast-serving tier.

A :class:`ForecastRequest` names *what* to forecast (initial state, lead
steps, ensemble size, variables) and *how* (quality tier, seed); the
service answers with a :class:`ForecastResponse` carrying the trajectory
plus per-request accounting (latency, queue wait, cache hits, stacked
forwards).  Admission failures are typed — :class:`Rejected` for
backpressure (queue caps, unknown variables, unavailable tiers) and
:class:`Timeout` for per-tier deadline misses — so callers can distinguish
"retry later" from "never".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TIERS", "ForecastRequest", "ForecastResponse",
           "ServeError", "Rejected", "Timeout"]

#: Quality tiers, cheapest first (see :mod:`repro.serve.samplers`).
TIERS = ("fast", "standard", "high")


class ServeError(RuntimeError):
    """Base class for typed serving failures."""


class Rejected(ServeError):
    """Admission control refused the request (backpressure or bad input).

    ``reason`` is machine-readable: ``queue_full`` / ``tier_queue_full`` /
    ``tier_unavailable`` / ``bad_shape`` / ``unknown_variable``.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        super().__init__(f"request rejected ({reason})"
                         + (f": {detail}" if detail else ""))


class Timeout(ServeError):
    """The request outlived its tier's deadline while queued."""

    def __init__(self, waited_s: float, deadline_s: float):
        self.waited_s = waited_s
        self.deadline_s = deadline_s
        super().__init__(f"request timed out after {waited_s:.3f}s "
                         f"(deadline {deadline_s:.3f}s)")


@dataclass(frozen=True, eq=False)
class ForecastRequest:
    """One forecast query.

    ``init_state`` is a physical ``(H, W, C)`` field; ``start_index``
    positions it on the forcing calendar.  ``seed`` fixes the ensemble
    noise (member ``m`` streams from ``default_rng(seed + 1000 m)`` — the
    same convention as :meth:`ResidualForecaster.ensemble_rollout`, which
    is what makes served forecasts bit-reproducible and cacheable).
    ``variables`` optionally restricts the *returned* channels; compute
    and cache always cover the full state (the autoregression needs it).
    """

    init_state: np.ndarray
    n_steps: int
    n_members: int = 1
    tier: str = "standard"
    seed: int = 0
    start_index: int = 0
    variables: tuple[str, ...] | None = None
    arrival_s: float = 0.0
    request_id: str = ""

    def __post_init__(self):
        if self.tier not in TIERS:
            raise ValueError(f"unknown tier {self.tier!r}; one of {TIERS}")
        if self.n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if self.n_members < 1:
            raise ValueError("n_members must be >= 1")
        if self.init_state.ndim != 3:
            raise ValueError("init_state must be (H, W, C)")


@dataclass(eq=False)
class ForecastResponse:
    """Outcome of one request.

    ``status`` is ``completed`` / ``rejected`` / ``timeout`` / ``failed``;
    ``forecast`` is ``(n_members, n_steps + 1, H, W, C')`` (``C'`` the
    requested variable subset) and ``None`` unless completed.
    ``batch_forwards`` / ``batch_members`` describe the micro-batch that
    served the request (shared across coalesced requests).
    ``quarantines`` counts how many times a physical guardrail
    quarantined this request's forecast before it was served (a served
    response with ``quarantines > 0`` was healed by a re-run on a
    different worker).  ``version`` names the model version that served
    the request (empty for rejections, which never reach a model).
    """

    request: ForecastRequest
    status: str
    forecast: np.ndarray | None = None
    error: str = ""
    latency_s: float = 0.0
    queue_wait_s: float = 0.0
    worker: int = -1
    batch_forwards: int = 0
    batch_members: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    quarantines: int = 0
    version: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "completed"
