"""Tiered samplers: quality tiers mapped onto the paper's inference paths.

AERIS ships two inference regimes (Section IV Figure 1d, Section VII-C):
the DPM-Solver++ 2S probability-flow integration (2 model evaluations per
solver step, plus one final denoise) and the consistency-distilled
one-step student ("reduce inference to a single step, thereby lowering
computational cost by orders of magnitude").  The serving tiers expose
exactly those:

* ``fast``     — one consistency-student evaluation per data step;
* ``standard`` — DPM-Solver 2S at the paper's default 10 steps;
* ``high``     — DPM-Solver 2S at 20 steps with trigonometric churn
  (the ensemble-spread configuration).

:class:`TierRouter` is a deterministic pure mapping ``tier name →
TierPolicy`` — the same request always takes the same path, which is what
makes served forecasts reproducible and cacheable.  :class:`SloTracker`
books per-tier latency against each tier's objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..diffusion import SolverConfig, TrigFlow
from ..diffusion.sampler import Normalizer, count_model_forwards
from ..obs.profile import health as _obs_health
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from ..tensor import Tensor, no_grad
from .api import Rejected

__all__ = ["TierPolicy", "TierRouter", "SloTracker", "OneStepForecaster",
           "default_tiers"]


@dataclass(frozen=True)
class TierPolicy:
    """How one quality tier is served.

    ``solver_config=None`` routes to the one-step consistency student;
    otherwise the DPM-Solver runs with the given configuration.  Lower
    ``priority`` is served first.  ``deadline_s`` bounds queue wait
    (exceeding it turns the request into a :class:`~repro.serve.Timeout`),
    ``slo_s`` is the latency objective the tracker scores against, and
    ``max_queue_depth`` is the tier's admission cap.
    """

    name: str
    priority: int
    solver_config: SolverConfig | None
    deadline_s: float = 30.0
    slo_s: float = 5.0
    max_queue_depth: int = 64

    def forwards_per_data_step(self) -> int:
        """Stacked model evaluations one data step costs at this tier:
        2 per 2S update (``n_steps`` grid points = ``n_steps - 1``
        updates) plus the final denoise; 1 for the one-step student."""
        if self.solver_config is None:
            return 1
        return 2 * (self.solver_config.n_steps - 1) + 1


def default_tiers() -> dict[str, TierPolicy]:
    """The paper-derived tier table (fast = distilled student, standard =
    default solver, high = churned long schedule)."""
    return {
        "fast": TierPolicy(name="fast", priority=0, solver_config=None,
                           deadline_s=2.0, slo_s=0.5, max_queue_depth=128),
        "standard": TierPolicy(name="standard", priority=1,
                               solver_config=SolverConfig(n_steps=10),
                               deadline_s=30.0, slo_s=5.0,
                               max_queue_depth=64),
        "high": TierPolicy(name="high", priority=2,
                           solver_config=SolverConfig(n_steps=20, churn=0.3),
                           deadline_s=120.0, slo_s=20.0,
                           max_queue_depth=32),
    }


class TierRouter:
    """Deterministic request → tier-policy mapping."""

    def __init__(self, policies: dict[str, TierPolicy] | None = None):
        self.policies = dict(policies) if policies is not None \
            else default_tiers()
        for name, policy in self.policies.items():
            if name != policy.name:
                raise ValueError(f"policy {policy.name!r} keyed as {name!r}")

    def route(self, tier: str) -> TierPolicy:
        policy = self.policies.get(tier)
        if policy is None:
            raise Rejected("tier_unavailable",
                           f"no policy for tier {tier!r}")
        return policy

    def with_policy(self, policy: TierPolicy) -> "TierRouter":
        """A new router with one policy replaced (routers are cheap)."""
        policies = dict(self.policies)
        policies[policy.name] = policy
        return TierRouter(policies)


class SloTracker:
    """Per-tier latency bookkeeping against each tier's objective."""

    def __init__(self, policies: dict[str, TierPolicy]):
        self.policies = policies
        self.latencies: dict[str, list[float]] = {t: [] for t in policies}

    def record(self, tier: str, latency_s: float) -> None:
        self.latencies.setdefault(tier, []).append(latency_s)
        policy = self.policies.get(tier)
        registry = _obs_metrics()
        if registry is not None:
            registry.histogram("serve.latency_s",
                               "served-request latency").observe(
                latency_s, tier=tier)
            if policy is not None and latency_s > policy.slo_s:
                registry.counter("serve.slo_misses",
                                 "completed requests over their tier "
                                 "objective").inc(1, tier=tier)
        monitor = _obs_health()
        if monitor is not None and policy is not None:
            monitor.observe_latency(tier, latency_s, policy.slo_s)

    def attainment(self, tier: str) -> float:
        """Fraction of completions within the tier objective (1.0 when
        nothing completed — an empty tier is not in violation)."""
        lats = self.latencies.get(tier, [])
        policy = self.policies.get(tier)
        if not lats or policy is None:
            return 1.0
        return sum(1 for v in lats if v <= policy.slo_s) / len(lats)

    def summary(self) -> dict:
        out = {}
        for tier, lats in self.latencies.items():
            policy = self.policies.get(tier)
            row = {"count": len(lats),
                   "slo_s": policy.slo_s if policy else None,
                   "attainment": self.attainment(tier)}
            if lats:
                arr = np.sort(np.asarray(lats))
                row.update(
                    p50_s=float(np.percentile(arr, 50)),
                    p95_s=float(np.percentile(arr, 95)),
                    p99_s=float(np.percentile(arr, 99)),
                    max_s=float(arr[-1]))
            out[tier] = row
        return out


@dataclass
class OneStepForecaster:
    """The ``fast`` tier's stepper: one consistency-student evaluation per
    data step (TrigFlow jump from pure noise at ``t = π/2`` straight to
    ``t = 0``), with the same stepping surface as
    :class:`~repro.diffusion.ResidualForecaster` — per-member seeded
    generators, stacked forwards, physical units in and out.
    """

    model: object
    state_norm: Normalizer
    residual_norm: Normalizer
    forcing_fn: object
    forcing_norm: Normalizer | None = None
    flow: TrigFlow = field(default_factory=TrigFlow)

    def _normalized_forcings(self, time_index: int) -> np.ndarray:
        forcings = self.forcing_fn(time_index)
        if self.forcing_norm is not None:
            forcings = self.forcing_norm.normalize(forcings)
        return forcings

    def step_members(self, states: np.ndarray,
                     time_indices: int | Sequence[int],
                     rngs: Sequence[np.random.Generator]) -> np.ndarray:
        """One data step for ``M`` members in one student forward."""
        m = len(rngs)
        if states.shape[0] != m:
            raise ValueError("one state row per generator required")
        if isinstance(time_indices, (int, np.integer)):
            time_indices = [int(time_indices)] * m
        elif len(time_indices) != m:
            raise ValueError("one time index per member required")
        sigma_d = self.flow.sigma_d
        with _span("sampler.one_step", category="diffusion", members=m,
                   time_index=int(time_indices[0])):
            cond = self.state_norm.normalize(states)
            forc_cache: dict[int, np.ndarray] = {}
            for idx in time_indices:
                if idx not in forc_cache:
                    forc_cache[idx] = self._normalized_forcings(idx)
            forc = np.stack([forc_cache[idx] for idx in time_indices])
            z = np.stack([rng.normal(0.0, sigma_d, size=states.shape[1:])
                          .astype(np.float32) for rng in rngs])
            t = np.full(m, np.pi / 2, dtype=np.float32)
            count_model_forwards(m)
            with no_grad():
                out = self.model(Tensor(z / sigma_d), Tensor(t),
                                 Tensor(cond), Tensor(forc))
            residual_std = self.flow.denoise_from_velocity(
                z, sigma_d * out.numpy(), t)
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("sampler.data_steps",
                                 "autoregressive data steps sampled").inc(m)
            return states + self.residual_norm.denormalize(residual_std)

    def step(self, state: np.ndarray, time_index: int,
             rng: np.random.Generator) -> np.ndarray:
        return self.step_members(state[None], time_index, [rng])[0]

    def member_rngs(self, n_members: int,
                    seed: int) -> list[np.random.Generator]:
        """Same seeding convention as the diffusion forecaster."""
        return [np.random.default_rng(seed + 1000 * m)
                for m in range(n_members)]

    def ensemble_rollout(self, state0: np.ndarray, n_steps: int,
                         n_members: int, seed: int = 0,
                         start_index: int = 0) -> np.ndarray:
        """``(n_members, n_steps + 1, H, W, C)`` one-step-student ensemble."""
        rngs = self.member_rngs(n_members, seed)
        out = np.empty((n_members, n_steps + 1) + state0.shape,
                       dtype=np.float32)
        out[:, 0] = state0
        with _span("sampler.one_step_rollout", category="diffusion",
                   n_steps=n_steps, members=n_members):
            states = out[:, 0].copy()
            for i in range(n_steps):
                states = self.step_members(states, start_index + i, rngs)
                out[:, i + 1] = states
        return out
