"""Priority admission queue with backpressure.

Admission control happens at :meth:`AdmissionQueue.submit`: a request is
either *accepted* (enters the priority heap) or *rejected* with a typed
:class:`~repro.serve.Rejected` — a full queue sheds load at the door
instead of letting latency grow without bound.  Two caps apply: a global
``max_depth`` and each tier's ``max_queue_depth`` (so a burst of ``high``
requests cannot starve the ``fast`` lane of queue slots).

Ordering is ``(tier priority, arrival order)`` — cheap tiers first, FIFO
within a tier.  Deadlines are enforced at *pop* time: a request that
waited past its tier's ``deadline_s`` is returned as expired (the service
answers it with a :class:`~repro.serve.Timeout`) rather than burning a
model forward on an answer nobody is waiting for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..obs.profile import health as _obs_health
from ..obs.profile import metrics as _obs_metrics
from .api import ForecastRequest, Rejected
from .samplers import TierPolicy, TierRouter

__all__ = ["QueueConfig", "PendingRequest", "AdmissionQueue"]


@dataclass(frozen=True)
class QueueConfig:
    """Global queue-depth cap (per-tier caps live on the tier policies)."""

    max_depth: int = 256


@dataclass(eq=False)
class PendingRequest:
    """An accepted request waiting for a micro-batch slot.

    ``version`` pins the model version the request was routed to at
    admission (canary routing happens *before* the queue, so a version
    swap mid-flight re-labels queued work explicitly via
    :meth:`AdmissionQueue.reassign_version` instead of silently serving
    a different model than the one admitted against).
    """

    request: ForecastRequest
    policy: TierPolicy
    enqueued_s: float
    seq: int
    version: str = ""

    def waited_s(self, now: float) -> float:
        return now - self.enqueued_s

    def expired(self, now: float) -> bool:
        return self.waited_s(now) > self.policy.deadline_s


class AdmissionQueue:
    """Bounded priority queue over :class:`PendingRequest`."""

    def __init__(self, router: TierRouter,
                 config: QueueConfig | None = None):
        self.router = router
        self.config = config if config is not None else QueueConfig()
        self._heap: list[tuple[int, int, PendingRequest]] = []
        self._seq = 0
        self.depths: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._heap)

    def depth(self, tier: str) -> int:
        return self.depths.get(tier, 0)

    def _gauge(self) -> None:
        registry = _obs_metrics()
        if registry is not None:
            for tier, depth in self.depths.items():
                registry.gauge("serve.queue_depth",
                               "requests waiting per tier").set(depth,
                                                                tier=tier)

    def submit(self, request: ForecastRequest,
               now: float, version: str = "") -> PendingRequest:
        """Admit or raise :class:`Rejected` (the caller books the tally)."""
        policy = self.router.route(request.tier)
        if len(self._heap) >= self.config.max_depth:
            raise Rejected("queue_full",
                           f"global depth cap {self.config.max_depth}")
        if self.depth(request.tier) >= policy.max_queue_depth:
            raise Rejected("tier_queue_full",
                           f"tier {request.tier!r} cap "
                           f"{policy.max_queue_depth}")
        pending = PendingRequest(request=request, policy=policy,
                                 enqueued_s=now, seq=self._seq,
                                 version=version)
        heapq.heappush(self._heap, (policy.priority, self._seq, pending))
        self._seq += 1
        self.depths[request.tier] = self.depth(request.tier) + 1
        self._gauge()
        monitor = _obs_health()
        if monitor is not None:
            monitor.observe_queue_depth(request.tier,
                                        self.depth(request.tier),
                                        policy.max_queue_depth)
        return pending

    def requeue(self, pending: PendingRequest) -> None:
        """Return a popped-but-unserved request to its exact heap position
        (original priority, original arrival order — no cap re-check, the
        slot was never released to anyone else this instant)."""
        heapq.heappush(self._heap,
                       (pending.policy.priority, pending.seq, pending))
        self.depths[pending.request.tier] = \
            self.depth(pending.request.tier) + 1
        self._gauge()

    def _remove(self, pending: PendingRequest) -> None:
        self.depths[pending.request.tier] -= 1
        self._gauge()

    def pop(self) -> PendingRequest | None:
        """Highest-priority pending request (no deadline check)."""
        if not self._heap:
            return None
        _, _, pending = heapq.heappop(self._heap)
        self._remove(pending)
        return pending

    def pop_live(self, now: float
                 ) -> tuple[PendingRequest | None, list[PendingRequest]]:
        """Next request still within its deadline, plus any expired ones
        drained on the way."""
        expired: list[PendingRequest] = []
        while self._heap:
            pending = self.pop()
            if pending.expired(now):
                expired.append(pending)
                continue
            return pending, expired
        return None, expired

    def peek_tier(self) -> str | None:
        """Tier of the current head (what the next batch will serve)."""
        return self._heap[0][2].request.tier if self._heap else None

    def pop_tier(self, tier: str,
                 version: str | None = None) -> PendingRequest | None:
        """Next pending request of ``tier`` (and, when given, ``version``)
        if it sits at the head of its priority class (FIFO within the
        tier is preserved; a batch never mixes model versions)."""
        if not self._heap:
            return None
        head = self._heap[0][2]
        if head.request.tier != tier:
            return None
        if version is not None and head.version != version:
            return None
        return self.pop()

    def reassign_version(self, src: str, dst: str) -> int:
        """Re-route every queued request pinned to version ``src`` onto
        ``dst`` (heap order is untouched — only the label changes).

        This is the zero-loss half of a rollback: when a canary version
        is withdrawn, its queued-but-unserved requests are explicitly
        handed to the restored incumbent instead of being dropped or
        left pointing at a binding that no longer exists.
        """
        moved = 0
        for _, _, pending in self._heap:
            if pending.version == src:
                pending.version = dst
                moved += 1
        return moved
