"""Replica worker pool under the :mod:`repro.resilience` fault machinery.

``N`` replica workers model serving capacity the way the training stack
models compute ranks: each worker is a logical rank with a virtual
``free_at`` horizon; a micro-batch is dispatched to the earliest-free
live worker, and the *measured wall time* of its stacked forwards becomes
the batch's virtual service duration.  With a :class:`SimCluster`
attached, batch inputs are shipped to the worker over the metered fabric
(``p2p`` transfers), which routes them through the fault injector: drops
and bit flips heal by checksum + retry exactly as training collectives
do, and a **fail-stop** marks the worker dead — capacity degrades to the
survivors and the batch fails over instead of dropping its requests.
Workers can also be SWiPe-sharded in spirit: pass a cluster whose ranks
carry a wider layout and the pool simply occupies one rank per replica.

Every failover and dead worker is booked through :mod:`repro.obs`
(``serve.worker_failovers``, ``resilience.dead_ranks``) so a serve chaos
run reconciles under :meth:`repro.obs.TraceReport.resilience_check` just
like a training chaos run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience import ClusterFailure, RankFailure, RetryPolicy

__all__ = ["WorkerState", "ServeWorkerPool"]


@dataclass(eq=False)
class WorkerState:
    """One replica worker: a logical rank plus its virtual busy horizon.

    ``loaded_version`` tracks which model version's weights are resident
    on the worker; a dispatch for a different version hot-swaps them
    first (booked as ``serve.weight_swaps`` / ``serve.weight_swap_bytes``
    — the cost a rolling canary deployment pays that steady-state serving
    does not).
    """

    rank: int
    free_at: float = 0.0
    alive: bool = True
    batches_served: int = 0
    loaded_version: str = ""
    weight_swaps: int = 0


class ServeWorkerPool:
    """Dispatches micro-batch executions across replica workers.

    Parameters
    ----------
    n_workers:
        Replica count (serving capacity).
    cluster:
        Optional :class:`~repro.parallel.SimCluster` whose first
        ``n_workers`` ranks host the replicas; rank ``n_workers`` is the
        dispatcher.  Requires ``n_ranks >= n_workers + 1``.  Batch inputs
        are shipped over its metered, fault-aware fabric.
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; defaults to the
        cluster's.  ``injector.advance(k)`` is called once per dispatch,
        so fail-stop events scheduled at "step" ``k`` kill a worker before
        its ``k``-th batch.
    retry:
        Bounds how many worker failovers one batch may attempt before the
        pool escalates :class:`~repro.resilience.ClusterFailure`.
    duration_fn:
        Optional ``result -> seconds`` mapping a finished batch result to
        its virtual service duration.  The default (``None``) charges the
        measured wall time of the stacked forwards — realistic, but it
        makes virtual completion times machine- and load-dependent.
        Deterministic simulation runs pass a model (e.g. seconds per
        stacked forward) so the whole event loop is bit-replayable.
    """

    def __init__(self, n_workers: int = 1, cluster=None, injector=None,
                 retry: RetryPolicy | None = None, duration_fn=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if cluster is not None and cluster.n_ranks < n_workers + 1:
            raise ValueError("cluster needs n_workers + 1 ranks "
                             "(replicas + dispatcher)")
        self.workers = [WorkerState(rank=r) for r in range(n_workers)]
        self.cluster = cluster
        self.injector = injector if injector is not None else (
            cluster.injector if cluster is not None else None)
        self.retry = retry if retry is not None else RetryPolicy()
        self.duration_fn = duration_fn
        self.dispatcher_rank = n_workers
        self.n_dispatches = 0

    @classmethod
    def from_plan(cls, plan, machine, *, max_workers: int = 8,
                  cluster=None, injector=None,
                  retry: RetryPolicy | None = None,
                  duration_fn=None) -> "ServeWorkerPool":
        """Size the replica pool from a :class:`TunedPlan` memory estimate.

        One serving replica needs a full model-parallel group's worth of
        memory — the plan's per-rank footprint times the ranks per DP
        replica (a conservative bound: inference skips gradients and
        optimizer state).  The pool packs as many replicas as fit in one
        node of ``machine``, clamped to ``[1, max_workers]``.
        """
        ranks_per_replica = plan.chosen.world_size // plan.chosen.dp
        per_replica_gb = plan.chosen.memory_gb * ranks_per_replica
        node_gb = machine.tiles_per_node * machine.tile_memory_gb
        if per_replica_gb > 0:
            n = int(node_gb // per_replica_gb)
        else:
            n = max_workers
        n = max(1, min(max_workers, n))
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("serve.plan_workers",
                           "replica count sized from the tuned plan").set(n)
        _record_event("serve.plan_sized", subsystem="serve", n_workers=n,
                      layout=plan.chosen.layout_key,
                      memory_gb=plan.chosen.memory_gb)
        return cls(n, cluster=cluster, injector=injector, retry=retry,
                   duration_fn=duration_fn)

    def live_workers(self) -> list[WorkerState]:
        return [w for w in self.workers if w.alive]

    def earliest_free(self) -> float:
        """Virtual time the next live worker frees up (inf if none live)."""
        live = self.live_workers()
        if not live:
            return float("inf")
        return min(w.free_at for w in live)

    def _mark_dead(self, worker: WorkerState, primitive: str) -> None:
        worker.alive = False
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("resilience.dead_ranks",
                             "workers lost to fail-stop").inc(
                1, scope="serve")
            registry.gauge("serve.live_workers",
                           "replica workers still serving").set(
                len(self.live_workers()))
        _record_event("serve.worker_dead", subsystem="serve",
                      severity="critical", rank=worker.rank,
                      primitive=primitive,
                      live_workers=len(self.live_workers()))
        with _span("resilience.worker_failstop", category="resilience",
                   rank=worker.rank, primitive=primitive):
            pass

    def _ship_inputs(self, worker: WorkerState, payload: np.ndarray | None,
                     nbytes: int) -> None:
        """Move the batch input to the worker over the metered fabric
        (fault-aware: transient faults heal, dead ranks raise)."""
        if self.cluster is None or nbytes <= 0:
            if self.injector is not None:
                self.injector.raise_if_dead([worker.rank], "serve")
            return
        self.cluster.transfer("p2p", self.dispatcher_rank, worker.rank,
                              nbytes, payload=payload)

    def _swap_weights(self, worker: WorkerState, version: str,
                      weights_nbytes: int) -> None:
        """Hot-swap the worker onto ``version``'s weights if a different
        version (or none) is resident.  The swap bytes ride the same
        metered fabric as batch inputs, so a rolling deployment's weight
        traffic shows up in the comm ledger like any other transfer."""
        if not version or worker.loaded_version == version:
            return
        previous = worker.loaded_version
        if self.cluster is not None and weights_nbytes > 0:
            self.cluster.transfer("p2p", self.dispatcher_rank, worker.rank,
                                  weights_nbytes)
        worker.loaded_version = version
        worker.weight_swaps += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.weight_swaps",
                             "model-version hot swaps on workers").inc(
                1, version=version)
            registry.counter("serve.weight_swap_bytes",
                             "weight bytes shipped for hot swaps").inc(
                weights_nbytes, version=version)
        _record_event("serve.weight_swap", subsystem="serve",
                      rank=worker.rank, version=version,
                      previous=previous, nbytes=weights_nbytes)

    def dispatch(self, now: float, execute: Callable[[], object],
                 payload: np.ndarray | None = None,
                 exclude: int | None = None, version: str = "",
                 weights_nbytes: int = 0
                 ) -> tuple[WorkerState, float, object]:
        """Run ``execute`` on the earliest-free live worker.

        Returns ``(worker, end_s, result)`` where ``end_s`` is the virtual
        completion time: ``max(now, worker.free_at)`` plus the measured
        wall duration of the stacked forwards.  A dead worker fails over
        to the next live one (bounded by the retry policy); transient
        fabric faults that exhaust their retries propagate as the typed
        resilience errors.  ``exclude`` steers the batch away from one
        rank — a guardrail re-run must land on a *different* worker so a
        sticky-faulty replica can't re-serve its own corruption — unless
        that rank is the only live capacity left.  ``version`` names the
        model version the batch needs; a worker holding different weights
        hot-swaps (see :meth:`_swap_weights`) before serving.
        """
        if self.injector is not None:
            self.injector.advance(self.n_dispatches)
        self.n_dispatches += 1
        nbytes = int(payload.nbytes) if payload is not None else 0
        attempts = 0
        while True:
            live = self.live_workers()
            if not live:
                raise ClusterFailure("no live serve workers")
            candidates = [w for w in live if w.rank != exclude] or live
            worker = min(candidates, key=lambda w: (w.free_at, w.rank))
            try:
                self._ship_inputs(worker, payload, nbytes)
                self._swap_weights(worker, version, weights_nbytes)
            except RankFailure:
                self._mark_dead(worker, "serve")
                attempts += 1
                if attempts > self.retry.max_retries:
                    raise ClusterFailure(
                        f"batch failed over {attempts} times") from None
                registry = _obs_metrics()
                if registry is not None:
                    registry.counter("serve.worker_failovers",
                                     "batches re-dispatched after a "
                                     "worker fail-stop").inc()
                continue
            start = max(now, worker.free_at)
            wall0 = time.perf_counter()
            with _span("serve.forward", category="serve",
                       worker=worker.rank):
                result = execute()
            if self.duration_fn is not None:
                duration = float(self.duration_fn(result))
            else:
                duration = time.perf_counter() - wall0
            end = start + duration
            worker.free_at = end
            worker.batches_served += 1
            return worker, end, result

    def stats(self) -> dict:
        return {
            "n_workers": len(self.workers),
            "live": len(self.live_workers()),
            "dispatches": self.n_dispatches,
            "per_worker": [{"rank": w.rank, "alive": w.alive,
                            "batches": w.batches_served,
                            "busy_until_s": w.free_at,
                            "loaded_version": w.loaded_version,
                            "weight_swaps": w.weight_swaps}
                           for w in self.workers],
        }
