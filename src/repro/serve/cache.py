"""Content-addressed forecast cache with LRU eviction and byte accounting.

An autoregressive member trajectory is fully determined by *content*:
the model weights, the initial state, the member's noise seed, the solver
configuration, and the forcing calendar position.  Each cache entry is
one member-state at one lead, keyed by the digest of exactly that tuple —
so a repeated query is a pure lookup, a *longer* query resumes from the
longest cached prefix (the entry carries the member generator's state
after that lead), and retraining the model (new weights digest) silently
invalidates every stale entry without any flush logic.

This is the serving-tier analogue of the *Exascale Climate Emulators*
observation: at scale you cache/emulate forecasts, you don't recompute
them.  Hits, misses, evictions, and resident bytes are booked through
:mod:`repro.obs` (``serve.cache`` counters, ``serve.cache_bytes`` gauge).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..resilience.checksum import content_digest, state_digest

__all__ = ["array_digest", "weights_digest", "solver_digest",
           "forecast_key", "CacheEntry", "ForecastCache"]


def array_digest(array: np.ndarray) -> str:
    """SHA-256 over dtype, shape, and raw bytes (content address)."""
    return content_digest(array)


def weights_digest(model) -> str:
    """SHA-256 over a model's full ``state_dict`` (sorted by name).

    Delegates to :func:`repro.resilience.checksum.state_digest` so the
    registry's weight-blob digests and the serving cache's version keys
    are the *same* hash over the same bytes.
    """
    return state_digest(model.state_dict())


def solver_digest(solver_config) -> str:
    """Stable digest of a sampler configuration.

    ``None`` addresses the one-step consistency jump (the ``fast`` tier
    has no ODE schedule to parameterize).
    """
    if solver_config is None:
        text = "consistency-one-step"
    else:
        text = (f"dpm2s|n_steps={solver_config.n_steps}"
                f"|churn={solver_config.churn!r}"
                f"|t_end={solver_config.t_end!r}")
    return hashlib.sha256(text.encode()).hexdigest()


def forecast_key(weights: str, init: str, member_seed: int, solver: str,
                 start_index: int, lead: int) -> str:
    """Content address of one member-state at one lead."""
    text = f"{weights}|{init}|{member_seed}|{solver}|{start_index}|{lead}"
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(eq=False)
class CacheEntry:
    """One member-state at one lead, plus the member generator's state
    *after* producing it (what prefix-resumption needs)."""

    key: str
    state: np.ndarray
    rng_state: dict
    nbytes: int


class ForecastCache:
    """LRU cache of :class:`CacheEntry` under a byte budget.

    ``get``/``put`` are O(1); eviction walks the LRU tail until the
    resident set fits.  Entries larger than the whole budget are refused
    (counted, not stored).  Stored states are copied on the way in so a
    caller mutating its arrays cannot corrupt cached content.
    """

    def __init__(self, max_bytes: int = 256 << 20):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def _count(self, event: str) -> None:
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.cache",
                             "forecast-cache lookups and evictions").inc(
                1, event=event)
            registry.gauge("serve.cache_bytes",
                           "resident forecast-cache bytes").set(
                self.current_bytes)
            registry.gauge("serve.cache_occupancy_frac",
                           "resident bytes / byte budget").set(
                self.current_bytes / self.max_bytes)

    def get(self, key: str) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("miss")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._count("hit")
        return entry

    def put(self, key: str, state: np.ndarray, rng_state: dict) -> bool:
        """Insert (or refresh) an entry; returns False if it cannot fit."""
        nbytes = int(state.nbytes)
        if nbytes > self.max_bytes:
            self.oversize += 1
            self._count("oversize")
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= old.nbytes
        while self.current_bytes + nbytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.current_bytes -= evicted.nbytes
            self.evictions += 1
            self._count("evict")
        self._entries[key] = CacheEntry(key=key, state=np.array(state),
                                        rng_state=rng_state, nbytes=nbytes)
        self.current_bytes += nbytes
        self._count("put")
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.current_bytes = 0

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes": self.current_bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "evictions": self.evictions,
            "oversize": self.oversize,
        }
