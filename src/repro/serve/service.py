"""``ForecastService``: the serving event loop tying queue, batcher,
cache, tiers, and workers together.

The service is a discrete-event simulation of a production inference
tier, the same way :class:`~repro.parallel.SimCluster` is one of a
fabric: requests arrive on a virtual clock (their ``arrival_s`` stamps),
admission and batching are instantaneous, and each micro-batch occupies
its worker for the *measured wall time* of its stacked model forwards.
Latency percentiles, SLO attainment, and capacity degradation under
worker fail-stops therefore come out of real compute against a
reproducible arrival process.

Serving pipeline per batch::

    queue (priority, admission, deadlines)
      → micro-batcher (coalesce same-tier requests; one stacked forward
        per solver evaluation serves every member)
      → cache restore (longest content-addressed prefix per member)
      → tier sampler (fast: consistency student; standard/high: DPM 2S)
      → cache fill + response assembly

For a fixed seed the served forecast is **bit-identical** to a direct
:meth:`ResidualForecaster.ensemble_rollout` at the same tier — batching
is per-row exact and cache entries are exact copies — which is asserted
end-to-end by ``tests/serve``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Sequence

import numpy as np

from ..diffusion import ResidualForecaster
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience import ResilienceError, RetryPolicy
from .api import ForecastRequest, ForecastResponse, Rejected, Timeout
from .batcher import BatcherConfig, MemberTask, MicroBatch, MicroBatcher
from .cache import ForecastCache, array_digest, forecast_key, \
    solver_digest, weights_digest
from .queue import AdmissionQueue, PendingRequest, QueueConfig
from .samplers import OneStepForecaster, SloTracker, TierRouter
from .worker import ServeWorkerPool

__all__ = ["ServiceConfig", "ModelBinding", "ForecastService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (tier policies live on the router)."""

    n_workers: int = 1
    cache_bytes: int = 64 << 20
    queue: QueueConfig = field(default_factory=QueueConfig)
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    #: Re-dispatches a quarantined batch may attempt (on a *different*
    #: worker) before its still-invalid requests fail.
    guardrail_reruns: int = 1


@dataclass(eq=False)
class ModelBinding:
    """One servable model version: per-tier steppers + content digests.

    The binding is what a request is routed *to*: ``steppers[tier]`` runs
    the forecast, ``digests[tier]`` namespaces its cache entries, and
    ``weights_digest`` is the version's identity — the same SHA-256 the
    registry records, so "which weights are live" is answerable by digest
    comparison alone (``TraceReport.deploy_check`` relies on this to
    prove a rollback restored the incumbent exactly).
    """

    version: str
    steppers: dict[str, object]
    digests: dict[str, tuple[str, str]]
    weights_digest: str
    weights_nbytes: int
    field_shape: tuple | None


class ForecastService:
    """Serves :class:`ForecastRequest`\\ s in front of a trained model.

    Parameters
    ----------
    forecaster:
        The diffusion path (``standard`` / ``high`` tiers): typically
        ``trainer.forecaster()`` — EMA weights, paper solver defaults.
        Its solver config is *overridden per tier* by the router's
        policies.
    student:
        Optional consistency-distilled one-step model (``fast`` tier).
        Without it, fast requests are rejected as ``tier_unavailable``.
    variable_names:
        Channel names of the state vector, enabling per-request variable
        subsetting (e.g. ``repro.data.TOY_SET.names``).
    cluster / injector / retry:
        Resilience wiring for the worker pool (see
        :class:`~repro.serve.ServeWorkerPool`).
    duration_fn:
        Optional ``result -> seconds`` virtual-duration model forwarded
        to the worker pool; ``None`` keeps the default wall-clock
        charging (deterministic simulation runs pass an analytic model
        so the event loop replays bit-exactly).
    validator:
        Optional :class:`~repro.serve.ForecastValidator`.  When set,
        every served forecast is checked against per-variable physical
        bounds *before* the response leaves the service; a violating
        batch is quarantined, re-run on a different worker (bounded by
        ``ServiceConfig.guardrail_reruns``), and fails only if still
        absurd.
    """

    def __init__(self, forecaster: ResidualForecaster, student=None,
                 config: ServiceConfig | None = None,
                 router: TierRouter | None = None,
                 variable_names: Sequence[str] | None = None,
                 cluster=None, injector=None,
                 retry: RetryPolicy | None = None,
                 validator=None, version: str = "v0",
                 plan=None, machine=None, duration_fn=None):
        self.config = config if config is not None else ServiceConfig()
        self.router = router if router is not None else TierRouter()
        self.base = forecaster
        self.validator = validator
        self.variable_names = (list(variable_names)
                               if variable_names is not None else None)
        self.cache = ForecastCache(self.config.cache_bytes)
        self.queue = AdmissionQueue(self.router, self.config.queue)
        self.batcher = MicroBatcher(self.queue, self.config.batcher)
        if plan is not None:
            # A tuned plan overrides n_workers: pack as many replicas as
            # its memory estimate says fit on one node of ``machine``.
            if machine is None:
                from ..perf.machine import AURORA
                machine = AURORA
            self.pool = ServeWorkerPool.from_plan(
                plan, machine, cluster=cluster, injector=injector,
                retry=retry, duration_fn=duration_fn)
        else:
            self.pool = ServeWorkerPool(self.config.n_workers,
                                        cluster=cluster, injector=injector,
                                        retry=retry,
                                        duration_fn=duration_fn)
        self.slo = SloTracker(self.router.policies)
        # Model versions.  Every loaded version gets a ModelBinding;
        # requests are pinned to a version at admission (by the optional
        # version_router, else the active version) and a micro-batch
        # never mixes versions.
        self.bindings: dict[str, ModelBinding] = {}
        self.active_version = version
        #: Optional ``request -> version`` override (canary routing).
        self.version_router = None
        #: Optional ``(response, now) -> None`` tap, called for every
        #: response the event loop emits (the deployment controller's
        #: online observation point).
        self.response_hook = None
        self.bindings[version] = self._build_binding(version, forecaster,
                                                     student)
        self.tally = {"submitted": 0, "accepted": 0, "rejected": 0,
                      "completed": 0, "timeout": 0, "failed": 0}

    # -- model versions ------------------------------------------------------
    def _build_binding(self, version: str,
                       forecaster: ResidualForecaster,
                       student=None) -> ModelBinding:
        """Per-tier steppers + content digests for one model version.
        A tier whose model is missing (no student) simply isn't served
        by this version."""
        base_digest = weights_digest(forecaster.model)
        steppers: dict[str, object] = {}
        digests: dict[str, tuple[str, str]] = {}
        for name, policy in self.router.policies.items():
            if policy.solver_config is None:
                if student is None:
                    continue
                steppers[name] = OneStepForecaster(
                    model=student, state_norm=forecaster.state_norm,
                    residual_norm=forecaster.residual_norm,
                    forcing_fn=forecaster.forcing_fn,
                    forcing_norm=forecaster.forcing_norm,
                    flow=forecaster.flow)
                digests[name] = (weights_digest(student),
                                 solver_digest(None))
            else:
                steppers[name] = _dc_replace(
                    forecaster, solver_config=policy.solver_config)
                digests[name] = (base_digest,
                                 solver_digest(policy.solver_config))
        cfg = getattr(forecaster.model, "config", None)
        field_shape = ((cfg.height, cfg.width, cfg.channels)
                       if cfg is not None else None)
        nbytes = sum(int(np.asarray(a).nbytes)
                     for a in forecaster.model.state_dict().values())
        return ModelBinding(version=version, steppers=steppers,
                            digests=digests, weights_digest=base_digest,
                            weights_nbytes=nbytes, field_shape=field_shape)

    def add_version(self, version: str, forecaster: ResidualForecaster,
                    student=None) -> ModelBinding:
        """Load an additional servable version (does not shift traffic —
        routing is the ``version_router``'s / ``set_active``'s job)."""
        if version in self.bindings:
            raise ValueError(f"version {version!r} already loaded")
        binding = self._build_binding(version, forecaster, student)
        active = self.bindings[self.active_version]
        if (binding.field_shape is not None
                and active.field_shape is not None
                and binding.field_shape != active.field_shape):
            raise ValueError(
                f"version {version!r} field shape {binding.field_shape} "
                f"differs from active {active.field_shape}")
        self.bindings[version] = binding
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("serve.loaded_versions",
                           "model versions loaded").set(len(self.bindings))
        _record_event("serve.version_loaded", subsystem="serve",
                      version=version,
                      weights=binding.weights_digest[:12])
        return binding

    def set_active(self, version: str) -> None:
        """Make ``version`` the default target for new admissions."""
        if version not in self.bindings:
            raise ValueError(f"version {version!r} not loaded")
        previous, self.active_version = self.active_version, version
        _record_event("serve.version_activated", subsystem="serve",
                      version=version, previous=previous)

    def remove_version(self, version: str) -> int:
        """Unload a version; queued requests pinned to it are re-routed
        to the active version (returned count) — no request is lost."""
        if version == self.active_version:
            raise ValueError("cannot remove the active version")
        if version not in self.bindings:
            raise ValueError(f"version {version!r} not loaded")
        del self.bindings[version]
        moved = self.queue.reassign_version(version, self.active_version)
        registry = _obs_metrics()
        if registry is not None:
            registry.gauge("serve.loaded_versions",
                           "model versions loaded").set(len(self.bindings))
            if moved:
                registry.counter(
                    "serve.requests_reassigned",
                    "queued requests re-routed off an unloaded "
                    "version").inc(moved, src=version,
                                   dst=self.active_version)
        _record_event("serve.version_unloaded", subsystem="serve",
                      version=version, reassigned=moved)
        return moved

    def stepper(self, tier: str, version: str | None = None):
        """The stepper serving ``tier`` for ``version`` (default active).
        Useful for comparing served output against a direct rollout —
        they are bit-identical for the same seed."""
        binding = self.bindings[version if version is not None
                                else self.active_version]
        return binding.steppers[tier]

    def _route_version(self, request: ForecastRequest) -> str:
        version = self.active_version
        if self.version_router is not None:
            version = self.version_router(request)
        if version not in self.bindings:
            raise Rejected("version_unavailable",
                           f"version {version!r} not loaded")
        return version

    # -- accounting ----------------------------------------------------------
    def _count(self, event: str, tier: str, **labels) -> None:
        self.tally[event] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.requests",
                             "request lifecycle events").inc(
                1, event=event, tier=tier, **labels)
        _record_event(f"serve.{event}", subsystem="serve",
                      severity=("warning" if event in ("rejected",
                                                       "timeout", "failed")
                                else "info"), tier=tier, **labels)

    # -- admission -----------------------------------------------------------
    def _variable_indices(self, request: ForecastRequest) -> list[int] | None:
        if request.variables is None:
            return None
        if self.variable_names is None:
            raise Rejected("unknown_variable",
                           "service has no variable names configured")
        try:
            return [self.variable_names.index(v) for v in request.variables]
        except ValueError as exc:
            raise Rejected("unknown_variable", str(exc)) from None

    def _admit(self, request: ForecastRequest,
               now: float) -> ForecastResponse | None:
        """Queue the request; a rejection becomes an immediate response."""
        self._count("submitted", request.tier)
        try:
            version = self._route_version(request)
            binding = self.bindings[version]
            if request.tier not in binding.steppers:
                raise Rejected("tier_unavailable",
                               f"tier {request.tier!r} has no model in "
                               f"version {version!r}")
            if (binding.field_shape is not None
                    and tuple(request.init_state.shape)
                    != binding.field_shape):
                raise Rejected("bad_shape",
                               f"want {binding.field_shape}, got "
                               f"{tuple(request.init_state.shape)}")
            self._variable_indices(request)
            self.queue.submit(request, now, version=version)
        except Rejected as exc:
            self._count("rejected", request.tier, reason=exc.reason)
            return ForecastResponse(request=request, status="rejected",
                                    error=str(exc))
        self._count("accepted", request.tier, version=version)
        return None

    # -- responses -----------------------------------------------------------
    def _timeout_response(self, pending: PendingRequest,
                          now: float) -> ForecastResponse:
        err = Timeout(pending.waited_s(now), pending.policy.deadline_s)
        self._count("timeout", pending.request.tier,
                    version=pending.version)
        return ForecastResponse(request=pending.request, status="timeout",
                                error=str(err),
                                queue_wait_s=pending.waited_s(now),
                                version=pending.version)

    def _failed_response(self, pending: PendingRequest,
                         error: str) -> ForecastResponse:
        self._count("failed", pending.request.tier,
                    version=pending.version)
        return ForecastResponse(request=pending.request, status="failed",
                                error=error, version=pending.version)

    def _emit(self, responses: list, response: ForecastResponse,
              now: float) -> None:
        """Append a response and fire the observation hook.  The hook
        runs between event-loop steps, so a deployment controller may
        swap routing / bindings here without racing an in-flight batch."""
        responses.append(response)
        if self.response_hook is not None:
            self.response_hook(response, now)

    # -- cache interaction ---------------------------------------------------
    def _restore_prefix(self, task: MemberTask, weights: str,
                        solver: str) -> None:
        """Walk the content-addressed prefix forward while cached, leaving
        the task's state/rng/trajectory positioned at the longest hit."""
        req = task.pending.request
        task.init_digest = array_digest(task.state)
        last = None
        while task.lead < task.target:
            key = forecast_key(weights, task.init_digest, task.member_seed,
                               solver, req.start_index, task.lead + 1)
            entry = self.cache.get(key)
            if entry is None:
                task.cache_misses += 1
                break
            task.trajectory.append(entry.state)
            task.lead += 1
            task.cache_hits += 1
            last = entry
        if last is not None:
            task.state = last.state
            task.rng.bit_generator.state = last.rng_state

    # -- batch execution -----------------------------------------------------
    def _dispatch(self, now: float, batch: MicroBatch,
                  payload: np.ndarray, exclude: int | None = None):
        """Dispatch a batch to the pool under its version's weights (the
        pool hot-swaps the worker if it holds a different version)."""
        binding = self.bindings[batch.version]
        return self.pool.dispatch(
            now, lambda: self._execute(batch), payload=payload,
            exclude=exclude, version=batch.version,
            weights_nbytes=binding.weights_nbytes)

    def _execute(self, batch: MicroBatch) -> dict:
        """Run one micro-batch to completion: restore cached prefixes,
        advance every unfinished member through stacked forwards, cache
        each new step.  Returns per-pending results."""
        policy = batch.policy
        binding = self.bindings[batch.version]
        stepper = binding.steppers[policy.name]
        weights, solver = binding.digests[policy.name]
        tasks = MicroBatcher.member_tasks(batch)
        with _span("serve.cache", category="serve", tier=policy.name,
                   members=len(tasks)):
            for task in tasks:
                self._restore_prefix(task, weights, solver)
        forwards = 0
        while True:
            active = [t for t in tasks if not t.done]
            if not active:
                break
            states = np.stack([t.state for t in active])
            indices = [t.time_index() for t in active]
            rngs = [t.rng for t in active]
            new_states = stepper.step_members(states, indices, rngs)
            forwards += policy.forwards_per_data_step()
            for k, task in enumerate(active):
                task.state = new_states[k]
                task.lead += 1
                task.trajectory.append(task.state)
                key = forecast_key(weights, task.init_digest,
                                   task.member_seed, solver,
                                   task.pending.request.start_index,
                                   task.lead)
                self.cache.put(key, task.state,
                               task.rng.bit_generator.state)
        # Assemble per-request forecasts.
        by_pending: dict[int, list[MemberTask]] = {}
        for task in tasks:
            by_pending.setdefault(id(task.pending), []).append(task)
        results = {}
        for pending in batch.requests:
            members = by_pending[id(pending)]
            members.sort(key=lambda t: t.member)
            forecast = np.stack([np.stack(t.trajectory) for t in members])
            results[id(pending)] = {
                "forecast": forecast.astype(np.float32, copy=False),
                "cache_hits": sum(t.cache_hits for t in members),
                "cache_misses": sum(t.cache_misses for t in members),
            }
        return {"per_request": results, "forwards": forwards,
                "members": len(tasks)}

    def _subset(self, request: ForecastRequest,
                forecast: np.ndarray) -> np.ndarray:
        indices = self._variable_indices(request)
        return forecast if indices is None else forecast[..., indices]

    # -- physical guardrails -------------------------------------------------
    def _poison_result(self, batch: MicroBatch, result: dict) -> None:
        """Compute-domain fault injection at the output boundary: when the
        injector fires a ``forecast`` fault for this dispatch, poison the
        assembled response arrays (copies — the cache stays clean, exactly
        like hardware corrupting a response buffer after the fact)."""
        inj = self.pool.injector
        if inj is not None and inj.compute_fault("forecast"):
            inj.poison_forecast([result["per_request"][id(p)]["forecast"]
                                 for p in batch.requests])

    def _record_quarantine(self, pending: PendingRequest, violations,
                           worker_rank: int) -> None:
        tier = pending.request.tier
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.forecasts_quarantined",
                             "forecasts failing physical guardrails").inc(
                1, tier=tier)
        _record_event("serve.forecast_quarantined", subsystem="serve",
                      severity="critical", tier=tier, worker=worker_rank,
                      violations="; ".join(v.render()
                                           for v in violations[:4]))
        with _span("resilience.forecast_sdc", category="resilience",
                   tier=tier, worker=worker_rank):
            pass

    def _guard_result(self, batch: MicroBatch, payload: np.ndarray,
                      worker, end: float, result: dict
                      ) -> tuple[object, float, dict, dict, set]:
        """Validate every per-request forecast against the physical
        guardrails; quarantine + re-dispatch on a different worker while
        re-runs remain.  Returns ``(worker, end, result, quarantine_counts,
        failed_ids)`` — requests in ``failed_ids`` were still invalid after
        the last permitted re-run."""
        self._poison_result(batch, result)
        if self.validator is None:
            return worker, end, result, {}, set()
        qcounts: dict[int, int] = {}
        reruns = 0
        while True:
            bad = []
            for pending in batch.requests:
                per = result["per_request"][id(pending)]
                violations = self.validator.validate(per["forecast"])
                if violations:
                    bad.append(pending)
                    qcounts[id(pending)] = qcounts.get(id(pending), 0) + 1
                    self._record_quarantine(pending, violations, worker.rank)
            if not bad:
                return worker, end, result, qcounts, set()
            if reruns >= self.config.guardrail_reruns:
                return worker, end, result, qcounts, {id(p) for p in bad}
            reruns += 1
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("serve.guardrail_reruns",
                                 "quarantined batches re-dispatched").inc(
                    1, tier=batch.policy.name)
            _record_event("serve.guardrail_rerun", subsystem="serve",
                          severity="warning", tier=batch.policy.name,
                          excluded_worker=worker.rank,
                          quarantined=len(bad))
            try:
                worker, end, result = self._dispatch(
                    end, batch, payload, exclude=worker.rank)
            except ResilienceError:
                return worker, end, result, qcounts, \
                    {id(p) for p in batch.requests}
            self._poison_result(batch, result)

    # -- the event loop ------------------------------------------------------
    def run(self, requests: Sequence[ForecastRequest],
            start_s: float = 0.0) -> list[ForecastResponse]:
        """Serve a batch of arrival-stamped requests to completion.

        Virtual time starts at ``start_s``; arrivals are admitted at their
        stamps, micro-batches dispatch whenever a worker is free, and the
        loop ends when every request is answered (completed, rejected,
        timed out, or failed)."""
        arrivals = sorted(requests, key=lambda r: r.arrival_s)
        responses: list[ForecastResponse] = []
        now = start_s
        i = 0
        while True:
            while i < len(arrivals) and arrivals[i].arrival_s <= now:
                rejected = self._admit(arrivals[i], now)
                if rejected is not None:
                    self._emit(responses, rejected, now)
                i += 1
            if not len(self.queue):
                if i >= len(arrivals):
                    break
                now = max(now, arrivals[i].arrival_s)
                continue
            free_at = self.pool.earliest_free()
            if free_at == float("inf"):
                # Capacity is gone: answer everything still queued.
                while len(self.queue):
                    pending = self.queue.pop()
                    self._emit(responses, self._failed_response(
                        pending, "no live serve workers"), now)
                continue
            if free_at > now:
                if i < len(arrivals) and arrivals[i].arrival_s < free_at:
                    now = arrivals[i].arrival_s
                else:
                    now = free_at
                continue
            batch, expired = self.batcher.next_batch(now)
            for pending in expired:
                self._emit(responses, self._timeout_response(pending, now),
                           now)
            if batch is None:
                continue
            payload = np.stack([np.asarray(p.request.init_state,
                                           dtype=np.float32)
                                for p in batch.requests
                                for _ in range(p.request.n_members)])
            try:
                worker, end, result = self._dispatch(now, batch, payload)
            except ResilienceError as exc:
                for pending in batch.requests:
                    self._emit(responses,
                               self._failed_response(pending, str(exc)),
                               now)
                continue
            worker, end, result, qcounts, failed_ids = self._guard_result(
                batch, payload, worker, end, result)
            for pending in batch.requests:
                req = pending.request
                if id(pending) in failed_ids:
                    self._emit(responses, self._failed_response(
                        pending, "forecast failed physical guardrails"),
                        end)
                    continue
                per = result["per_request"][id(pending)]
                latency = end - req.arrival_s
                self._count("completed", req.tier, version=batch.version)
                self.slo.record(req.tier, latency)
                self._emit(responses, ForecastResponse(
                    request=req, status="completed",
                    forecast=self._subset(req, per["forecast"]),
                    latency_s=latency,
                    queue_wait_s=batch.assembled_s - pending.enqueued_s,
                    worker=worker.rank,
                    batch_forwards=result["forwards"],
                    batch_members=result["members"],
                    cache_hits=per["cache_hits"],
                    cache_misses=per["cache_misses"],
                    quarantines=qcounts.get(id(pending), 0),
                    version=batch.version), end)
        return responses

    def serve(self, request: ForecastRequest) -> ForecastResponse:
        """Synchronous single-request convenience."""
        return self.run([request], start_s=request.arrival_s)[0]

    def stats(self) -> dict:
        return {"tally": dict(self.tally), "cache": self.cache.stats(),
                "workers": self.pool.stats(), "slo": self.slo.summary(),
                "versions": {
                    "active": self.active_version,
                    "loaded": {v: b.weights_digest[:12]
                               for v, b in self.bindings.items()}}}
