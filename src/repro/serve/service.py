"""``ForecastService``: the serving event loop tying queue, batcher,
cache, tiers, and workers together.

The service is a discrete-event simulation of a production inference
tier, the same way :class:`~repro.parallel.SimCluster` is one of a
fabric: requests arrive on a virtual clock (their ``arrival_s`` stamps),
admission and batching are instantaneous, and each micro-batch occupies
its worker for the *measured wall time* of its stacked model forwards.
Latency percentiles, SLO attainment, and capacity degradation under
worker fail-stops therefore come out of real compute against a
reproducible arrival process.

Serving pipeline per batch::

    queue (priority, admission, deadlines)
      → micro-batcher (coalesce same-tier requests; one stacked forward
        per solver evaluation serves every member)
      → cache restore (longest content-addressed prefix per member)
      → tier sampler (fast: consistency student; standard/high: DPM 2S)
      → cache fill + response assembly

For a fixed seed the served forecast is **bit-identical** to a direct
:meth:`ResidualForecaster.ensemble_rollout` at the same tier — batching
is per-row exact and cache entries are exact copies — which is asserted
end-to-end by ``tests/serve``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace
from typing import Sequence

import numpy as np

from ..diffusion import ResidualForecaster
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from ..obs.profile import span as _span
from ..resilience import ResilienceError, RetryPolicy
from .api import ForecastRequest, ForecastResponse, Rejected, Timeout
from .batcher import BatcherConfig, MemberTask, MicroBatch, MicroBatcher
from .cache import ForecastCache, array_digest, forecast_key, \
    solver_digest, weights_digest
from .queue import AdmissionQueue, PendingRequest, QueueConfig
from .samplers import OneStepForecaster, SloTracker, TierRouter
from .worker import ServeWorkerPool

__all__ = ["ServiceConfig", "ForecastService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (tier policies live on the router)."""

    n_workers: int = 1
    cache_bytes: int = 64 << 20
    queue: QueueConfig = field(default_factory=QueueConfig)
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    #: Re-dispatches a quarantined batch may attempt (on a *different*
    #: worker) before its still-invalid requests fail.
    guardrail_reruns: int = 1


class ForecastService:
    """Serves :class:`ForecastRequest`\\ s in front of a trained model.

    Parameters
    ----------
    forecaster:
        The diffusion path (``standard`` / ``high`` tiers): typically
        ``trainer.forecaster()`` — EMA weights, paper solver defaults.
        Its solver config is *overridden per tier* by the router's
        policies.
    student:
        Optional consistency-distilled one-step model (``fast`` tier).
        Without it, fast requests are rejected as ``tier_unavailable``.
    variable_names:
        Channel names of the state vector, enabling per-request variable
        subsetting (e.g. ``repro.data.TOY_SET.names``).
    cluster / injector / retry:
        Resilience wiring for the worker pool (see
        :class:`~repro.serve.ServeWorkerPool`).
    validator:
        Optional :class:`~repro.serve.ForecastValidator`.  When set,
        every served forecast is checked against per-variable physical
        bounds *before* the response leaves the service; a violating
        batch is quarantined, re-run on a different worker (bounded by
        ``ServiceConfig.guardrail_reruns``), and fails only if still
        absurd.
    """

    def __init__(self, forecaster: ResidualForecaster, student=None,
                 config: ServiceConfig | None = None,
                 router: TierRouter | None = None,
                 variable_names: Sequence[str] | None = None,
                 cluster=None, injector=None,
                 retry: RetryPolicy | None = None,
                 validator=None):
        self.config = config if config is not None else ServiceConfig()
        self.router = router if router is not None else TierRouter()
        self.base = forecaster
        self.validator = validator
        self.variable_names = (list(variable_names)
                               if variable_names is not None else None)
        self.cache = ForecastCache(self.config.cache_bytes)
        self.queue = AdmissionQueue(self.router, self.config.queue)
        self.batcher = MicroBatcher(self.queue, self.config.batcher)
        self.pool = ServeWorkerPool(self.config.n_workers, cluster=cluster,
                                    injector=injector, retry=retry)
        self.slo = SloTracker(self.router.policies)
        # Per-tier steppers + content digests.  A tier whose model is
        # missing (no student) simply isn't served.
        base_digest = weights_digest(forecaster.model)
        self._steppers: dict[str, object] = {}
        self._digests: dict[str, tuple[str, str]] = {}
        for name, policy in self.router.policies.items():
            if policy.solver_config is None:
                if student is None:
                    continue
                self._steppers[name] = OneStepForecaster(
                    model=student, state_norm=forecaster.state_norm,
                    residual_norm=forecaster.residual_norm,
                    forcing_fn=forecaster.forcing_fn,
                    forcing_norm=forecaster.forcing_norm,
                    flow=forecaster.flow)
                self._digests[name] = (weights_digest(student),
                                       solver_digest(None))
            else:
                self._steppers[name] = _dc_replace(
                    forecaster, solver_config=policy.solver_config)
                self._digests[name] = (base_digest,
                                       solver_digest(policy.solver_config))
        cfg = getattr(forecaster.model, "config", None)
        self._field_shape = ((cfg.height, cfg.width, cfg.channels)
                             if cfg is not None else None)
        self.tally = {"submitted": 0, "accepted": 0, "rejected": 0,
                      "completed": 0, "timeout": 0, "failed": 0}

    # -- accounting ----------------------------------------------------------
    def _count(self, event: str, tier: str, **labels) -> None:
        self.tally[event] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.requests",
                             "request lifecycle events").inc(
                1, event=event, tier=tier, **labels)
        _record_event(f"serve.{event}", subsystem="serve",
                      severity=("warning" if event in ("rejected",
                                                       "timeout", "failed")
                                else "info"), tier=tier, **labels)

    # -- admission -----------------------------------------------------------
    def _variable_indices(self, request: ForecastRequest) -> list[int] | None:
        if request.variables is None:
            return None
        if self.variable_names is None:
            raise Rejected("unknown_variable",
                           "service has no variable names configured")
        try:
            return [self.variable_names.index(v) for v in request.variables]
        except ValueError as exc:
            raise Rejected("unknown_variable", str(exc)) from None

    def _admit(self, request: ForecastRequest,
               now: float) -> ForecastResponse | None:
        """Queue the request; a rejection becomes an immediate response."""
        self._count("submitted", request.tier)
        try:
            if request.tier not in self._steppers:
                raise Rejected("tier_unavailable",
                               f"tier {request.tier!r} has no model")
            if (self._field_shape is not None
                    and tuple(request.init_state.shape)
                    != self._field_shape):
                raise Rejected("bad_shape",
                               f"want {self._field_shape}, got "
                               f"{tuple(request.init_state.shape)}")
            self._variable_indices(request)
            self.queue.submit(request, now)
        except Rejected as exc:
            self._count("rejected", request.tier, reason=exc.reason)
            return ForecastResponse(request=request, status="rejected",
                                    error=str(exc))
        self._count("accepted", request.tier)
        return None

    # -- responses -----------------------------------------------------------
    def _timeout_response(self, pending: PendingRequest,
                          now: float) -> ForecastResponse:
        err = Timeout(pending.waited_s(now), pending.policy.deadline_s)
        self._count("timeout", pending.request.tier)
        return ForecastResponse(request=pending.request, status="timeout",
                                error=str(err),
                                queue_wait_s=pending.waited_s(now))

    def _failed_response(self, pending: PendingRequest,
                         error: str) -> ForecastResponse:
        self._count("failed", pending.request.tier)
        return ForecastResponse(request=pending.request, status="failed",
                                error=error)

    # -- cache interaction ---------------------------------------------------
    def _restore_prefix(self, task: MemberTask, weights: str,
                        solver: str) -> None:
        """Walk the content-addressed prefix forward while cached, leaving
        the task's state/rng/trajectory positioned at the longest hit."""
        req = task.pending.request
        task.init_digest = array_digest(task.state)
        last = None
        while task.lead < task.target:
            key = forecast_key(weights, task.init_digest, task.member_seed,
                               solver, req.start_index, task.lead + 1)
            entry = self.cache.get(key)
            if entry is None:
                task.cache_misses += 1
                break
            task.trajectory.append(entry.state)
            task.lead += 1
            task.cache_hits += 1
            last = entry
        if last is not None:
            task.state = last.state
            task.rng.bit_generator.state = last.rng_state

    # -- batch execution -----------------------------------------------------
    def _execute(self, batch: MicroBatch) -> dict:
        """Run one micro-batch to completion: restore cached prefixes,
        advance every unfinished member through stacked forwards, cache
        each new step.  Returns per-pending results."""
        policy = batch.policy
        stepper = self._steppers[policy.name]
        weights, solver = self._digests[policy.name]
        tasks = MicroBatcher.member_tasks(batch)
        with _span("serve.cache", category="serve", tier=policy.name,
                   members=len(tasks)):
            for task in tasks:
                self._restore_prefix(task, weights, solver)
        forwards = 0
        while True:
            active = [t for t in tasks if not t.done]
            if not active:
                break
            states = np.stack([t.state for t in active])
            indices = [t.time_index() for t in active]
            rngs = [t.rng for t in active]
            new_states = stepper.step_members(states, indices, rngs)
            forwards += policy.forwards_per_data_step()
            for k, task in enumerate(active):
                task.state = new_states[k]
                task.lead += 1
                task.trajectory.append(task.state)
                key = forecast_key(weights, task.init_digest,
                                   task.member_seed, solver,
                                   task.pending.request.start_index,
                                   task.lead)
                self.cache.put(key, task.state,
                               task.rng.bit_generator.state)
        # Assemble per-request forecasts.
        by_pending: dict[int, list[MemberTask]] = {}
        for task in tasks:
            by_pending.setdefault(id(task.pending), []).append(task)
        results = {}
        for pending in batch.requests:
            members = by_pending[id(pending)]
            members.sort(key=lambda t: t.member)
            forecast = np.stack([np.stack(t.trajectory) for t in members])
            results[id(pending)] = {
                "forecast": forecast.astype(np.float32, copy=False),
                "cache_hits": sum(t.cache_hits for t in members),
                "cache_misses": sum(t.cache_misses for t in members),
            }
        return {"per_request": results, "forwards": forwards,
                "members": len(tasks)}

    def _subset(self, request: ForecastRequest,
                forecast: np.ndarray) -> np.ndarray:
        indices = self._variable_indices(request)
        return forecast if indices is None else forecast[..., indices]

    # -- physical guardrails -------------------------------------------------
    def _poison_result(self, batch: MicroBatch, result: dict) -> None:
        """Compute-domain fault injection at the output boundary: when the
        injector fires a ``forecast`` fault for this dispatch, poison the
        assembled response arrays (copies — the cache stays clean, exactly
        like hardware corrupting a response buffer after the fact)."""
        inj = self.pool.injector
        if inj is not None and inj.compute_fault("forecast"):
            inj.poison_forecast([result["per_request"][id(p)]["forecast"]
                                 for p in batch.requests])

    def _record_quarantine(self, pending: PendingRequest, violations,
                           worker_rank: int) -> None:
        tier = pending.request.tier
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("serve.forecasts_quarantined",
                             "forecasts failing physical guardrails").inc(
                1, tier=tier)
        _record_event("serve.forecast_quarantined", subsystem="serve",
                      severity="critical", tier=tier, worker=worker_rank,
                      violations="; ".join(v.render()
                                           for v in violations[:4]))
        with _span("resilience.forecast_sdc", category="resilience",
                   tier=tier, worker=worker_rank):
            pass

    def _guard_result(self, batch: MicroBatch, payload: np.ndarray,
                      worker, end: float, result: dict
                      ) -> tuple[object, float, dict, dict, set]:
        """Validate every per-request forecast against the physical
        guardrails; quarantine + re-dispatch on a different worker while
        re-runs remain.  Returns ``(worker, end, result, quarantine_counts,
        failed_ids)`` — requests in ``failed_ids`` were still invalid after
        the last permitted re-run."""
        self._poison_result(batch, result)
        if self.validator is None:
            return worker, end, result, {}, set()
        qcounts: dict[int, int] = {}
        reruns = 0
        while True:
            bad = []
            for pending in batch.requests:
                per = result["per_request"][id(pending)]
                violations = self.validator.validate(per["forecast"])
                if violations:
                    bad.append(pending)
                    qcounts[id(pending)] = qcounts.get(id(pending), 0) + 1
                    self._record_quarantine(pending, violations, worker.rank)
            if not bad:
                return worker, end, result, qcounts, set()
            if reruns >= self.config.guardrail_reruns:
                return worker, end, result, qcounts, {id(p) for p in bad}
            reruns += 1
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("serve.guardrail_reruns",
                                 "quarantined batches re-dispatched").inc(
                    1, tier=batch.policy.name)
            _record_event("serve.guardrail_rerun", subsystem="serve",
                          severity="warning", tier=batch.policy.name,
                          excluded_worker=worker.rank,
                          quarantined=len(bad))
            try:
                worker, end, result = self.pool.dispatch(
                    end, lambda: self._execute(batch), payload=payload,
                    exclude=worker.rank)
            except ResilienceError:
                return worker, end, result, qcounts, \
                    {id(p) for p in batch.requests}
            self._poison_result(batch, result)

    # -- the event loop ------------------------------------------------------
    def run(self, requests: Sequence[ForecastRequest],
            start_s: float = 0.0) -> list[ForecastResponse]:
        """Serve a batch of arrival-stamped requests to completion.

        Virtual time starts at ``start_s``; arrivals are admitted at their
        stamps, micro-batches dispatch whenever a worker is free, and the
        loop ends when every request is answered (completed, rejected,
        timed out, or failed)."""
        arrivals = sorted(requests, key=lambda r: r.arrival_s)
        responses: list[ForecastResponse] = []
        now = start_s
        i = 0
        while True:
            while i < len(arrivals) and arrivals[i].arrival_s <= now:
                rejected = self._admit(arrivals[i], now)
                if rejected is not None:
                    responses.append(rejected)
                i += 1
            if not len(self.queue):
                if i >= len(arrivals):
                    break
                now = max(now, arrivals[i].arrival_s)
                continue
            free_at = self.pool.earliest_free()
            if free_at == float("inf"):
                # Capacity is gone: answer everything still queued.
                while len(self.queue):
                    pending = self.queue.pop()
                    responses.append(self._failed_response(
                        pending, "no live serve workers"))
                continue
            if free_at > now:
                if i < len(arrivals) and arrivals[i].arrival_s < free_at:
                    now = arrivals[i].arrival_s
                else:
                    now = free_at
                continue
            batch, expired = self.batcher.next_batch(now)
            for pending in expired:
                responses.append(self._timeout_response(pending, now))
            if batch is None:
                continue
            payload = np.stack([np.asarray(p.request.init_state,
                                           dtype=np.float32)
                                for p in batch.requests
                                for _ in range(p.request.n_members)])
            try:
                worker, end, result = self.pool.dispatch(
                    now, lambda: self._execute(batch), payload=payload)
            except ResilienceError as exc:
                for pending in batch.requests:
                    responses.append(self._failed_response(pending,
                                                           str(exc)))
                continue
            worker, end, result, qcounts, failed_ids = self._guard_result(
                batch, payload, worker, end, result)
            for pending in batch.requests:
                req = pending.request
                if id(pending) in failed_ids:
                    responses.append(self._failed_response(
                        pending, "forecast failed physical guardrails"))
                    continue
                per = result["per_request"][id(pending)]
                latency = end - req.arrival_s
                self._count("completed", req.tier)
                self.slo.record(req.tier, latency)
                responses.append(ForecastResponse(
                    request=req, status="completed",
                    forecast=self._subset(req, per["forecast"]),
                    latency_s=latency,
                    queue_wait_s=batch.assembled_s - pending.enqueued_s,
                    worker=worker.rank,
                    batch_forwards=result["forwards"],
                    batch_members=result["members"],
                    cache_hits=per["cache_hits"],
                    cache_misses=per["cache_misses"],
                    quarantines=qcounts.get(id(pending), 0)))
        return responses

    def serve(self, request: ForecastRequest) -> ForecastResponse:
        """Synchronous single-request convenience."""
        return self.run([request], start_s=request.arrival_s)[0]

    def stats(self) -> dict:
        return {"tally": dict(self.tally), "cache": self.cache.stats(),
                "workers": self.pool.stats(), "slo": self.slo.summary()}
