"""``repro.serve`` — the forecast-serving subsystem.

The production-shaped inference tier the ROADMAP's "heavy traffic from
millions of users" north star implies, in front of the trained AERIS
model (operational peers like Aurora are fronted by exactly such a
service; the *Exascale Climate Emulators* line of work shows caching
forecasts — not recomputing them — is what makes serving tractable):

* :mod:`~repro.serve.api` — typed :class:`ForecastRequest` /
  :class:`ForecastResponse` plus the :class:`Rejected` / :class:`Timeout`
  error taxonomy;
* :mod:`~repro.serve.queue` — priority admission queue with global and
  per-tier depth caps (backpressure) and per-tier deadlines;
* :mod:`~repro.serve.batcher` — dynamic micro-batching: compatible
  requests and their ensemble members coalesce into single stacked
  model forwards;
* :mod:`~repro.serve.cache` — content-addressed forecast cache keyed by
  ``(weights digest, init-state digest, member seed, solver config,
  lead)`` with LRU eviction under a byte budget;
* :mod:`~repro.serve.samplers` — quality tiers mapped onto the paper's
  inference paths (``fast``: one-step consistency student;
  ``standard``/``high``: DPM-Solver 2S at increasing step counts), a
  deterministic router, and per-tier SLO tracking;
* :mod:`~repro.serve.worker` — :class:`ServeWorkerPool`: N replica
  workers under the :mod:`repro.resilience` fault machinery (fail-stop
  degrades capacity; transient faults heal);
* :mod:`~repro.serve.guardrails` — :class:`ForecastValidator`: physical
  per-variable bounds (from archive statistics) + finiteness checks —
  the output-domain silent-data-corruption defense (quarantine, re-run
  on a different worker, alert);
* :mod:`~repro.serve.service` — :class:`ForecastService`: the
  discrete-event serving loop gluing it all together, now multi-version:
  every loaded model gets a :class:`ModelBinding` and requests are
  pinned to a version at admission;
* :mod:`~repro.serve.deploy` — :class:`DeploymentController`: canary
  rollout of a registry-gated candidate version (hash-routed traffic
  split, shadow skill checks, auto-promote / auto-rollback), reconciled
  end-to-end by :meth:`repro.obs.TraceReport.deploy_check`.

Every stage is instrumented through :mod:`repro.obs`, and
:meth:`repro.obs.TraceReport.serve_check` reconciles the request
lifecycle (accepted = completed + timed out + failed) against the
metrics the way ``resilience_check`` reconciles faults.
"""

from .api import (TIERS, ForecastRequest, ForecastResponse, Rejected,
                  ServeError, Timeout)
from .batcher import BatcherConfig, MemberTask, MicroBatch, MicroBatcher
from .cache import (CacheEntry, ForecastCache, array_digest, forecast_key,
                    solver_digest, weights_digest)
from .deploy import DeployConfig, DeploymentController
from .guardrails import BoundViolation, ForecastValidator
from .queue import AdmissionQueue, PendingRequest, QueueConfig
from .samplers import (OneStepForecaster, SloTracker, TierPolicy,
                       TierRouter, default_tiers)
from .service import ForecastService, ModelBinding, ServiceConfig
from .worker import ServeWorkerPool, WorkerState

__all__ = [
    "TIERS", "ForecastRequest", "ForecastResponse",
    "ServeError", "Rejected", "Timeout",
    "QueueConfig", "AdmissionQueue", "PendingRequest",
    "BatcherConfig", "MicroBatcher", "MicroBatch", "MemberTask",
    "ForecastCache", "CacheEntry",
    "array_digest", "weights_digest", "solver_digest", "forecast_key",
    "TierPolicy", "TierRouter", "SloTracker", "OneStepForecaster",
    "default_tiers",
    "ServeWorkerPool", "WorkerState",
    "ForecastValidator", "BoundViolation",
    "ForecastService", "ServiceConfig", "ModelBinding",
    "DeployConfig", "DeploymentController",
]
