"""Canary rollout: drive a candidate model version through live traffic.

The :class:`DeploymentController` is the *online* half of the model
lifecycle (the offline half — scorecards and the skill gate — lives in
:mod:`repro.registry`).  It attaches to a running
:class:`~repro.serve.ForecastService` and:

* loads a ``servable`` candidate version next to the incumbent
  (workers hot-swap weights per batch; the forecast cache's
  weights-digest keying isolates the versions completely);
* routes a deterministic fraction of admissions to the candidate
  (content-hash routing — the same request always lands on the same
  version, so reruns are reproducible);
* **shadows** a fraction of incumbent-served requests: the candidate
  re-forecasts them out-of-band (never enqueued — request conservation
  is untouched) and the outputs are checked against the physical
  guardrails and, when a ``truth_fn`` is available, an ensemble-mean
  RMSE skill proxy versus the incumbent's served answer;
* **auto-promotes** after a clean observation window, or
  **auto-rolls-back** on SLO burn, guardrail quarantines, candidate
  failures, or shadow-skill regression — rollback unloads the candidate
  and re-routes its queued requests onto the incumbent, so no request is
  lost or double-served across the swap (reconciled by
  :meth:`repro.obs.TraceReport.deploy_check`).

Every transition is booked as ``deploy.*`` metrics and flight-recorder
events; a rollback additionally fires a critical ``deploy.rollback``
alert when a health monitor is attached.

Why both gate *and* canary: the gate catches regressions measurable on
the held-out window; the canary catches what only shows up in the
serving path — a corrupted weight load on the way to the workers
(deployment skew, the SDC threat model applied to weight distribution),
guardrail violations under live initial conditions, latency burn from a
heavier candidate.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..obs.profile import health as _obs_health
from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import record_event as _record_event
from .api import ForecastRequest, ForecastResponse
from .service import ForecastService

__all__ = ["DeployConfig", "DeploymentController"]


@dataclass(frozen=True)
class DeployConfig:
    """Canary policy knobs."""

    #: Fraction of eligible admissions routed to the candidate.
    canary_fraction: float = 0.25
    #: Fraction of incumbent-served completions shadow-checked.
    shadow_fraction: float = 0.5
    #: Candidate completions required before auto-promotion.
    observation_window: int = 8
    #: Candidate SLO misses tolerated before rollback.
    max_slo_misses: int = 2
    #: Candidate guardrail quarantines tolerated before rollback.
    max_quarantines: int = 0
    #: Candidate failed responses tolerated before rollback.
    max_failures: int = 0
    #: Shadow skill: candidate ensemble-mean RMSE may exceed the
    #: incumbent's by at most this fraction (needs ``truth_fn``).
    shadow_skill_tol: float = 0.10
    #: Shadow regressions (skill or guardrail) tolerated before rollback.
    max_shadow_regressions: int = 1
    #: Salt for the deterministic routing / shadow-sampling hashes.
    seed: int = 0


def _hash_fraction(salt: str, request: ForecastRequest) -> float:
    """Deterministic request -> [0, 1) (stable across reruns, spread
    across request content)."""
    text = (f"{salt}|{request.request_id}|{request.seed}"
            f"|{request.start_index}|{request.tier}|{request.n_steps}"
            f"|{request.arrival_s!r}")
    return (zlib.crc32(text.encode()) % 100_000) / 100_000.0


class DeploymentController:
    """Drives one candidate version through canary -> live (or back).

    Parameters
    ----------
    service:
        The running :class:`ForecastService`; its ``active_version`` at
        construction time is the incumbent.
    registry:
        Optional :class:`~repro.registry.ModelRegistry`.  When given,
        the candidate must be ``servable`` (i.e. it passed the skill
        gate), lifecycle transitions are written back (``canary`` /
        ``live`` / ``rolled_back`` / ``retired``), and a digest mismatch
        between the registered weights and the deployed binding is
        booked as ``deploy.digest_skew`` — the canary's whole job is to
        catch exactly that copy serving traffic.
    truth_fn:
        Optional ``request -> (n_steps + 1, H, W, C)`` verifying
        trajectory for shadow-skill scoring (e.g. the analysis that
        later became available for that initial condition).  Without it,
        shadows still run the physical guardrails.
    validator:
        Guardrails for shadow outputs; defaults to the service's.
    """

    def __init__(self, service: ForecastService, registry=None,
                 config: DeployConfig | None = None, truth_fn=None,
                 validator=None):
        self.service = service
        self.registry = registry
        self.config = config if config is not None else DeployConfig()
        self.truth_fn = truth_fn
        self.validator = (validator if validator is not None
                          else service.validator)
        self.state = "idle"
        self.incumbent = service.active_version
        self.incumbent_digest = \
            service.bindings[self.incumbent].weights_digest
        self.candidate: str | None = None
        self.candidate_digest: str | None = None
        self.transitions: list[dict] = []
        self.counts = {"candidate_completed": 0, "candidate_failed": 0,
                       "candidate_quarantined": 0, "candidate_slo_miss": 0,
                       "shadows": 0, "shadow_regressions": 0,
                       "reassigned": 0}
        #: (version, status) -> responses observed by the hook.
        self.observed: dict[tuple, int] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _transition(self, kind: str, severity: str = "info",
                    **data) -> None:
        entry = {"kind": kind, "state": self.state, **data}
        self.transitions.append(entry)
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("deploy.transitions",
                             "canary lifecycle transitions").inc(
                1, kind=kind)
        _record_event(f"deploy.{kind}", subsystem="deploy",
                      severity=severity, **data)

    def _book_response(self, response: ForecastResponse) -> None:
        key = (response.version, response.status)
        self.observed[key] = self.observed.get(key, 0) + 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("deploy.requests",
                             "responses observed during canary").inc(
                1, version=response.version, status=response.status)

    # -- rollout -------------------------------------------------------------
    def start_canary(self, version: str, forecaster=None,
                     student=None) -> None:
        """Load ``version`` and start routing canary traffic to it.

        ``forecaster`` defaults to materializing the version from the
        registry (digest-faithful by construction); passing a pre-built
        one models a separate distribution pipeline, whose copy may
        *differ* from the registered bytes — that skew is booked, and
        catching its consequences online is what the canary is for.
        """
        if self.state != "idle":
            raise RuntimeError(f"controller is {self.state!r}, not idle")
        record = None
        if self.registry is not None:
            record = self.registry.get(version)
            if record.status != "servable":
                raise ValueError(
                    f"candidate {version!r} is {record.status!r}, not "
                    "servable — gate it first")
        if forecaster is None:
            if self.registry is None:
                raise ValueError("need a forecaster or a registry to "
                                 "materialize one from")
            forecaster = self.registry.forecaster(
                version, forcing_fn=self.service.base.forcing_fn)
        binding = self.service.add_version(version, forecaster, student)
        self.candidate = version
        self.candidate_digest = binding.weights_digest
        skew = (record is not None
                and record.weights_digest != binding.weights_digest)
        if skew:
            _record_event("deploy.digest_skew", subsystem="deploy",
                          severity="warning", version=version,
                          registered=record.weights_digest[:12],
                          deployed=binding.weights_digest[:12])
        if self.registry is not None:
            self.registry.set_status(version, "canary",
                                     reason="canary rollout started")
        self.service.version_router = self._route
        self.service.response_hook = self._on_response
        self.state = "canary"
        self._transition("canary_start", version=version,
                         incumbent=self.incumbent,
                         fraction=self.config.canary_fraction,
                         digest=binding.weights_digest[:12],
                         digest_skew=skew)

    def _route(self, request: ForecastRequest) -> str:
        if (self.state == "canary"
                and request.tier in
                self.service.bindings[self.candidate].steppers
                and _hash_fraction(f"route{self.config.seed}", request)
                < self.config.canary_fraction):
            return self.candidate
        return self.service.active_version

    # -- online observation --------------------------------------------------
    def _on_response(self, response: ForecastResponse,
                     now: float) -> None:
        if self.state != "canary" or response.status == "rejected":
            return
        self._book_response(response)
        if response.version == self.candidate:
            self._observe_candidate(response)
        elif (response.version == self.incumbent
              and response.status == "completed"
              and _hash_fraction(f"shadow{self.config.seed}",
                                 response.request)
              < self.config.shadow_fraction):
            self._shadow(response)
        if self.state != "canary":
            return
        cfg, c = self.config, self.counts
        if c["candidate_slo_miss"] > cfg.max_slo_misses:
            self.rollback("slo_burn")
        elif c["candidate_quarantined"] > cfg.max_quarantines:
            self.rollback("guardrail_quarantines")
        elif c["candidate_failed"] > cfg.max_failures:
            self.rollback("candidate_failures")
        elif c["shadow_regressions"] >= cfg.max_shadow_regressions:
            self.rollback("shadow_skill_regression")
        elif c["candidate_completed"] >= cfg.observation_window:
            self.promote()

    def _observe_candidate(self, response: ForecastResponse) -> None:
        c = self.counts
        if response.status == "completed":
            c["candidate_completed"] += 1
            if response.quarantines > 0:
                c["candidate_quarantined"] += response.quarantines
            policy = self.service.router.route(response.request.tier)
            if response.latency_s > policy.slo_s:
                c["candidate_slo_miss"] += 1
        elif response.status == "failed":
            c["candidate_failed"] += 1

    def _shadow(self, response: ForecastResponse) -> None:
        """Re-forecast an incumbent-served request with the candidate,
        out-of-band, and compare.  The shadow never enters the queue —
        request conservation across the service is untouched."""
        req = response.request
        if req.tier not in self.service.bindings[self.candidate].steppers:
            # The candidate cannot serve this tier (e.g. deployed without
            # a distilled student, so no "fast" sampler) — the router
            # never sends it such traffic, and the shadow must apply the
            # same guard instead of crashing the response hook.
            return
        forecast = self.service.stepper(
            req.tier, self.candidate).ensemble_rollout(
            np.asarray(req.init_state, dtype=np.float32), req.n_steps,
            n_members=req.n_members, seed=req.seed,
            start_index=req.start_index)
        self.counts["shadows"] += 1
        outcome = "clean"
        detail = ""
        if self.validator is not None and self.validator.validate(forecast):
            outcome = "guardrail_violation"
            detail = "candidate shadow violates physical bounds"
        elif self.truth_fn is not None and req.variables is None:
            truth = np.asarray(self.truth_fn(req), dtype=np.float32)
            cand = _ens_rmse(forecast, truth)
            inc = _ens_rmse(response.forecast, truth)
            if cand > inc * (1.0 + self.config.shadow_skill_tol):
                outcome = "skill_regression"
                detail = (f"candidate rmse {cand:.4f} vs incumbent "
                          f"{inc:.4f} (tol "
                          f"{self.config.shadow_skill_tol:.0%})")
        if outcome != "clean":
            self.counts["shadow_regressions"] += 1
        registry = _obs_metrics()
        if registry is not None:
            registry.counter("deploy.shadows",
                             "candidate shadow forecasts").inc(
                1, outcome=outcome)
        _record_event("deploy.shadow", subsystem="deploy",
                      severity="info" if outcome == "clean" else "warning",
                      version=self.candidate, outcome=outcome,
                      detail=detail)

    # -- terminal transitions ------------------------------------------------
    def promote(self) -> None:
        """Candidate becomes the active (and registry-live) version."""
        if self.state != "canary":
            raise RuntimeError(f"cannot promote while {self.state!r}")
        self.service.version_router = None
        self.service.set_active(self.candidate)
        if self.registry is not None:
            if self.registry.live() == self.incumbent:
                self.registry.set_status(
                    self.incumbent, "retired",
                    reason=f"superseded by {self.candidate}")
            self.registry.set_status(self.candidate, "live",
                                     reason="canary window clean")
        self.state = "promoted"
        self._transition("promote", version=self.candidate,
                         retired=self.incumbent,
                         observed=self.counts["candidate_completed"],
                         shadows=self.counts["shadows"])

    def rollback(self, reason: str) -> None:
        """Withdraw the candidate and restore the incumbent exactly.

        The candidate's queued requests are re-routed to the incumbent
        (none lost), its binding is unloaded, and — when a health
        monitor is attached — a critical ``deploy.rollback`` alert
        fires.  The incumbent was never deactivated during canary, so
        restoring it is a no-op on the digest: ``deploy_check`` asserts
        the active binding's weights digest equals the one recorded at
        controller construction.
        """
        if self.state != "canary":
            raise RuntimeError(f"cannot rollback while {self.state!r}")
        self.service.version_router = None
        if self.service.active_version != self.incumbent:
            self.service.set_active(self.incumbent)
        moved = self.service.remove_version(self.candidate)
        self.counts["reassigned"] += moved
        if self.registry is not None:
            self.registry.set_status(self.candidate, "rolled_back",
                                     reason=reason)
        self.state = "rolled_back"
        self._transition("rollback", severity="critical",
                         version=self.candidate, reason=reason,
                         restored=self.incumbent, reassigned=moved,
                         counts=dict(self.counts))
        monitor = _obs_health()
        if monitor is not None:
            monitor.alerts.fire(
                "deploy.rollback", "critical", "deploy",
                f"canary {self.candidate} rolled back ({reason}); "
                f"incumbent {self.incumbent} restored",
                version=self.candidate, reason=reason)

    def summary(self) -> dict:
        return {"state": self.state, "incumbent": self.incumbent,
                "candidate": self.candidate,
                "incumbent_digest": self.incumbent_digest,
                "candidate_digest": self.candidate_digest,
                "counts": dict(self.counts),
                "transitions": [dict(t) for t in self.transitions],
                "observed": {f"{v}/{s}": n
                             for (v, s), n in sorted(self.observed.items())}}


def _ens_rmse(forecast: np.ndarray, truth: np.ndarray) -> float:
    """Flat RMSE of the ensemble mean against a verifying trajectory."""
    err = forecast.astype(np.float64).mean(axis=0) - truth
    return float(np.sqrt(np.mean(err * err)))
