"""Physical forecast guardrails: the last line of SDC defense.

ABFT (:mod:`repro.kernels.abft`) defends the GEMMs and the guarded
trainer defends the state, but serving is the boundary where *any*
undetected upstream flip would reach a user.  The guardrail is physical:
every served trajectory must be finite and every variable must stay
inside bounds derived from the archive statistics the model was trained
on (``mean ± z_max·std`` per channel, from a
:class:`repro.data.FieldNormalizer`).  A 500 hPa geopotential of
``1e30`` or a NaN surface temperature is not a forecast — it is
corruption, whatever produced it.

:class:`ForecastValidator` is pure and read-only; the enforcement policy
(quarantine the response, re-run the batch on a *different* worker,
alert, fail the request if still absurd) lives in
:class:`repro.serve.ForecastService`.  ``z_max`` defaults to 8 standard
deviations: far outside any state the training distribution contains,
far inside what a flipped exponent bit produces — so the guard never
fires on a legitimate (even badly wrong) forecast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundViolation", "ForecastValidator"]


@dataclass(frozen=True)
class BoundViolation:
    """One violated per-channel constraint in one forecast."""

    channel: int
    name: str
    kind: str        # "nonfinite" | "below" | "above"
    count: int       # offending elements in the trajectory
    worst: float     # most extreme offending value (NaN for nonfinite)

    def render(self) -> str:
        return (f"{self.name}[{self.channel}] {self.kind} x{self.count} "
                f"(worst {self.worst!r})")


class ForecastValidator:
    """Per-variable finiteness + physical-bounds check on ``(..., C)``
    forecasts.

    ``lower`` / ``upper`` are per-channel physical bounds; ``names``
    labels channels in violation reports (defaults to ``ch<i>``).
    """

    def __init__(self, lower, upper, names=None):
        self.lower = np.asarray(lower, dtype=np.float64).reshape(-1)
        self.upper = np.asarray(upper, dtype=np.float64).reshape(-1)
        if self.lower.shape != self.upper.shape:
            raise ValueError("lower/upper must have one bound per channel")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound above upper bound")
        self.names = (list(names) if names is not None
                      else [f"ch{i}" for i in range(self.lower.size)])
        if len(self.names) != self.lower.size:
            raise ValueError("one name per channel required")

    @classmethod
    def from_normalizer(cls, norm, z_max: float = 8.0,
                        names=None) -> "ForecastValidator":
        """Bounds from archive statistics: ``mean ± z_max·std`` per
        channel (``norm`` is a :class:`repro.data.FieldNormalizer`)."""
        mean = np.asarray(norm.mean, dtype=np.float64).reshape(-1)
        std = np.asarray(norm.std, dtype=np.float64).reshape(-1)
        return cls(mean - z_max * std, mean + z_max * std, names=names)

    @property
    def channels(self) -> int:
        return self.lower.size

    def validate(self, forecast: np.ndarray) -> list[BoundViolation]:
        """All violated constraints of one physical ``(..., C)`` forecast
        (empty list = clean).  Read-only; NaN/Inf never escape as
        false-negatives (comparisons with NaN are handled explicitly)."""
        if forecast.shape[-1] != self.channels:
            raise ValueError(f"forecast has {forecast.shape[-1]} channels, "
                             f"validator expects {self.channels}")
        flat = forecast.reshape(-1, self.channels)
        violations: list[BoundViolation] = []
        finite = np.isfinite(flat)
        with np.errstate(invalid="ignore"):
            # Nonfinite elements report once, as "nonfinite" — not again
            # as bound violations (±inf would otherwise double-count).
            below = (flat < self.lower) & finite
            above = (flat > self.upper) & finite
        for c in range(self.channels):
            col = flat[:, c]
            n_nonfinite = int((~finite[:, c]).sum())
            if n_nonfinite:
                violations.append(BoundViolation(
                    c, self.names[c], "nonfinite", n_nonfinite, float("nan")))
            n_below = int(below[:, c].sum())
            if n_below:
                violations.append(BoundViolation(
                    c, self.names[c], "below", n_below,
                    float(col[below[:, c]].min())))
            n_above = int(above[:, c].sum())
            if n_above:
                violations.append(BoundViolation(
                    c, self.names[c], "above", n_above,
                    float(col[above[:, c]].max())))
        return violations
