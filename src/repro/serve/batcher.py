"""Dynamic micro-batching: coalesce compatible requests into one stacked
model forward per solver evaluation.

The model accepts ``(B, H, W, C)`` and every conditioning input (previous
state, forcings, diffusion time) is per-row, so *any* two requests at the
same tier are compatible — different initial conditions, different leads,
different forcing calendars all batch together.  A micro-batch therefore
groups the head-of-queue request with further same-tier requests (FIFO)
until the member budget (``max_members``) or request budget
(``max_requests``) is hit.  One 8-member request then costs one forward
per solver evaluation instead of eight; eight coalesced 1-member requests
cost the same one.

Batches never mix tiers: the tier fixes the solver schedule (and which
network runs), which must be uniform across the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.profile import metrics as _obs_metrics
from ..obs.profile import span as _span
from .queue import AdmissionQueue, PendingRequest
from .samplers import TierPolicy

__all__ = ["BatcherConfig", "MemberTask", "MicroBatch", "MicroBatcher"]


@dataclass(frozen=True)
class BatcherConfig:
    """Micro-batch budgets: member rows per stacked forward and requests
    coalesced per batch."""

    max_members: int = 32
    max_requests: int = 8

    def __post_init__(self):
        if self.max_members < 1 or self.max_requests < 1:
            raise ValueError("batch budgets must be >= 1")


@dataclass(eq=False)
class MemberTask:
    """One ensemble member's work inside a micro-batch: its current state,
    its seeded generator, how far it has advanced (``lead``), and the
    trajectory accumulated so far (prefix possibly restored from cache)."""

    pending: PendingRequest
    member: int
    member_seed: int
    state: np.ndarray
    rng: np.random.Generator
    lead: int
    target: int
    trajectory: list = field(default_factory=list)
    init_digest: str = ""
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def done(self) -> bool:
        return self.lead >= self.target

    def time_index(self) -> int:
        return self.pending.request.start_index + self.lead


@dataclass(eq=False)
class MicroBatch:
    """Same-tier, same-model-version requests stacked for execution."""

    policy: TierPolicy
    requests: list[PendingRequest]
    assembled_s: float
    version: str = ""

    @property
    def n_members(self) -> int:
        return sum(p.request.n_members for p in self.requests)

    @property
    def max_lead(self) -> int:
        return max(p.request.n_steps for p in self.requests)


class MicroBatcher:
    """Pulls from an :class:`AdmissionQueue`, emits :class:`MicroBatch`es."""

    def __init__(self, queue: AdmissionQueue,
                 config: BatcherConfig | None = None):
        self.queue = queue
        self.config = config if config is not None else BatcherConfig()

    def next_batch(self, now: float
                   ) -> tuple[MicroBatch | None, list[PendingRequest]]:
        """Assemble the next micro-batch at virtual time ``now``.

        Returns ``(batch, expired)``: ``batch`` is ``None`` when nothing
        is queued; ``expired`` are requests whose tier deadline passed
        while they waited (the service answers those with ``Timeout``).
        """
        with _span("serve.batch_assembly", category="serve",
                   queued=len(self.queue)):
            head, expired = self.queue.pop_live(now)
            if head is None:
                return None, expired
            requests = [head]
            members = head.request.n_members
            tier = head.request.tier
            while (len(requests) < self.config.max_requests
                   and members < self.config.max_members):
                nxt = self.queue.pop_tier(tier, head.version)
                if nxt is None:
                    break
                if nxt.expired(now):
                    expired.append(nxt)
                    continue
                if members + nxt.request.n_members > self.config.max_members:
                    # Over the member budget: put it back (at its original
                    # position) for the next batch rather than splitting a
                    # request's ensemble across batches.
                    self.queue.requeue(nxt)
                    break
                requests.append(nxt)
                members += nxt.request.n_members
            batch = MicroBatch(policy=head.policy, requests=requests,
                               assembled_s=now, version=head.version)
            registry = _obs_metrics()
            if registry is not None:
                registry.counter("serve.batches",
                                 "micro-batches assembled").inc(1, tier=tier)
                registry.histogram("serve.batch_members",
                                   "member rows per micro-batch",
                                   buckets=(1, 2, 4, 8, 16, 32, 64, 128)
                                   ).observe(members, tier=tier)
            return batch, expired

    @staticmethod
    def member_tasks(batch: MicroBatch) -> list[MemberTask]:
        """Explode a batch into per-member tasks (cache state is attached
        by the service before stepping)."""
        tasks = []
        for pending in batch.requests:
            req = pending.request
            # float32 like the direct rollout's output buffer, so served
            # trajectories are bit-identical to it from the IC onward.
            init = np.asarray(req.init_state, dtype=np.float32)
            for m in range(req.n_members):
                seed = req.seed + 1000 * m
                tasks.append(MemberTask(
                    pending=pending, member=m, member_seed=seed,
                    state=init, rng=np.random.default_rng(seed),
                    lead=0, target=req.n_steps,
                    trajectory=[init]))
        return tasks
