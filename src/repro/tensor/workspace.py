"""A reusable workspace arena for kernel scratch buffers.

The fused hot-path kernels (:mod:`repro.kernels.fused`) need large
intermediate arrays — attention score matrices, SwiGLU hidden activations —
whose lifetime is confined to a single forward call.  Allocating them fresh
each call makes the allocator (and the page-fault handler) part of the hot
path.  The arena pools released buffers by ``(shape, dtype)`` so steady-state
inference reuses the same memory on every step.

Discipline — the arena does **no** liveness tracking:

* only :meth:`~WorkspaceArena.release` buffers that cannot escape the
  operation that requested them (in practice: inference/no-grad paths, or
  scratch that is consumed before the op returns);
* a buffer that ends up referenced by an autograd closure or returned to the
  caller must simply not be released — leaking a buffer back to NumPy's
  allocator is always safe, double-use is not.

``arena()`` returns the process-global instance; ``stats()`` feeds the
benchmark sidecars (``bytes_served`` vs ``bytes_allocated`` is the reuse
win).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkspaceArena", "arena"]


class WorkspaceArena:
    """Pooled scratch buffers keyed by ``(shape, dtype)``.

    Parameters
    ----------
    max_bytes:
        Budget for *pooled* (idle) bytes.  Requests larger than the budget
        are served but never pooled; when releases push the pool over
        budget, the oldest idle buffers are dropped (FIFO over keys).
    """

    def __init__(self, max_bytes: int = 256 * 2 ** 20):
        self.max_bytes = int(max_bytes)
        self._pool: dict[tuple, list[np.ndarray]] = {}
        self._pooled_bytes = 0
        self.hits = 0
        self.misses = 0
        self.bytes_served = 0
        self.bytes_allocated = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(int(s) for s in shape), np.dtype(dtype).str)

    def get(self, shape, dtype=np.float32) -> np.ndarray:
        """An uninitialized C-contiguous buffer of exactly ``shape``/``dtype``
        — pooled if available, freshly allocated otherwise."""
        key = self._key(shape, dtype)
        bucket = self._pool.get(key)
        if bucket:
            out = bucket.pop()
            self._pooled_bytes -= out.nbytes
            self.hits += 1
        else:
            out = np.empty(key[0], dtype=np.dtype(dtype))
            self.misses += 1
            self.bytes_allocated += out.nbytes
        self.bytes_served += out.nbytes
        return out

    def release(self, buf: np.ndarray) -> None:
        """Return ``buf`` to the pool.  The caller must guarantee no live
        references to ``buf`` remain (see module docstring)."""
        if not isinstance(buf, np.ndarray) or not buf.flags["OWNDATA"]:
            return  # views cannot be safely repooled
        if buf.nbytes > self.max_bytes:
            return
        key = self._key(buf.shape, buf.dtype)
        self._pool.setdefault(key, []).append(buf)
        self._pooled_bytes += buf.nbytes
        self._shrink()

    def _shrink(self) -> None:
        while self._pooled_bytes > self.max_bytes and self._pool:
            oldest = next(iter(self._pool))
            bucket = self._pool[oldest]
            dropped = bucket.pop(0)
            self._pooled_bytes -= dropped.nbytes
            if not bucket:
                del self._pool[oldest]

    @property
    def pooled_bytes(self) -> int:
        return self._pooled_bytes

    def clear(self) -> None:
        self._pool.clear()
        self._pooled_bytes = 0

    def reset_stats(self) -> None:
        self.hits = self.misses = 0
        self.bytes_served = self.bytes_allocated = 0

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "bytes_served": self.bytes_served,
                "bytes_allocated": self.bytes_allocated,
                "pooled_bytes": self._pooled_bytes,
                "max_bytes": self.max_bytes}


_ARENA = WorkspaceArena()


def arena() -> WorkspaceArena:
    """The process-global workspace arena."""
    return _ARENA
