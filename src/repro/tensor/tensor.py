"""A reverse-mode automatic-differentiation engine over NumPy arrays.

This is the compute substrate standing in for PyTorch in the AERIS
reproduction.  It provides exactly the operator set the AERIS architecture
needs (dense matmul, reshaping/permutation, windowed gather via slicing and
rolls, softmax attention, SwiGLU/RMSNorm elementwise math and reductions),
instrumented so that:

* every matmul reports its FLOPs to :mod:`repro.tensor.flops`, validating the
  paper's analytical performance model, and
* matmuls can run in emulated BF16 (:mod:`repro.tensor.bf16`), reproducing the
  paper's mixed-precision split.

Design notes
------------
Gradients are accumulated by a topological-order sweep (`Tensor.backward`).
All arithmetic supports NumPy broadcasting; backward passes un-broadcast by
summing over expanded axes.  Data is kept in FP32 unless a caller opts in to
FP64 explicitly (useful in gradient-check tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Sequence

import numpy as np

from .bf16 import bf16_matmul_enabled, round_bf16
from .flops import add_flops, backward_phase, flops_enabled

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "tensor", "zeros", "ones"]

_GRAD_ENABLED = True


@contextmanager
def no_grad():
    """Disable graph construction within the block (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw array-like, got Tensor")
    arr = np.asarray(value)
    if dtype is not None:
        return arr.astype(dtype, copy=False)
    if arr.dtype == np.float64:
        return arr.astype(np.float32)
    if not np.issubdtype(arr.dtype, np.floating):
        return arr.astype(np.float32)
    return arr


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes that were prepended by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were expanded from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; floats are stored as FP32 unless ``dtype`` says
        otherwise.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, dtype=None, name: str = ""):
        self.data = _as_array(data, dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- basic introspection ------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad})"

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph construction ---------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, dtype=np.asarray(data).dtype)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (the tensor must then be a scalar to make
        mathematical sense, but any shape is accepted).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        grads: dict[int, np.ndarray] = {id(self): grad}
        # Buffers this sweep allocated itself (first fan-in sum per node);
        # later fan-in contributions accumulate into them in place instead
        # of allocating a fresh array per consumer.  Arrays handed back by
        # backward closures are never mutated — they may alias node grads.
        owned: set[int] = set()
        with backward_phase():
            for node in reversed(topo):
                node_grad = grads.pop(id(node), None)
                if node_grad is None:
                    continue
                node._accumulate(node_grad)
                if node._backward is None:
                    continue
                parent_grads = node._backward(node_grad)
                for parent, pgrad in zip(node._parents, parent_grads):
                    if pgrad is None or not parent.requires_grad:
                        continue
                    key = id(parent)
                    if key not in grads:
                        grads[key] = pgrad
                    elif (key in owned and grads[key].shape == pgrad.shape
                          and grads[key].dtype == np.result_type(
                              grads[key], pgrad)):
                        np.add(grads[key], pgrad, out=grads[key])
                    else:
                        grads[key] = grads[key] + pgrad
                        owned.add(key)

    # -- arithmetic -------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = Tensor._coerce(other)
        data = self.data + other.data
        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape))
        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = Tensor._coerce(other)
        data = self.data - other.data
        def backward(g):
            return (_unbroadcast(g, self.shape), _unbroadcast(-g, other.shape))
        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other):
        return Tensor._coerce(other).__sub__(self)

    def __neg__(self):
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __mul__(self, other):
        other = Tensor._coerce(other)
        data = self.data * other.data
        def backward(g):
            return (_unbroadcast(g * other.data, self.shape),
                    _unbroadcast(g * self.data, other.shape))
        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = Tensor._coerce(other)
        data = self.data / other.data
        def backward(g):
            return (_unbroadcast(g / other.data, self.shape),
                    _unbroadcast(-g * self.data / (other.data ** 2), other.shape))
        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return Tensor._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float):
        if isinstance(exponent, Tensor):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent
        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)
        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other):
        other = Tensor._coerce(other)
        a, b = self.data, other.data
        if bf16_matmul_enabled():
            a, b = round_bf16(a), round_bf16(b)
        data = a @ b
        if flops_enabled():
            # 2*m*k*n per output batch element (multiply + add).
            k = a.shape[-1]
            add_flops(2 * data.size * k)
        def backward(g):
            if bf16_matmul_enabled():
                gq = round_bf16(g)
            else:
                gq = g
            if flops_enabled():
                k = a.shape[-1]
                add_flops(4 * g.size * k if a.ndim > 1 and b.ndim > 1 else 2 * g.size * k)
            if b.ndim == 1:
                ga = np.outer(gq, b) if a.ndim > 1 else gq * b
                gb = (a.reshape(-1, a.shape[-1]).T @ gq.reshape(-1)) if a.ndim > 1 else a * gq
            elif a.ndim == 1:
                ga = gq @ np.swapaxes(b, -1, -2)
                gb = np.outer(a, gq)
            else:
                ga = gq @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ gq
            return (_unbroadcast(ga, self.shape), _unbroadcast(gb, other.shape))
        return Tensor._make(data, (self, other), backward)

    # -- elementwise functions ------------------------------------------
    def exp(self):
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self):
        return Tensor._make(np.log(self.data), (self,), lambda g: (g / self.data,))

    def sin(self):
        return Tensor._make(np.sin(self.data), (self,), lambda g: (g * np.cos(self.data),))

    def cos(self):
        return Tensor._make(np.cos(self.data), (self,), lambda g: (-g * np.sin(self.data),))

    def sqrt(self):
        data = np.sqrt(self.data)
        return Tensor._make(data, (self,), lambda g: (g * 0.5 / data,))

    def tanh(self):
        data = np.tanh(self.data)
        return Tensor._make(data, (self,), lambda g: (g * (1.0 - data * data),))

    def sigmoid(self):
        data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(data, (self,), lambda g: (g * data * (1.0 - data),))

    def silu(self):
        """SiLU/swish activation, the gate of SwiGLU."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig
        def backward(g):
            return (g * sig * (1.0 + self.data * (1.0 - sig)),)
        return Tensor._make(data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def abs(self):
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, low: float | None, high: float | None):
        data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)
        return Tensor._make(data, (self,), lambda g: (g * mask,))

    # -- reductions --------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape, nd = self.shape, self.ndim
        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            axes = tuple(a % nd for a in axes)
            if not keepdims:
                for a in sorted(axes):
                    g = np.expand_dims(g, a)
            return (np.broadcast_to(g, shape).copy(),)
        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = 1
            for a in axes:
                count *= self.shape[a % self.ndim]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        """Maximum reduction; gradient flows to (all) argmax positions equally."""
        data = self.data.max(axis=axis, keepdims=keepdims)
        def backward(g):
            expanded = data if keepdims or axis is None else np.expand_dims(
                data, axis if isinstance(axis, int) else tuple(axis))
            gexp = g if keepdims or axis is None else np.expand_dims(
                g, axis if isinstance(axis, int) else tuple(axis))
            mask = (self.data == expanded).astype(self.data.dtype)
            counts = mask.sum(axis=axis, keepdims=True)
            return (mask / counts * gexp,)
        return Tensor._make(data, (self,), backward)

    # -- shape manipulation ----------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)
        return Tensor._make(data, (self,), lambda g: (g.reshape(original),))

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)
        return Tensor._make(data, (self,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, a: int, b: int):
        data = self.data.swapaxes(a, b)
        return Tensor._make(data, (self,), lambda g: (g.swapaxes(a, b),))

    def roll(self, shift, axis):
        """Circular shift; used for Swin's window shifting on the periodic
        longitude axis."""
        data = np.roll(self.data, shift, axis=axis)
        def backward(g):
            if isinstance(shift, tuple):
                back = tuple(-s for s in shift)
            else:
                back = -shift
            return (np.roll(g, back, axis=axis),)
        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index):
        data = self.data[index]
        shape = self.shape
        def backward(g):
            full = np.zeros(shape, dtype=g.dtype)
            np.add.at(full, index, g)
            return (full,)
        return Tensor._make(data, (self,), backward)

    def pad(self, pad_width):
        """Zero padding (NumPy ``pad_width`` convention)."""
        data = np.pad(self.data, pad_width)
        def backward(g):
            slices = tuple(slice(before, g.shape[i] - after)
                           for i, (before, after) in enumerate(pad_width))
            return (g[slices],)
        return Tensor._make(data, (self,), backward)

    # -- composite ops used by attention -----------------------------------
    def softmax(self, axis: int = -1):
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=axis, keepdims=True)
        def backward(g):
            dot = (g * out).sum(axis=axis, keepdims=True)
            return ((g - dot) * out,)
        return Tensor._make(out, (self,), backward)

    # -- comparison helpers (no grad) ---------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other


# -- module-level constructors and free functions ------------------------

def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)
    def backward(g):
        grads = []
        for i in range(len(tensors)):
            idx = [slice(None)] * g.ndim
            idx[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(idx)])
        return tuple(grads)
    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))
    return Tensor._make(data, tensors, backward)


def split(t: Tensor, sections: int, axis: int = 0) -> list[Tensor]:
    """Split into ``sections`` equal chunks along ``axis``."""
    size = t.shape[axis]
    if size % sections:
        raise ValueError(f"axis of size {size} not divisible into {sections}")
    step = size // sections
    outs = []
    for i in range(sections):
        idx = [slice(None)] * t.ndim
        idx[axis] = slice(i * step, (i + 1) * step)
        outs.append(t[tuple(idx)])
    return outs


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    a, b = Tensor._coerce(a), Tensor._coerce(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    def backward(g):
        return (_unbroadcast(np.where(cond, g, 0.0), a.shape),
                _unbroadcast(np.where(cond, 0.0, g), b.shape))
    return Tensor._make(data, (a, b), backward)
