"""Emulated BF16 arithmetic.

Aurora's compute-intensive kernels run in BF16 while embeddings, master
weights, primary gradients, and gradient reductions stay in FP32
(paper Section V-A, "Mixed precision").  NumPy has no native bfloat16, so we
emulate it: a BF16 value is an FP32 value whose low 16 mantissa bits are zero.
Rounding uses round-to-nearest-even, matching hardware behaviour.

A process-global mode switch lets the autograd engine quantize matmul inputs,
reproducing the paper's precision split (matmul/attention in BF16, everything
else FP32).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = ["round_bf16", "bf16_matmul_enabled", "autocast_bf16", "bf16_ulp"]

_BF16_MATMUL = False


def round_bf16(x: np.ndarray) -> np.ndarray:
    """Round an FP32 array to the nearest representable BF16 value.

    Implements round-to-nearest-even on the upper 16 bits of the IEEE-754
    single-precision representation. NaN payloads are preserved as quiet NaNs
    and infinities pass through unchanged.
    """
    x = np.ascontiguousarray(x, dtype=np.float32)
    bits = x.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF plus the LSB of the surviving part.
    lsb = (bits >> 16) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    rounded &= np.uint32(0xFFFF0000)
    out = rounded.view(np.float32).copy()
    # NaNs must stay NaNs (rounding can carry into the exponent of a NaN).
    nan_mask = np.isnan(x)
    if nan_mask.any():
        out[nan_mask] = np.float32(np.nan)
    return out


def bf16_ulp(x: float) -> float:
    """Size of one BF16 unit-in-the-last-place at magnitude ``x``.

    BF16 has 8 minte mantissa bits; the spacing near ``x`` is roughly
    ``2**(floor(log2 |x|) - 7)``.
    """
    if x == 0:
        return 2.0 ** -133
    return 2.0 ** (np.floor(np.log2(abs(x))) - 7)


def bf16_matmul_enabled() -> bool:
    """True when matmuls should quantize their inputs to BF16."""
    return _BF16_MATMUL


@contextmanager
def autocast_bf16(enabled: bool = True):
    """Enable emulated-BF16 matmul inputs within the block.

    Mirrors the paper's mixed-precision setup: inside the context every
    matmul rounds both operands to BF16 before multiplying (accumulation
    remains FP32, as on real hardware), while parameters, gradients and
    reductions stay FP32.
    """
    global _BF16_MATMUL
    previous = _BF16_MATMUL
    _BF16_MATMUL = bool(enabled)
    try:
        yield
    finally:
        _BF16_MATMUL = previous
