"""NumPy autograd engine with FLOP accounting and emulated-BF16 matmuls."""

from .bf16 import autocast_bf16, bf16_matmul_enabled, bf16_ulp, round_bf16
from .flops import FlopCounter, add_flops, count_flops, flops_enabled
from .workspace import WorkspaceArena, arena
from .tensor import (
    Tensor,
    concat,
    is_grad_enabled,
    no_grad,
    ones,
    split,
    stack,
    tensor,
    where,
    zeros,
)

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "concat", "stack", "split", "where",
    "no_grad", "is_grad_enabled",
    "FlopCounter", "count_flops", "add_flops", "flops_enabled",
    "round_bf16", "autocast_bf16", "bf16_matmul_enabled", "bf16_ulp",
    "WorkspaceArena", "arena",
]
