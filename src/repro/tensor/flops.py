"""Runtime floating-point-operation accounting.

The paper (Section VI-D) determines sustained/peak FLOPS with an *analytical*
model of the transformer.  To validate that model we instrument the autograd
engine: every matmul (the compute-dominant operation, exactly as the paper
assumes) reports its operation count to a global :class:`FlopCounter`.  Tests
then check the analytical model in :mod:`repro.perf.flops` against counts
measured on a live tiny model.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["FlopCounter", "count_flops", "add_flops", "flops_enabled"]

_state = threading.local()


def _stack() -> list["FlopCounter"]:
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


class FlopCounter:
    """Accumulates floating point operations, split by phase.

    Attributes
    ----------
    forward:
        FLOPs executed while no backward pass is running.
    backward:
        FLOPs executed inside ``Tensor.backward``.
    """

    def __init__(self) -> None:
        self.forward = 0
        self.backward = 0
        self.in_backward = False

    @property
    def total(self) -> int:
        return self.forward + self.backward

    def add(self, n: int) -> None:
        if self.in_backward:
            self.backward += int(n)
        else:
            self.forward += int(n)

    def reset(self) -> None:
        self.forward = 0
        self.backward = 0


def flops_enabled() -> bool:
    """True when at least one counter is active."""
    return bool(_stack())


def add_flops(n: int) -> None:
    """Credit ``n`` FLOPs to every active counter."""
    for counter in _stack():
        counter.add(n)


@contextmanager
def count_flops(counter: FlopCounter | None = None):
    """Context manager activating FLOP accounting.

    Yields the counter so callers can inspect ``counter.forward`` /
    ``counter.backward`` afterwards::

        with count_flops() as fc:
            loss = model(x).sum()
            loss.backward()
        print(fc.forward, fc.backward)
    """
    counter = counter if counter is not None else FlopCounter()
    _stack().append(counter)
    try:
        yield counter
    finally:
        _stack().remove(counter)


@contextmanager
def backward_phase():
    """Mark active counters as being inside a backward pass."""
    stack = _stack()
    previous = [c.in_backward for c in stack]
    for c in stack:
        c.in_backward = True
    try:
        yield
    finally:
        for c, p in zip(stack, previous):
            c.in_backward = p
