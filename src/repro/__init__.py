"""AERIS reproduction: Argonne Earth Systems Model for Reliable and
Skillful Predictions (SC 2025).

A from-scratch, pure-NumPy reproduction of the complete AERIS system:

* :mod:`repro.tensor` — autograd engine with FLOP counting + emulated BF16;
* :mod:`repro.nn` — transformer layer library (RMSNorm, SwiGLU, attention,
  AdamW, EMA);
* :mod:`repro.kernels` — plan-cached, fused hot-path kernels (window
  partition/merge gathers, RoPE tables, softmax(QKᵀ)·V) that are bit-exact
  against the reference paths;
* :mod:`repro.model` — the pixel-level Swin diffusion transformer and the
  paper's Table II configurations;
* :mod:`repro.diffusion` — TrigFlow objective, DPMSolver++ 2S sampler with
  trigonometric churn, ensemble forecaster;
* :mod:`repro.data` — toy spectral GCM + synthetic ERA5-like reanalysis,
  forcings, normalization, WP-sharded loading;
* :mod:`repro.parallel` — SWiPe (window + sequence + pipeline + data
  parallelism, ZeRO-1) on a metered simulated cluster;
* :mod:`repro.perf` — the analytical performance model behind the paper's
  ExaFLOPS and scaling results;
* :mod:`repro.obs` — tracing / metrics / profiling (off by default;
  exports Chrome traces and cross-checks observations against
  :mod:`repro.perf`);
* :mod:`repro.resilience` — seeded fault injection, self-healing
  collectives (checksum + retry), and elastic checkpoint/recovery;
* :mod:`repro.serve` — forecast serving: dynamic micro-batching,
  content-addressed forecast cache, tiered samplers (consistency
  student / DPM-Solver), replica worker pool under fault injection,
  multi-version bindings with canary deployment;
* :mod:`repro.registry` — content-addressed model lifecycle registry:
  weights/config/normalizer blobs under SHA-256 digests, lineage,
  eval scorecards, and a skill gate feeding the canary controller;
* :mod:`repro.train` / :mod:`repro.baselines` / :mod:`repro.eval` —
  training, comparison systems, and verification metrics.

Quickstart::

    from repro import quickstart_components
    archive, trainer = quickstart_components()
    trainer.fit(200)
    forecaster = trainer.forecaster()
"""

from . import baselines, data, diffusion, eval, kernels, model, nn, obs
from . import parallel, perf, registry, resilience, serve, simtest, tensor
from . import train
from .data import ReanalysisConfig, SyntheticReanalysis
from .diffusion import DpmSolver2S, ResidualForecaster, SolverConfig, TrigFlow
from .model import SMALL, TABLE_II, TINY, Aeris, AerisConfig
from .train import Trainer, TrainerConfig

__version__ = "1.0.0"

__all__ = [
    "tensor", "nn", "kernels", "model", "diffusion", "data", "parallel", "perf",
    "train", "baselines", "eval", "obs", "resilience", "serve", "registry",
    "simtest",
    "Aeris", "AerisConfig", "TABLE_II", "TINY", "SMALL",
    "TrigFlow", "DpmSolver2S", "SolverConfig", "ResidualForecaster",
    "SyntheticReanalysis", "ReanalysisConfig",
    "Trainer", "TrainerConfig",
    "quickstart_components",
]


def quickstart_components(height: int = 16, width: int = 32,
                          train_years: float = 0.5, seed: int = 0,
                          test_years: float = 0.2):
    """Build a small archive + trainer pair ready to ``fit()``."""
    archive = SyntheticReanalysis(ReanalysisConfig(
        height=height, width=width, train_years=train_years,
        val_years=0.1, test_years=test_years, seed=seed))
    config = AerisConfig(
        name="quickstart", height=height, width=width, channels=9,
        forcing_channels=3, dim=32, heads=4, ffn_dim=64, swin_layers=2,
        blocks_per_layer=2, window=(4, 4), time_freqs=8)
    trainer = Trainer(Aeris(config, seed=seed), archive,
                      TrainerConfig(batch_size=4, peak_lr=3e-3,
                                    warmup_images=80, total_images=40_000,
                                    decay_images=400, seed=seed))
    return archive, trainer
