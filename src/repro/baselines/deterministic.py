"""Deterministic baseline: the same Swin backbone trained with a weighted
MSE to predict the residual directly (GraphCast/Stormer-style training).

The paper's motivation for diffusion is that deterministic models "produce
blurred, poorly calibrated distributions due to spectral biases and a lack
of sensitivity to initial-condition perturbations" — this baseline exists so
the benchmarks can demonstrate that contrast (zero ensemble spread, blurrier
long-lead fields) under identical architecture and data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import weighted_velocity_loss
from ..model import Aeris
from ..nn import EMA, AdamW, WarmupConstantDecay
from ..tensor import Tensor, no_grad
from ..train.trainer import TrainerConfig

__all__ = ["DeterministicTrainer", "DeterministicForecaster"]


class DeterministicTrainer:
    """MSE training of the AERIS backbone as a point forecaster.

    The diffusion inputs are neutralized: ``x_t = 0`` and ``t = 0``, so the
    network sees exactly the conditioning (previous state + forcings) and
    regresses the standardized residual.
    """

    def __init__(self, model: Aeris, archive: SyntheticReanalysis,
                 config: TrainerConfig = TrainerConfig()):
        if model.config.channels != len(TOY_SET):
            raise ValueError("model channel count must match the archive")
        self.model = model
        self.archive = archive
        self.config = config
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.optimizer = AdamW(model.parameters(), lr=config.peak_lr,
                               betas=config.betas,
                               weight_decay=config.weight_decay)
        self.schedule = WarmupConstantDecay(
            peak_lr=config.peak_lr, warmup_images=config.warmup_images,
            total_images=config.total_images,
            decay_images=config.decay_images)
        self.ema = EMA(model, halflife_images=config.ema_halflife_images)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        self.images_seen = 0.0
        self.rng_batch = np.random.default_rng(config.seed)
        self.history: list[float] = []

    def train_step(self) -> float:
        cfg = self.config
        indices = self.rng_batch.choice(self.archive.split_indices("train"),
                                        size=cfg.batch_size, replace=False)
        cond, residual, forc = self.archive.training_batch(
            indices, self.state_norm, self.residual_norm, self.forcing_norm)
        zeros = np.zeros_like(residual)
        t = np.zeros(cfg.batch_size, dtype=np.float32)
        self.optimizer.zero_grad()
        pred = self.model(Tensor(zeros), Tensor(t), Tensor(cond), Tensor(forc))
        loss = weighted_velocity_loss(pred, residual, self.lat_weights,
                                      self.var_weights)
        loss.backward()
        self.optimizer.lr = self.schedule.lr_at(self.images_seen)
        self.optimizer.step()
        self.images_seen += cfg.batch_size
        self.ema.update(self.model, images_per_step=cfg.batch_size)
        value = loss.item()
        self.history.append(value)
        return value

    def fit(self, n_steps: int) -> list[float]:
        for _ in range(n_steps):
            self.train_step()
        return self.history

    def forecaster(self, use_ema: bool = True) -> "DeterministicForecaster":
        inference = Aeris(self.model.config)
        inference.load_state_dict(self.model.state_dict())
        if use_ema:
            self.ema.copy_to(inference)
        inference.eval()
        return DeterministicForecaster(
            model=inference, archive=self.archive,
            state_norm=self.state_norm, residual_norm=self.residual_norm,
            forcing_norm=self.forcing_norm)


@dataclass
class DeterministicForecaster:
    """Single-forward-pass autoregressive point forecasts."""

    model: Aeris
    archive: SyntheticReanalysis
    state_norm: object
    residual_norm: object
    forcing_norm: object

    def step(self, state: np.ndarray, time_index: int) -> np.ndarray:
        cond = self.state_norm.normalize(state)
        forc = self.forcing_norm.normalize(
            self.archive.forcing_provider(self.archive.gcm_step(time_index)))
        zeros = np.zeros_like(cond)[None]
        t = np.zeros(1, dtype=np.float32)
        with no_grad():
            pred = self.model(Tensor(zeros), Tensor(t), Tensor(cond[None]),
                              Tensor(forc[None])).numpy()[0]
        return state + self.residual_norm.denormalize(pred)

    def rollout(self, state0: np.ndarray, n_steps: int,
                start_index: int = 0) -> np.ndarray:
        states = np.empty((n_steps + 1,) + state0.shape, dtype=np.float32)
        states[0] = state0
        for i in range(n_steps):
            states[i + 1] = self.step(states[i], start_index + i)
        return states
