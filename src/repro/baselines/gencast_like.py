"""GenCast-like baseline: EDM-parameterized diffusion on the same backbone.

GenCast (Price et al.) trains a diffusion model under the EDM framework
(Karras et al.): additive noising ``x_sigma = x0 + sigma * z``, a
preconditioned denoiser

    D(x; sigma) = c_skip x + c_out * F(c_in x, c_noise),

a log-normal noise prior, and Heun's second-order sampler over a rho-spaced
sigma schedule.  AERIS differs by using TrigFlow (spherical interpolation +
velocity prediction).  Running both parameterizations over the identical
Swin backbone isolates the contribution of the parameterization — the
comparison Figure 5a draws against GenCast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticReanalysis, TOY_SET
from ..diffusion import weighted_velocity_loss
from ..model import Aeris
from ..nn import EMA, AdamW, WarmupConstantDecay
from ..tensor import Tensor, no_grad
from ..train.trainer import TrainerConfig

__all__ = ["EdmConfig", "EdmTrainer", "EdmForecaster"]


@dataclass(frozen=True)
class EdmConfig:
    """EDM constants (Karras et al. defaults, as used by GenCast)."""

    sigma_data: float = 1.0
    sigma_min: float = 0.02
    sigma_max: float = 80.0
    p_mean: float = -1.2     # log-normal noise prior
    p_std: float = 1.2
    rho: float = 7.0
    n_sample_steps: int = 10

    # -- preconditioning -----------------------------------------------------
    def c_skip(self, sigma: np.ndarray) -> np.ndarray:
        return self.sigma_data ** 2 / (sigma ** 2 + self.sigma_data ** 2)

    def c_out(self, sigma: np.ndarray) -> np.ndarray:
        return sigma * self.sigma_data / np.sqrt(sigma ** 2 + self.sigma_data ** 2)

    def c_in(self, sigma: np.ndarray) -> np.ndarray:
        return 1.0 / np.sqrt(sigma ** 2 + self.sigma_data ** 2)

    def c_noise(self, sigma: np.ndarray) -> np.ndarray:
        return np.log(sigma) / 4.0

    def loss_weight(self, sigma: np.ndarray) -> np.ndarray:
        return (sigma ** 2 + self.sigma_data ** 2) / (sigma * self.sigma_data) ** 2

    def sample_sigma(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.exp(self.p_mean + self.p_std * rng.normal(size=n)
                      ).astype(np.float32)

    def sigma_schedule(self) -> np.ndarray:
        """Decreasing rho-spaced sigmas, ending exactly at 0."""
        i = np.arange(self.n_sample_steps)
        inv = 1.0 / self.rho
        sig = (self.sigma_max ** inv + i / (self.n_sample_steps - 1)
               * (self.sigma_min ** inv - self.sigma_max ** inv)) ** self.rho
        return np.append(sig, 0.0)


class EdmTrainer:
    """Trains the backbone as an EDM denoiser of standardized residuals."""

    def __init__(self, model: Aeris, archive: SyntheticReanalysis,
                 config: TrainerConfig = TrainerConfig(),
                 edm: EdmConfig = EdmConfig()):
        if model.config.channels != len(TOY_SET):
            raise ValueError("model channel count must match the archive")
        self.model = model
        self.archive = archive
        self.config = config
        self.edm = edm
        self.state_norm = archive.state_normalizer()
        self.residual_norm = archive.residual_normalizer()
        self.forcing_norm = archive.forcing_normalizer()
        self.optimizer = AdamW(model.parameters(), lr=config.peak_lr,
                               betas=config.betas,
                               weight_decay=config.weight_decay)
        self.schedule = WarmupConstantDecay(
            peak_lr=config.peak_lr, warmup_images=config.warmup_images,
            total_images=config.total_images,
            decay_images=config.decay_images)
        self.ema = EMA(model, halflife_images=config.ema_halflife_images)
        self.lat_weights = archive.grid.latitude_weights()
        self.var_weights = np.asarray(TOY_SET.kappa_weights())
        self.images_seen = 0.0
        self.rng_batch = np.random.default_rng(config.seed)
        self.rng_sigma = np.random.default_rng(config.seed + 1)
        self.rng_z = np.random.default_rng(config.seed + 2)
        self.history: list[float] = []

    def train_step(self) -> float:
        cfg, edm = self.config, self.edm
        indices = self.rng_batch.choice(self.archive.split_indices("train"),
                                        size=cfg.batch_size, replace=False)
        cond, x0, forc = self.archive.training_batch(
            indices, self.state_norm, self.residual_norm, self.forcing_norm)
        sigma = edm.sample_sigma(self.rng_sigma, cfg.batch_size)
        z = self.rng_z.normal(size=x0.shape).astype(np.float32)
        sig4 = sigma[:, None, None, None]
        x_noisy = x0 + sig4 * z
        # Precondition: the network regresses the residual target
        # (x0 − c_skip x) / c_out, with unit effective weight.
        target = (x0 - edm.c_skip(sig4) * x_noisy) / edm.c_out(sig4)
        self.optimizer.zero_grad()
        pred = self.model(Tensor(edm.c_in(sig4) * x_noisy),
                          Tensor(edm.c_noise(sigma)),
                          Tensor(cond), Tensor(forc))
        loss = weighted_velocity_loss(pred, target, self.lat_weights,
                                      self.var_weights)
        loss.backward()
        self.optimizer.lr = self.schedule.lr_at(self.images_seen)
        self.optimizer.step()
        self.images_seen += cfg.batch_size
        self.ema.update(self.model, images_per_step=cfg.batch_size)
        value = loss.item()
        self.history.append(value)
        return value

    def fit(self, n_steps: int) -> list[float]:
        for _ in range(n_steps):
            self.train_step()
        return self.history

    def forecaster(self, use_ema: bool = True) -> "EdmForecaster":
        inference = Aeris(self.model.config)
        inference.load_state_dict(self.model.state_dict())
        if use_ema:
            self.ema.copy_to(inference)
        inference.eval()
        return EdmForecaster(model=inference, archive=self.archive,
                             state_norm=self.state_norm,
                             residual_norm=self.residual_norm,
                             forcing_norm=self.forcing_norm, edm=self.edm)


@dataclass
class EdmForecaster:
    """Heun-sampler ensemble forecaster (GenCast inference scheme)."""

    model: Aeris
    archive: SyntheticReanalysis
    state_norm: object
    residual_norm: object
    forcing_norm: object
    edm: EdmConfig = EdmConfig()

    def _denoise(self, x: np.ndarray, sigma: float, cond: np.ndarray,
                 forc: np.ndarray) -> np.ndarray:
        edm = self.edm
        s = np.asarray(sigma, dtype=np.float32)
        with no_grad():
            f = self.model(Tensor((edm.c_in(s) * x)[None]),
                           Tensor(np.array([edm.c_noise(s)], np.float32)),
                           Tensor(cond[None]), Tensor(forc[None])).numpy()[0]
        return edm.c_skip(s) * x + edm.c_out(s) * f

    def _sample_residual(self, cond: np.ndarray, forc: np.ndarray,
                         rng: np.random.Generator) -> np.ndarray:
        edm = self.edm
        sigmas = edm.sigma_schedule()
        x = (sigmas[0] * rng.normal(size=cond.shape)).astype(np.float32)
        for i in range(len(sigmas) - 1):
            s, s_next = float(sigmas[i]), float(sigmas[i + 1])
            d = (x - self._denoise(x, s, cond, forc)) / s
            x_euler = x + (s_next - s) * d
            if s_next > 0:
                d2 = (x_euler - self._denoise(x_euler, s_next, cond, forc)) / s_next
                x = x + (s_next - s) * 0.5 * (d + d2)
            else:
                x = x_euler
        return x

    def step(self, state: np.ndarray, time_index: int,
             rng: np.random.Generator) -> np.ndarray:
        cond = self.state_norm.normalize(state)
        forc = self.forcing_norm.normalize(
            self.archive.forcing_provider(self.archive.gcm_step(time_index)))
        residual = self._sample_residual(cond, forc, rng)
        return state + self.residual_norm.denormalize(residual)

    def rollout(self, state0: np.ndarray, n_steps: int,
                rng: np.random.Generator, start_index: int = 0) -> np.ndarray:
        states = np.empty((n_steps + 1,) + state0.shape, dtype=np.float32)
        states[0] = state0
        for i in range(n_steps):
            states[i + 1] = self.step(states[i], start_index + i, rng)
        return states

    def ensemble_rollout(self, state0: np.ndarray, n_steps: int,
                         n_members: int, seed: int = 0,
                         start_index: int = 0) -> np.ndarray:
        out = np.empty((n_members, n_steps + 1) + state0.shape,
                       dtype=np.float32)
        for m in range(n_members):
            rng = np.random.default_rng(seed + 1000 * m)
            out[m] = self.rollout(state0, n_steps, rng, start_index)
        return out
